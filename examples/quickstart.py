"""Quickstart: soft hypertree width of a hypergraph / conjunctive query.

Run with ``python examples/quickstart.py``.

The example walks through the core API on the paper's running example
``H2`` (Example 1 / Figure 1): candidate bags, the CandidateTD solver, soft
hypertree width and the comparison with plain hypertree width.
"""

from repro import (
    Hypergraph,
    candidate_td,
    hypergraph_h2,
    soft_candidate_bags,
    soft_hypertree_width,
)
from repro.baselines.detkdecomp import hypertree_width
from repro.core.soft import soft_decomposition_to_ghd


def describe_decomposition(decomposition) -> None:
    """Print a decomposition as an indented tree of bags."""

    def show(node, indent=0):
        bag = ", ".join(sorted(map(str, decomposition.bag(node))))
        print("    " + "  " * indent + f"[{bag}]")
        for child in node.children:
            show(child, indent + 1)

    show(decomposition.tree.root)


def main() -> None:
    # A hypergraph can be built from any mapping of edge names to vertices;
    # for a conjunctive query, use one edge per atom.
    four_cycle = Hypergraph(
        {"R": ["w", "x"], "S": ["x", "y"], "T": ["y", "z"], "U": ["z", "w"]}
    )
    width, decomposition = soft_hypertree_width(four_cycle)
    print(f"shw of the 4-cycle query: {width}")
    describe_decomposition(decomposition)

    # The paper's example H2 separates soft hypertree width from hypertree
    # width: shw(H2) = 2 but hw(H2) = 3.
    h2 = hypergraph_h2()
    bags = soft_candidate_bags(h2, 2)
    print(f"\nH2 has {len(bags)} candidate bags in Soft_{{H2,2}}")

    ctd = candidate_td(h2, bags)
    print("A candidate tree decomposition over Soft_{H2,2}:")
    describe_decomposition(ctd)

    shw, _ = soft_hypertree_width(h2)
    hw = hypertree_width(h2)
    print(f"\nshw(H2) = {shw}  <  hw(H2) = {hw}")

    # Soft decompositions convert to GHDs by attaching minimum edge covers.
    ghd = soft_decomposition_to_ghd(ctd)
    print(f"as a GHD the decomposition has width {ghd.ghd_width()}")


if __name__ == "__main__":
    main()
