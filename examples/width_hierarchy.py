"""The width hierarchy fhw ≤ ghw = shw_∞ ≤ shw_i ≤ shw ≤ hw on the paper's examples.

Run with ``python examples/width_hierarchy.py``.

The script computes, for the paper's example hypergraphs and a few standard
shapes, the widths that are feasible at this scale and prints the hierarchy
of Section 8.  It also shows the Robber-and-Marshals game perspective of
Appendix A.1 on the small instances where the game search is cheap.
"""

from repro.baselines.detkdecomp import hypertree_width
from repro.baselines.fhw import fhw_upper_bound
from repro.baselines.ghw import generalized_hypertree_width
from repro.core.games import irmg_width, marshals_width
from repro.core.soft import soft_hypertree_width
from repro.hypergraph.library import (
    cycle_hypergraph,
    four_cycle_query,
    hypergraph_h2,
    triangle_hypergraph,
)


def report(name, hypergraph, with_games=False) -> None:
    ghw, ghw_witness = generalized_hypertree_width(hypergraph)
    shw0, _ = soft_hypertree_width(hypergraph, iterations=0)
    shw1, _ = soft_hypertree_width(hypergraph, iterations=1)
    hw = hypertree_width(hypergraph)
    fhw_bound = fhw_upper_bound(ghw_witness)
    print(f"{name}:")
    print(
        f"  fhw <= {fhw_bound:.2f}  ghw = {ghw}  shw_1 = {shw1}  "
        f"shw = {shw0}  hw = {hw}"
    )
    assert ghw <= shw1 <= shw0 <= hw
    if with_games:
        print(
            f"  marshal width = {marshals_width(hypergraph)}, "
            f"monotone IRMG width = {irmg_width(hypergraph, monotone=True)}"
        )


def main() -> None:
    report("triangle", triangle_hypergraph(), with_games=True)
    report("4-cycle", four_cycle_query(), with_games=True)
    report("6-cycle", cycle_hypergraph(6))
    # The paper's separating example: ghw = shw = 2 < hw = 3.
    report("H2 (Example 1)", hypergraph_h2())


if __name__ == "__main__":
    main()
