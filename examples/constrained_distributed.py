"""Constrained decompositions: Cartesian products and distributed partitions.

Run with ``python examples/constrained_distributed.py``.

This example reproduces the motivation of Section 6:

* Example 3 — the 4-cycle query has minimal-width decompositions that force
  a Cartesian product; the ConCov constraint rules them out.
* Example 4 — in a distributed setting with vertically partitioned
  relations, the PartClust constraint asks for decompositions whose subtrees
  stay within one partition.
* the ShallowCyc constraint and its preference-complete toptd.
"""

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import constrained_candidate_td
from repro.core.constraints import (
    ConnectedCoverConstraint,
    PartitionClusteringConstraint,
    ShallowCyclicityConstraint,
)
from repro.core.preferences import ShallowCyclicityPreference
from repro.hypergraph.library import cycle_hypergraph, example4_query, four_cycle_query


def show(decomposition, indent="    ") -> None:
    def walk(node, depth=0):
        bag = ", ".join(sorted(map(str, decomposition.bag(node))))
        print(f"{indent}{'  ' * depth}[{bag}]")
        for child in node.children:
            walk(child, depth + 1)

    walk(decomposition.tree.root)


def connected_cover_example() -> None:
    print("== Example 3: avoiding Cartesian products (ConCov) ==")
    four_cycle = four_cycle_query()
    bags = soft_candidate_bags(four_cycle, 2)

    unconstrained = constrained_candidate_td(four_cycle, bags)
    print("  an unconstrained width-2 decomposition:")
    show(unconstrained)

    constrained = constrained_candidate_td(
        four_cycle, bags, constraint=ConnectedCoverConstraint(four_cycle, 2)
    )
    print("  a ConCov width-2 decomposition (no Cartesian-product bags):")
    show(constrained)

    # For the 5-cycle the constraint genuinely increases the width (Section 6).
    c5 = cycle_hypergraph(5)
    for k in (2, 3):
        result = constrained_candidate_td(
            c5, soft_candidate_bags(c5, k), constraint=ConnectedCoverConstraint(c5, k)
        )
        status = "exists" if result is not None else "does not exist"
        print(f"  C5: a ConCov decomposition of width {k} {status}")


def partition_clustering_example() -> None:
    print("\n== Example 4: distributed evaluation (PartClust) ==")
    hypergraph, partition = example4_query()
    print(f"  relation partitions: {partition}")
    bags = soft_candidate_bags(hypergraph, 2)
    constraint = PartitionClusteringConstraint(hypergraph, partition, k=2)
    decomposition = constrained_candidate_td(hypergraph, bags, constraint=constraint)
    print("  a decomposition whose subtrees stay within one partition:")
    show(decomposition)


def shallow_cyclicity_example() -> None:
    print("\n== ShallowCyc: cyclic core with acyclic attachments ==")
    four_cycle = four_cycle_query()
    bags = soft_candidate_bags(four_cycle, 2)
    constraint = ShallowCyclicityConstraint(four_cycle, depth=0)
    preference = ShallowCyclicityPreference(four_cycle)
    decomposition = constrained_candidate_td(
        four_cycle, bags, constraint=constraint, preference=preference
    )
    print("  a decomposition with the cyclic core at the root:")
    show(decomposition)


if __name__ == "__main__":
    connected_cover_example()
    partition_clustering_example()
    shallow_cyclicity_example()
