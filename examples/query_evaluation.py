"""Decomposition-guided query evaluation vs. a DBMS-style baseline.

Run with ``python examples/query_evaluation.py``.

This example mirrors the paper's evaluation pipeline (Section 7) on the
TPC-DS-like query ``q_ds``:

1. generate the synthetic database and parse the SQL query,
2. enumerate the cheapest ConCov width-2 candidate tree decompositions under
   the actual-cardinality cost function,
3. execute each through Yannakakis' algorithm and compare with the baseline
   (an estimate-driven greedy join plan, standing in for "just run it on the
   DBMS").
"""

from repro.experiments.harness import QueryExperiment
from repro.workloads.registry import benchmark_query


def main() -> None:
    entry = benchmark_query("q_ds")
    database, query = entry.load(scale=0.5)
    print(f"database: {database}")
    print(f"query {query.name}: {len(query.atoms)} atoms, "
          f"{len(query.variables())} variables")

    experiment = QueryExperiment(database, query, entry.width, name=query.name)
    print(f"|Soft_{{H,{entry.width}}}| = {len(experiment.soft_bags)}, "
          f"ConCov-filtered: {len(experiment.concov_bags)}")

    decompositions, elapsed = experiment.ranked_decompositions(
        cost="cardinalities", limit=5, constrained=True
    )
    print(f"top-{len(decompositions)} decompositions enumerated in {elapsed * 1000:.1f} ms\n")

    evaluations = experiment.evaluate(decompositions)
    print("rank  card-cost      est-cost     work     max-intermediate  result")
    for evaluation in evaluations:
        print(
            f"{evaluation.rank:>4}  {evaluation.cardinality_cost:>12.0f}"
            f"  {evaluation.estimate_cost:>12.0f}  {evaluation.work:>8}"
            f"  {evaluation.metrics.max_intermediate:>16}  {evaluation.metrics.result}"
        )

    baseline = experiment.baseline()
    print(
        f"\nbaseline (greedy DBMS-style plan): work={baseline.work}, "
        f"max_intermediate={baseline.max_intermediate}, result={baseline.result}"
    )
    best = min(evaluations, key=lambda evaluation: evaluation.work)
    ratio = baseline.work / best.work if best.work else float("inf")
    print(f"best decomposition vs baseline work ratio: {ratio:.2f}x")


if __name__ == "__main__":
    main()
