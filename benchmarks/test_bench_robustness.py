"""Robustness benchmark — the cost of resource governance (PR 6).

Times the three solver families the other benches track (kernel-style
candidate bags + Algorithm 1, Algorithm 2 with constraint/preference, and
ranked any-k enumeration) twice per instance:

* **ungoverned** — ``budget=None``, the default path.  The only governance
  residue on this path is an ``is None`` check per loop head, so these
  timings are the "no budget set" numbers of the acceptance criterion and
  the ``BENCH_*_MIN_SPEEDUP`` gates of the sibling benches keep them
  honest against the recorded pre-governance baselines.
* **governed** — an active, generous ``Budget`` (work cap far above what
  the instance needs), i.e. every tick is really counted and the deadline
  machinery armed.  This is the *upper bound* on what governance can cost.

Both runs must produce identical results (the generous budget changes
nothing), and the geomean governed/ungoverned overhead is asserted under
``BENCH_ROBUSTNESS_MAX_OVERHEAD`` (default 1.10 — the paper-facing target
is <= 3% but shared runners are noisy on sub-second regions; the measured
per-instance ratios are all recorded in ``BENCH_robustness.json``).
"""

from __future__ import annotations

import json
import os
import platform

from conftest import RESULTS_DIR, best_of as _best_of, geomean as _geomean

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import constrained_candidate_td
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.ctd import candidate_td
from repro.core.enumerate import enumerate_ctds
from repro.core.preferences import NodeCountPreference
from repro.hypergraph.generators import (
    random_cyclic_query_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.library import (
    cycle_hypergraph,
    four_cycle_query,
    hypergraph_h2,
)
from repro.runtime import Budget

#: Far above the work any instance below needs, so the governed run is
#: identical in behaviour and differs only in bookkeeping.
GENEROUS_WORK = 10**9

REPEATS = 5


def _kernel_task(hypergraph, k):
    def run(budget=None):
        bags = soft_candidate_bags(hypergraph, k, budget=budget)
        td = candidate_td(hypergraph, bags, budget=budget)
        return (bags, None if td is None else frozenset(td.bags()))

    return run


def _constrained_task(hypergraph, k):
    constraint = ConnectedCoverConstraint(hypergraph, k)
    preference = NodeCountPreference()

    def run(budget=None):
        bags = soft_candidate_bags(hypergraph, k, budget=budget)
        td = constrained_candidate_td(
            hypergraph, bags, constraint, preference, budget=budget
        )
        return None if td is None else frozenset(td.bags())

    return run


def _enumerate_task(hypergraph, k, limit):
    preference = NodeCountPreference()

    def run(budget=None):
        bags = soft_candidate_bags(hypergraph, k, budget=budget)
        tds = enumerate_ctds(
            hypergraph, bags, preference=preference, limit=limit, budget=budget
        )
        return [frozenset(td.bags()) for td in tds]

    return run


def _instances():
    return [
        ("kernel-h2-k2", _kernel_task(hypergraph_h2(), 2)),
        ("kernel-cycle24-k2", _kernel_task(cycle_hypergraph(24), 2)),
        (
            "kernel-random26-k2",
            _kernel_task(random_hypergraph(26, 18, max_edge_size=3, seed=3), 2),
        ),
        ("constrained-c4-k2", _constrained_task(four_cycle_query(), 2)),
        (
            "constrained-cyclic12-k2",
            _constrained_task(random_cyclic_query_hypergraph(12, 3, seed=5), 2),
        ),
        ("enumerate-cycle12-k2-top10", _enumerate_task(cycle_hypergraph(12), 2, 10)),
        ("enumerate-h2-k2-top10", _enumerate_task(hypergraph_h2(), 2, 10)),
    ]


def test_governance_overhead():
    rows = []
    for name, task in _instances():
        ungoverned = task()
        governed = task(budget=Budget(max_work=GENEROUS_WORK))
        assert governed == ungoverned, name  # a generous budget changes nothing

        ungoverned_s = _best_of(lambda: task(), repeats=REPEATS)
        governed_s = _best_of(
            lambda: task(budget=Budget(max_work=GENEROUS_WORK)), repeats=REPEATS
        )
        rows.append(
            {
                "instance": name,
                "ungoverned_s": ungoverned_s,
                "governed_s": governed_s,
                "overhead": governed_s / ungoverned_s,
            }
        )
        print(
            f"{name}: ungoverned {ungoverned_s * 1e3:.2f} ms, "
            f"governed {governed_s * 1e3:.2f} ms "
            f"(x{governed_s / ungoverned_s:.3f})"
        )

    summary = {"geomean_overhead": _geomean([row["overhead"] for row in rows])}
    payload = {
        "benchmark": "robustness-governance-overhead",
        "python": platform.python_version(),
        "repeats": REPEATS,
        "generous_work": GENEROUS_WORK,
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_robustness.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)

    maximum = float(os.environ.get("BENCH_ROBUSTNESS_MAX_OVERHEAD", "1.10"))
    assert summary["geomean_overhead"] <= maximum, payload
