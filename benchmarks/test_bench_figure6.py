"""Experiments E2 and E3 — Figure 6: the Hetionet queries q_hto and q_hto2.

Left/middle charts: the 10 cheapest ConCov width-2 decompositions per query,
with the baseline far above all of them.  Right chart: the average effort of
random width-2 decompositions with and without the ConCov constraint — the
constraint alone already yields a multiple-factor improvement.
"""

from conftest import BENCH_SCALE, write_result

from repro.experiments.figures import (
    figure6_constraint_ablation,
    figure6_rows,
    render_figure6,
)


def test_figure6_ranked_decompositions(benchmark):
    per_query = benchmark.pedantic(
        lambda: figure6_rows(scale=BENCH_SCALE, limit=10), rounds=1, iterations=1
    )
    text = render_figure6(scale=BENCH_SCALE, limit=10)
    print()
    print(text)
    write_result("figure6", text)

    assert set(per_query) == {"q_hto", "q_hto2"}
    for name, (rows, baseline) in per_query.items():
        assert rows, f"no decompositions for {name}"
        works = [row["work"] for row in rows]
        # Every ranked decomposition returns the baseline's answer.
        assert {row["result"] for row in rows} == {baseline["result"]}
        # Figure 6: all ranked ConCov decompositions beat the baseline by a
        # clear margin (the paper reports "multiple times faster").
        assert baseline["work"] > 2 * max(works)


def test_figure6_constraint_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6_constraint_ablation(scale=BENCH_SCALE, sample_size=6),
        rounds=1,
        iterations=1,
    )
    assert {row["query"] for row in rows} == {"q_hto", "q_hto2"}
    for row in rows:
        assert row["concov_samples"] >= 1 and row["all_samples"] >= 1
        # Figure 6 (right): enforcing ConCov alone already reduces the
        # average execution effort of randomly chosen decompositions.
        assert row["concov_avg_work"] <= row["all_avg_work"] * 1.05
