"""Shared helpers for the benchmark targets.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md), prints the reproduced rows/series and
also writes them to ``benchmarks/results/`` so they can be inspected after a
``pytest benchmarks/ --benchmark-only`` run.

``benchmark.pedantic(..., rounds=1, iterations=1)`` is used throughout: the
quantities of interest are the *relative* numbers inside each figure (which
decomposition wins, by what factor, how cost correlates with measured
effort), not the wall-clock time of regenerating the figure itself.
"""

from __future__ import annotations

import math
import os
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Data scale used by the benchmark targets, overridable with the
#: ``BENCH_SCALE`` environment variable (e.g. ``BENCH_SCALE=4`` to run the
#: paper figures at a larger scale factor).  The default 1.0 keeps every
#: single decomposition-guided execution sub-second while leaving a visible
#: gap to the baseline executions; scales >= 2 load through the workload
#: snapshot cache automatically (see ``repro.workloads.registry``).
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))

#: How the slow reference side of the speedup suites is timed.  ``full``
#: (the default) times the reference on every instance; ``sample`` times
#: it only on a deterministic subset (even instance indices) and the
#: suite geomean extrapolates from the sampled rows — the production side
#: is still timed and self-checked on *every* instance either way, so
#: sample mode trades reference coverage for wall-clock, not correctness
#: coverage of the production code.  Each ``BENCH_*.json`` records the
#: mode it was produced under (``reference_mode`` in the payload,
#: ``sampled`` per row), so trajectories across runs compare like with
#: like.
BENCH_REFERENCE_MODE = os.environ.get("BENCH_REFERENCE_MODE", "full").strip().lower()
if BENCH_REFERENCE_MODE not in ("full", "sample"):
    raise ValueError(
        f"BENCH_REFERENCE_MODE={BENCH_REFERENCE_MODE!r}: expected 'full' or 'sample'"
    )


def reference_sampled(index: int) -> bool:
    """Whether instance ``index`` times its slow reference this run."""
    return BENCH_REFERENCE_MODE == "full" or index % 2 == 0


def write_result(name: str, text: str) -> str:
    """Persist a rendered figure/table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def best_of(callable_, repeats: int) -> float:
    """Best wall-clock time of ``repeats`` runs (shared by the speedup benches)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def geomean(values):
    """Geometric mean of the positive values (``None`` if there are none)."""
    values = [v for v in values if v > 0]
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else None


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE
