"""Experiment E9 — decomposition time (Section 7: "a few milliseconds").

The paper reports that enumerating all cost-ranked candidate tree
decompositions takes only milliseconds per query (Table 1, last column) and
therefore never becomes a bottleneck compared to query execution.  This
benchmark measures the actual enumeration step per query with
pytest-benchmark's timer (several rounds, since it is genuinely fast).
"""

import pytest

from conftest import BENCH_SCALE

from repro.experiments.harness import QueryExperiment
from repro.workloads.registry import benchmark_queries

_ENTRIES = {entry.name: entry for entry in benchmark_queries()}


@pytest.mark.parametrize("name", sorted(_ENTRIES))
def test_top10_enumeration_time(benchmark, name):
    entry = _ENTRIES[name]
    database, query = entry.load(scale=BENCH_SCALE)
    experiment = QueryExperiment(database, query, entry.width, name=name)
    # Warm the per-bag cost caches once so the benchmark isolates the
    # enumeration itself (the paper's tool also reuses DBMS statistics).
    experiment.ranked_decompositions(limit=10)

    def enumerate_top10():
        decompositions, _ = experiment.ranked_decompositions(limit=10)
        return decompositions

    decompositions = benchmark(enumerate_top10)
    assert decompositions
    constraint = experiment.concov_constraint()
    for decomposition in decompositions:
        assert decomposition.is_valid()
        assert constraint.holds_recursively(decomposition)
