"""Query front-door benchmark — end-to-end vs a plain-join baseline.

Runs two query sets through ``repro.db.frontdoor.run_query`` against a
real on-disk decomposition cache and compares each against
:class:`repro.db.executor.BaselineExecutor` — an estimate-driven greedy
join order executed with hash joins, standing in for "just run the SQL on
a conventional DBMS":

* the paper's six Table-1 benchmark queries (skewed, mostly cyclic —
  the workloads decomposition-guided execution was built for), and
* the ten JOB-lite queries (benign, mostly acyclic — where Yannakakis'
  semijoin passes are pure overhead and the baseline often wins).

The primary metric is deterministic **work** (tuples read + written), not
wall clock.  The gate is the geometric mean over the *paper* queries of
``baseline work / front-door work``, where the front-door side charges
everything downstream of the query object — solve or cache probe with
re-certification, plus Yannakakis execution (``BENCH_QUERY_MIN_SPEEDUP``,
default 2.0; the measured geomean at scale 1 is ~2.6×, and work ratios
are deterministic at a fixed ``BENCH_SCALE``).  The JOB-lite rows are
reported and recorded ungated: they document the front door's honest
overhead profile on easy queries rather than a claimed win.  Both sides
must agree on every answer in both sets; a speedup with a wrong result is
a failure, not a win.

Every query also runs cold-then-warm through the shared cache, asserting
the warm answer is identical and every hit re-certified cleanly.  The
measured numbers land in ``BENCH_query.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from conftest import BENCH_SCALE, RESULTS_DIR, geomean as _geomean

from repro.core.cache import DecompositionCache
from repro.db.executor import BaselineExecutor
from repro.db.frontdoor import run_query
from repro.workloads.registry import benchmark_queries, joblite_benchmark_queries


def _measure(entry, store):
    database, query = entry.load(scale=BENCH_SCALE)

    started = time.perf_counter()
    cold = run_query(query, database, cache=store)
    cold_s = time.perf_counter() - started
    assert cold.outcome.complete, entry.name

    # Isomorphic shapes share one entry, so a later query's "cold" run
    # may already hit the cache — the warm run must hit either way.
    started = time.perf_counter()
    warm = run_query(query, database, cache=store)
    warm_s = time.perf_counter() - started
    assert warm.provenance == "cache", entry.name
    assert warm.value == cold.value, entry.name
    warm_work = warm.solve_work + warm.execution_work

    started = time.perf_counter()
    baseline = BaselineExecutor(database, query).execute()
    baseline_s = time.perf_counter() - started
    assert baseline.result == cold.value, (
        f"{entry.name}: baseline answered {baseline.result}, "
        f"front door answered {cold.value}"
    )

    return {
        "query": entry.name,
        "dataset": entry.dataset,
        "width": cold.width,
        "value": cold.value,
        "frontdoor_cold_work": cold.solve_work + cold.execution_work,
        "frontdoor_warm_work": warm_work,
        "baseline_work": baseline.work,
        "baseline_max_intermediate": baseline.max_intermediate,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "baseline_s": baseline_s,
        "work_ratio": baseline.work / warm_work,
    }


def test_frontdoor_vs_baseline(tmp_path):
    store = DecompositionCache(str(tmp_path / "ctd-cache"))
    paper_cases = [_measure(entry, store) for entry in benchmark_queries()]
    joblite_cases = [
        _measure(entry, store) for entry in joblite_benchmark_queries()
    ]
    # Every hit must have been re-certified cleanly on this healthy cache.
    assert store.stats.hits >= len(paper_cases) + len(joblite_cases)
    assert store.stats.rejected == 0 and store.stats.quarantined == 0

    gated_ratio = _geomean([case["work_ratio"] for case in paper_cases])
    context_ratio = _geomean([case["work_ratio"] for case in joblite_cases])
    for case in paper_cases + joblite_cases:
        print(
            f"{case['query']} (k={case['width']}, {case['dataset']}): "
            f"baseline {case['baseline_work']} work, "
            f"front door warm {case['frontdoor_warm_work']} work "
            f"({case['work_ratio']:.2f}x), "
            f"wall {case['baseline_s'] * 1000:.1f} / "
            f"{case['warm_s'] * 1000:.1f} ms"
        )
    print(
        f"geomean baseline/front-door work ratio: "
        f"paper queries {gated_ratio:.2f}x (gated), "
        f"JOB-lite {context_ratio:.2f}x (context)"
    )

    payload = {
        "benchmark": "query-frontdoor-vs-baseline",
        "python": platform.python_version(),
        "scale": BENCH_SCALE,
        "paper_cases": paper_cases,
        "joblite_cases": joblite_cases,
        "geomean_work_ratio_paper": gated_ratio,
        "geomean_work_ratio_joblite": context_ratio,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_query.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)

    minimum = float(os.environ.get("BENCH_QUERY_MIN_SPEEDUP", "2.0"))
    assert gated_ratio >= minimum, payload
