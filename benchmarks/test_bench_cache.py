"""Decomposition-cache benchmark — what a canonical-form hit saves.

Times the ConCov-constrained ranked enumeration of several random cyclic
query hypergraphs twice through the solve front door:

* **cold** — ``execute`` with caching disabled: candidate-bag generation
  plus the full solver fixpoint;
* **hit** — ``execute`` against a warmed ``DecompositionCache``:
  canonicalise, read the entry, map the bags through the caller's
  permutation, re-certify.

The gate is on the geometric mean of the per-case ``cold / hit`` ratios
(``BENCH_CACHE_MIN_SPEEDUP``, default 5.0 — CI relaxes it, see
``.github/workflows/ci.yml``): a hit must beat the solve by a wide margin
even though every hit pays full re-certification.  A second gate bounds
the canonicalisation overhead (``BENCH_CACHE_MAX_CANONICAL_FRACTION`` of
the cold solve, default 0.2): the fingerprint must stay a rounding error
next to the work it saves, otherwise consulting the cache would tax every
*miss* noticeably.  Isomorphism invariance is exercised on the way: each
hit is requested through a *relabeled* copy of the solved hypergraph.
The measured numbers land in ``BENCH_cache.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from conftest import RESULTS_DIR, best_of as _best_of, geomean as _geomean

from repro.core.cache import DecompositionCache
from repro.core.solve import SolveRequest, execute
from repro.hypergraph.canonical import canonical_form
from repro.hypergraph.generators import random_cyclic_query_hypergraph
from repro.hypergraph.hypergraph import Hypergraph

#: (cycle length, chords, seed, soft width) — decidable instances whose
#: cold enumeration ranges from tens of milliseconds to just under a
#: second, so the suite stays fast while the ratios are well away from
#: timer noise.
CASES = [
    (6, 2, 0, 3),
    (7, 2, 1, 4),
    (8, 2, 3, 4),
]
HIT_REPEATS = 3


def _relabeled(hypergraph: Hypergraph) -> Hypergraph:
    """An isomorphic copy under fresh vertex and edge names."""
    rename = {
        vertex: f"x{i}"
        for i, vertex in enumerate(sorted(hypergraph.vertices, key=str))
    }
    return Hypergraph(
        {
            f"re_{edge.name}": sorted(rename[v] for v in edge.vertices)
            for edge in hypergraph.edges
        }
    )


def _request(hypergraph: Hypergraph, width: int) -> SolveRequest:
    return SolveRequest(
        hypergraph=hypergraph,
        mode="enumerate",
        width=width,
        constraint="concov",
        preference="nodecount",
        limit=5,
    )


def test_cache_hit_speedup(tmp_path):
    store = DecompositionCache(str(tmp_path / "ctd-cache"))
    cases = []
    for cycle, chords, seed, width in CASES:
        hypergraph = random_cyclic_query_hypergraph(cycle, chords, seed=seed)
        request = _request(hypergraph, width)

        started = time.perf_counter()
        cold = execute(request, cache=None)
        cold_s = time.perf_counter() - started
        assert cold.decided, (cycle, chords, seed, width)

        canonical_s = _best_of(lambda: canonical_form(hypergraph), repeats=3)

        warm = execute(request, cache=store)
        assert warm.cache_status == "stored"

        # Hits go through a *relabeled* copy: the benchmark exercises the
        # canonical fingerprint + permutation mapping, not dict equality.
        relabeled_request = _request(_relabeled(hypergraph), width)

        def _hit():
            result = execute(relabeled_request, cache=store)
            assert result.cache_status == "hit", result.cache_status
            assert result.decided and result.width == width

        hit_s = _best_of(_hit, repeats=HIT_REPEATS)
        cases.append(
            {
                "case": f"cyclic({cycle},{chords},seed={seed})@k={width}",
                "vertices": len(hypergraph.vertices),
                "edges": hypergraph.num_edges(),
                "cold_s": cold_s,
                "hit_s": hit_s,
                "canonical_s": canonical_s,
                "speedup": cold_s / hit_s,
                "canonical_fraction": canonical_s / cold_s,
            }
        )
    assert store.stats.rejected == 0 and store.stats.quarantined == 0

    speedup = _geomean([case["speedup"] for case in cases])
    canonical_fraction = max(case["canonical_fraction"] for case in cases)
    for case in cases:
        print(
            f"{case['case']}: cold {case['cold_s']:.3f} s, "
            f"hit {case['hit_s']:.4f} s ({case['speedup']:.1f}x), "
            f"canonicalise {case['canonical_s'] * 1000:.2f} ms"
        )
    print(
        f"geomean hit speedup {speedup:.1f}x, "
        f"worst canonicalisation fraction {canonical_fraction:.4f}"
    )

    payload = {
        "benchmark": "ctd-cache-hit",
        "python": platform.python_version(),
        "hit_repeats": HIT_REPEATS,
        "cases": cases,
        "geomean_speedup": speedup,
        "max_canonical_fraction": canonical_fraction,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_cache.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)

    minimum = float(os.environ.get("BENCH_CACHE_MIN_SPEEDUP", "5.0"))
    assert speedup >= minimum, payload
    fraction_cap = float(
        os.environ.get("BENCH_CACHE_MAX_CANONICAL_FRACTION", "0.2")
    )
    assert canonical_fraction <= fraction_cap, payload
