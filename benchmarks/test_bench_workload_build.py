"""Workload-build benchmark: cold generation vs snapshot-cache hits.

The scalable workload layer (PR 5) generates every dataset as chunked
numpy columns and caches large builds as versioned ``.npz`` snapshots
(``repro.workloads.snapshot``).  This benchmark measures, per workload at
``BENCH_WORKLOAD_SCALE`` (default 10 — the paper's SF 10 regime):

* ``cold_build_s`` — deterministic generation + columnar ingest,
* ``snapshot_store_s`` — writing the snapshot,
* ``snapshot_load_s`` — a cache hit (raw ``np.load`` + reconstruct),

and asserts the hit/cold speedup geomean stays above
``BENCH_WORKLOAD_MIN_SPEEDUP`` (default 5; relax on noisy shared runners).
Loaded databases are verified against the cold build column by column
before any timing is trusted.  Results go to
``benchmarks/results/BENCH_workload.json`` (gitignored, machine-local) so
future PRs can compare against the geomean recorded in CHANGES.md.
"""

from __future__ import annotations

import json
import os
import platform

import numpy as np
import pytest

from conftest import RESULTS_DIR, best_of, geomean

from repro.workloads.registry import workload_entries
from repro.workloads.snapshot import SnapshotCache, load_snapshot

WORKLOAD_SCALE = float(os.environ.get("BENCH_WORKLOAD_SCALE", "10"))
REPEATS = 3


def _assert_same_database(cold, loaded) -> None:
    assert cold.relation_names() == loaded.relation_names()
    for name in cold.relation_names():
        a, b = cold.relation(name), loaded.relation(name)
        assert a.attributes == b.attributes, name
        assert len(a) == len(b), name
        for attribute in a.attributes:
            assert np.array_equal(a.codes(attribute), b.codes(attribute)), (
                name,
                attribute,
            )
        assert cold.primary_key(name) == loaded.primary_key(name), name
    assert cold.interner.values() == loaded.interner.values()


def test_workload_build_speedup(tmp_path):
    cache = SnapshotCache(str(tmp_path))
    rows = []
    for name, entry in sorted(workload_entries().items()):
        seed = entry.default_seed
        path = cache.path_for(name, WORKLOAD_SCALE, seed, entry.schema_hash)

        cold_database = entry.build(scale=WORKLOAD_SCALE)
        row = {
            "workload": name,
            "scale": WORKLOAD_SCALE,
            "seed": seed,
            "rows": cold_database.total_rows(),
            "cold_build_s": best_of(
                lambda: entry.build(scale=WORKLOAD_SCALE), REPEATS
            ),
            "snapshot_store_s": best_of(
                lambda: cache.store(
                    name, WORKLOAD_SCALE, seed, entry.schema_hash, cold_database
                ),
                REPEATS,
            ),
        }

        # Correctness before timing: the snapshot reconstructs the cold
        # build exactly (codes, schema, interner), and the cache reports a
        # hit.
        loaded, hit = entry.load_with_status(scale=WORKLOAD_SCALE, cache=cache)
        assert hit, name
        _assert_same_database(cold_database, loaded)

        row["snapshot_load_s"] = best_of(lambda: load_snapshot(path), REPEATS)
        row["snapshot_bytes"] = os.path.getsize(path)
        row["speedup"] = row["cold_build_s"] / row["snapshot_load_s"]
        rows.append(row)
        print(f"{name}: cold x{row['speedup']:.1f} vs snapshot hit")

    summary = {
        "scale": WORKLOAD_SCALE,
        "geomean_speedup": geomean([row["speedup"] for row in rows]),
    }
    payload = {
        "benchmark": "workload-cold-build-vs-snapshot-hit",
        "python": platform.python_version(),
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "BENCH_workload.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {out_path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: snapshot hits >= 5x faster than cold builds.
    minimum = float(os.environ.get("BENCH_WORKLOAD_MIN_SPEEDUP", "5"))
    assert summary["geomean_speedup"] >= minimum
