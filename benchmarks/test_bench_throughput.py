"""Throughput benchmark — multi-query batch scheduler vs a serial solve loop.

Models the production shape of decomposition serving: a workload brings a
query *set*, and most of its members repeat a small number of hypergraph
shapes under different vertex names.  Each paper benchmark query (TPC-DS,
LSQB, Hetionet) is expanded into ``VARIANTS`` relabeled isomorphic copies;
the serial baseline answers them one ``execute()`` call each, while the
batch layer (:mod:`repro.runtime.scheduler`) canonicalises the set up
front, solves one representative per shape group — dispatched to a worker
pool — and answers the rest by certified fan-out through each variant's
own permutation.  Every fanned-out answer is re-certified against its own
hypergraph, so the comparison is between two *fully certified* ways of
answering the same queries; the benchmark asserts the answers agree.

Results go to ``benchmarks/results/BENCH_throughput.json``: queries/sec
for the serial loop and the batch runner per dataset group, the reuse
counters, and the geomean throughput speedup.  The gate defaults to the
tentpole's 2× at ``WORKERS`` workers and can be relaxed via
``BENCH_THROUGHPUT_MIN_SPEEDUP`` for noisy shared runners (single-core
containers still clear it comfortably: the speedup comes from shape
dedup, not parallel wall-clock).  One additional ungated row records
intra-solve sharding (``execute(shards=4)``) on a larger synthetic
instance — informational on small machines, a real speedup on many-core
ones.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time

from conftest import RESULTS_DIR, geomean as _geomean

from repro.core.solve import SolveRequest, execute
from repro.hypergraph.hypergraph import Edge, Hypergraph
from repro.runtime.scheduler import BatchSolvePlan, run_plan
from repro.workloads.registry import benchmark_queries

#: Relabeled isomorphic copies per benchmark query — the duplicate factor
#: a workload-style query set exhibits.
VARIANTS = 8
#: Worker processes for representative solves (the tentpole's gate point).
WORKERS = 4
#: Small scale: the hypergraph shape (all that matters for shape-pure
#: solves) is scale-independent, and the baseline should measure solving,
#: not data generation.
WORKLOAD_SCALE = 0.25


def _relabeled(hypergraph: Hypergraph, seed: int) -> Hypergraph:
    """An isomorphic copy under a seeded vertex/edge renaming."""
    vertices = sorted(hypergraph.vertices, key=str)
    shuffled = list(range(len(vertices)))
    random.Random(seed).shuffle(shuffled)
    mapping = {v: f"u{index:03d}" for v, index in zip(vertices, shuffled)}
    edges = [
        Edge(f"r{seed}_{edge.name}", frozenset(mapping[v] for v in edge.vertices))
        for edge in sorted(hypergraph.edges, key=lambda e: e.name)
    ]
    return Hypergraph(edges)


def _query_set():
    """(dataset, task dict) pairs: every benchmark query × VARIANTS copies.

    Requests are shape-pure (ConCov-constrained enumeration, no data
    preference), so both sides solve from the hypergraph alone and the
    scheduler may group isomorphic copies.
    """
    tasks = []
    for entry in benchmark_queries():
        _, query = entry.load(scale=WORKLOAD_SCALE)
        base = query.hypergraph()
        for variant in range(VARIANTS):
            request = SolveRequest(
                hypergraph=_relabeled(base, seed=variant * 101 + 9),
                mode="enumerate",
                width=entry.width,
                constraint="concov",
                limit=1,
                label=f"{entry.name}-v{variant}",
            )
            tasks.append(
                (
                    entry.dataset,
                    {
                        "kind": "solve",
                        "query": f"{entry.name}-v{variant}",
                        "request": request.to_payload(),
                    },
                )
            )
    return tasks


def test_batch_throughput_vs_serial():
    from repro.experiments.harness import execute_batch_task
    from repro.runtime.parallel import get_pool

    tasks = _query_set()
    datasets = sorted({dataset for dataset, _ in tasks})

    # Pre-warm the worker pool outside the timed region: spawn start-up
    # and each worker's first-task imports are a once-per-service cost,
    # the benchmark measures steady-state throughput (same convention as
    # the warm-up runs in the other suites).  Enough trivial tasks that
    # every worker runs at least one.
    pool = get_pool(WORKERS)
    trivial = SolveRequest(
        hypergraph=Hypergraph([Edge("e", frozenset(["a", "b"]))]),
        mode="decide",
        width=1,
    )
    pool.map(
        execute_batch_task,
        [
            {"kind": "solve", "request": trivial.to_payload(), "cache_off": True}
            for _ in range(WORKERS * 4)
        ],
    )

    # -- serial baseline: one execute() per query ------------------------------
    serial_results = {}
    serial_elapsed = {dataset: 0.0 for dataset in datasets}
    for dataset, task in tasks:
        request = SolveRequest.from_payload(task["request"])
        started = time.perf_counter()
        result = execute(request, cache=None)
        serial_elapsed[dataset] += time.perf_counter() - started
        serial_results[task["query"]] = result

    # -- batch: one plan per dataset group, WORKERS-wide -----------------------
    rows = []
    for dataset in datasets:
        group_tasks = [task for d, task in tasks if d == dataset]
        started = time.perf_counter()
        plan = BatchSolvePlan.from_tasks(group_tasks)
        report = run_plan(plan, workers=WORKERS, cache=None)
        parallel_s = time.perf_counter() - started

        # Both sides answered every query, and identically.
        for task, wire in zip(group_tasks, report.results):
            assert isinstance(wire, dict) and wire.get("ok"), task["query"]
            solo = serial_results[task["query"]]
            assert wire["decided"] == solo.decided, task["query"]
            assert wire["width"] == solo.width, task["query"]
            assert len(wire["decompositions"]) == len(solo.decompositions), task[
                "query"
            ]
        assert report.counters["fanout"] > 0, dataset
        assert report.counters["solves"] < len(group_tasks), dataset

        serial_s = serial_elapsed[dataset]
        row = {
            "dataset": dataset,
            "queries": len(group_tasks),
            "shape_groups": len(plan.groups),
            "workers": WORKERS,
            "serial_s": serial_s,
            "serial_qps": len(group_tasks) / serial_s,
            "parallel_s": parallel_s,
            "parallel_qps": len(group_tasks) / parallel_s,
            "speedup": serial_s / parallel_s,
            "counters": report.counters,
        }
        rows.append(row)
        print(
            f"{dataset}: serial {row['serial_qps']:.1f} q/s, "
            f"batch {row['parallel_qps']:.1f} q/s, x{row['speedup']:.1f} "
            f"({row['counters']['solves']} solves, "
            f"{row['counters']['fanout']} fan-outs)"
        )

    # -- intra-solve sharding (informational, ungated) -------------------------
    # One larger synthetic instance where the pre-fixpoint stages dominate;
    # on single-core machines the sharded figure mostly shows the overhead
    # floor, on many-core ones the stripe-level parallel speedup.
    from repro.hypergraph.generators import random_hypergraph

    sharded_hypergraph = random_hypergraph(40, 32, max_edge_size=3, seed=23)
    sharding_request = SolveRequest(
        hypergraph=sharded_hypergraph, mode="decide", width=2, label="sharding-probe"
    )
    started = time.perf_counter()
    serial_solve = execute(sharding_request, cache=None)
    sharding_serial_s = time.perf_counter() - started
    started = time.perf_counter()
    sharded_solve = execute(sharding_request, cache=None, shards=4)
    sharding_sharded_s = time.perf_counter() - started
    assert sharded_solve.decided == serial_solve.decided
    sharding_row = {
        "instance": "random40-k2-decide",
        "shards": 4,
        "serial_s": sharding_serial_s,
        "sharded_s": sharding_sharded_s,
        "speedup": sharding_serial_s / sharding_sharded_s,
    }
    print(
        f"intra-solve sharding: serial {sharding_serial_s*1000:.0f}ms, "
        f"4 shards {sharding_sharded_s*1000:.0f}ms "
        f"(x{sharding_row['speedup']:.2f}, informational)"
    )

    summary = {
        "geomean_throughput_speedup": _geomean([row["speedup"] for row in rows]),
        "serial_qps_total": sum(r["queries"] for r in rows)
        / sum(r["serial_s"] for r in rows),
        "parallel_qps_total": sum(r["queries"] for r in rows)
        / sum(r["parallel_s"] for r in rows),
    }
    payload = {
        "benchmark": "batch-scheduler-vs-serial-solve-loop",
        "python": platform.python_version(),
        "variants_per_query": VARIANTS,
        "workers": WORKERS,
        "datasets": rows,
        "intra_solve_sharding": sharding_row,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_throughput.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: ≥2× query throughput at WORKERS workers.
    minimum = float(os.environ.get("BENCH_THROUGHPUT_MIN_SPEEDUP", "2"))
    assert summary["geomean_throughput_speedup"] >= minimum
