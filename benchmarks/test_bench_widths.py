"""Experiments E6 and E7 — the width-hierarchy facts of the paper's examples.

E6 reproduces the width separations the paper proves for its example
hypergraphs (Example 1, Appendix A.2, the C5 discussion of Section 6).  E7
builds a member of the ``H*_BOG`` family of Theorem 9 and verifies the parts
of the construction that are checkable at laptop scale (see DESIGN.md for
the documented substitution).
"""

from conftest import write_result

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.soft import certify_soft_decomposition, soft_hypertree_width
from repro.decompositions.width import bag_cover_number
from repro.experiments.figures import width_hierarchy_rows
from repro.experiments.paper_witnesses import h3_soft_decomposition
from repro.experiments.report import format_table
from repro.hypergraph.library import hypergraph_bog_star, hypergraph_h3


def test_width_hierarchy(benchmark):
    rows = benchmark.pedantic(width_hierarchy_rows, rounds=1, iterations=1)
    text = format_table(rows, ["hypergraph", "ghw", "shw", "hw", "concov_shw", "paper"])
    print()
    print(text)
    write_result("width_hierarchy", text)

    h2_row = next(row for row in rows if "H2" in row["hypergraph"])
    assert (h2_row["ghw"], h2_row["shw"], h2_row["hw"]) == (2, 2, 3)
    c5_row = next(row for row in rows if "C5" in row["hypergraph"])
    assert (c5_row["shw"], c5_row["hw"], c5_row["concov_shw"]) == (2, 2, 3)


def test_h3_width3_witness(benchmark):
    """Appendix A.2: the explicit width-3 soft decomposition of H3 is valid."""
    h3 = hypergraph_h3()

    def check():
        decomposition = h3_soft_decomposition(h3)
        return (
            decomposition.is_valid(),
            max(bag_cover_number(h3, bag) for bag in decomposition.bags()),
        )

    valid, max_cover = benchmark.pedantic(check, rounds=1, iterations=1)
    assert valid
    assert max_cover <= 3


def test_bog_star_family(benchmark):
    """Theorem 9 substitute: the H*_BOG-style construction at small parameters.

    The full width-gap claim (shw1 + n <= hw) needs Adler's punctured
    hypergraphs and is not decidable at this scale; what we verify is the
    key claim the paper's proof makes about the modification: blocking the
    balloon rows ``a_1..a_s`` separates the star vertex, so
    ``{*} ∪ B ∈ Soft^0_{H*, s+1}`` — witnessed explicitly via Definition 3
    (λ2 = the row edges, λ1 = the row edges plus one star edge).
    """
    from repro.core.candidate_bags import soft_bag
    from repro.hypergraph.components import component_vertices, edge_components

    def build():
        hypergraph = hypergraph_bog_star(n=1, grid_size=2)
        row_edges = [e for e in hypergraph.edges if e.name.startswith("a_")]
        star_edge = next(e for e in hypergraph.edges if e.name.startswith("star_"))
        separator = hypergraph.vertices_of(row_edges)
        components = edge_components(hypergraph, separator)
        produced = {
            frozenset(
                hypergraph.vertices_of(row_edges + [star_edge])
                & component_vertices(component)
            )
            for component in components
        }
        return hypergraph, produced

    hypergraph, produced = benchmark.pedantic(build, rounds=1, iterations=1)
    balloon_and_star = frozenset(
        v for v in hypergraph.vertices if str(v).startswith("g_") or v == "star"
    )
    assert balloon_and_star in produced
