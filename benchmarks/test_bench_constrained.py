"""Constrained-solver benchmark — Algorithm 2 worklist vs the round-robin seed.

Times the event-driven ``ConstrainedCTDSolver`` (fragment-memoised, monotone
key composition) against the preserved seed dynamic program
:func:`repro.core.reference.reference_constrained_ctd`, which rebuilds a full
``TreeDecomposition`` and re-runs ``constraint.holds_recursively`` for every
(block × candidate) probe in every round.  Every comparison also asserts the
same feasibility decision and the same optimal preference key, so this
doubles as an end-to-end equivalence check on realistic instances.

Results are written to ``benchmarks/results/BENCH_constrained.json``.  The
speedup gate defaults to the tentpole's 3× geomean and can be relaxed via
``BENCH_CONSTRAINED_MIN_SPEEDUP`` for noisy shared runners (the measured
geomean is ~10×, so the default keeps comfortable margin on a quiet
machine).  The reference is timed with a single run (it is the slow side);
the worklist solver takes best-of-3 to measure its steady state.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import (
    BENCH_REFERENCE_MODE,
    RESULTS_DIR,
    best_of as _best_of,
    geomean as _geomean,
    reference_sampled,
)

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.preferences import (
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
    ShallowCyclicityPreference,
)
from repro.core.reference import reference_constrained_ctd
from repro.hypergraph.generators import (
    random_cyclic_query_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.library import cycle_hypergraph, hypergraph_h2


def _synthetic_cost():
    # Integer node/edge costs: exact arithmetic, so optimal keys can be
    # compared with ``==`` across both solvers.
    return MonotoneCostPreference(
        node_cost=lambda bag: len(bag) ** 2,
        edge_cost=lambda parent, child: len(parent & child) + 1,
    )


def _instances():
    # (name, hypergraph, k, constraint factory, preference factory)
    return [
        (
            "h2-k2-lexicographic",
            hypergraph_h2(),
            2,
            lambda h: None,
            lambda h: LexicographicPreference(
                [MaxBagSizePreference(), NodeCountPreference()]
            ),
        ),
        (
            "h2-k3-concov-cost",
            hypergraph_h2(),
            3,
            lambda h: ConnectedCoverConstraint(h, 3),
            lambda h: _synthetic_cost(),
        ),
        (
            # ConCov is infeasible at width 2 on C12 — a pure decide workload.
            "cycle12-k2-concov-infeasible",
            cycle_hypergraph(12),
            2,
            lambda h: ConnectedCoverConstraint(h, 2),
            lambda h: MaxBagSizePreference(),
        ),
        (
            "cyclic-query10-k2-shallowcyc",
            random_cyclic_query_hypergraph(10, 3, seed=5),
            2,
            lambda h: None,
            lambda h: ShallowCyclicityPreference(h),
        ),
        (
            "random18-k2-cost",
            random_hypergraph(18, 13, max_edge_size=3, seed=3),
            2,
            lambda h: None,
            lambda h: _synthetic_cost(),
        ),
    ]


def test_constrained_speedup_vs_reference():
    rows = []
    for index, (name, hypergraph, k, make_constraint, make_preference) in enumerate(
        _instances()
    ):
        hypergraph.bitsets  # build the mask tables outside the timed region
        sampled = reference_sampled(index)
        bags = soft_candidate_bags(hypergraph, k)
        constraint = make_constraint(hypergraph)
        preference = make_preference(hypergraph)
        row = {
            "instance": name,
            "num_vertices": hypergraph.num_vertices(),
            "num_edges": hypergraph.num_edges(),
            "k": k,
            "num_candidate_bags": len(bags),
            "sampled": sampled,
        }

        reference_result = {}
        if sampled:
            row["reference_s"] = _best_of(
                lambda: reference_result.update(
                    td=reference_constrained_ctd(
                        hypergraph, bags, constraint=constraint, preference=preference
                    )
                ),
                repeats=1,
            )
        worklist_result = {}

        def run_worklist():
            solver = ConstrainedCTDSolver(hypergraph, bags, constraint, preference)
            worklist_result.update(td=solver.solve(), key=solver.optimal_key())

        row["worklist_s"] = _best_of(run_worklist, repeats=3)

        worklist_td = worklist_result["td"]
        row["feasible"] = worklist_td is not None
        if worklist_td is not None:
            assert worklist_td.is_valid(), name
            if constraint is not None:
                assert constraint.holds_recursively(worklist_td), name
        if sampled:
            reference_td = reference_result["td"]
            assert (reference_td is None) == (worklist_td is None), name
            if worklist_td is not None:
                reference_key = preference.key(reference_td)
                assert worklist_result["key"] == reference_key, name
                row["optimal_key"] = repr(reference_key)
            row["speedup"] = row["reference_s"] / row["worklist_s"]
            print(
                f"{name}: ref {row['reference_s']*1000:.1f}ms "
                f"worklist {row['worklist_s']*1000:.1f}ms x{row['speedup']:.1f}"
            )
        else:
            print(
                f"{name}: worklist {row['worklist_s']*1000:.1f}ms (not sampled)"
            )
        rows.append(row)

    summary = {
        "geomean_speedup": _geomean(
            [row["speedup"] for row in rows if "speedup" in row]
        )
    }
    payload = {
        "benchmark": "constrained-worklist-vs-round-robin-reference",
        "python": platform.python_version(),
        "reference_mode": BENCH_REFERENCE_MODE,
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_constrained.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: ≥3× on the constrained/preference-optimised solve.
    minimum = float(os.environ.get("BENCH_CONSTRAINED_MIN_SPEEDUP", "3"))
    assert summary["geomean_speedup"] >= minimum
