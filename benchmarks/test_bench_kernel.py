"""Kernel benchmark — bitset kernel vs the frozenset reference implementations.

Times candidate-bag generation (``Soft_{H,k}`` and the iterated fixpoint
``Soft^∞_{H,k}``) and the Algorithm 1 CandidateTD solve on library and
generator hypergraphs, once through the mask-based production code and once
through the seed implementations preserved in :mod:`repro.core.reference`.
Every comparison also asserts *identical* bag sets and decisions, so this
doubles as an end-to-end equivalence check on realistic inputs.

Results are written to ``benchmarks/results/BENCH_kernel.json`` so future
PRs can track the speedup trajectory; the summary asserts the speedup the
kernel was built for.  The target defaults to the tentpole's 5× but can be
relaxed via ``BENCH_KERNEL_MIN_SPEEDUP`` for noisy shared runners (the
measured geomean is ~9×, so the default still has comfortable margin on a
quiet machine).  The reference is timed with a single run (it is the slow
side); the kernel takes best-of-3 to measure its steady state.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from conftest import (
    BENCH_REFERENCE_MODE,
    RESULTS_DIR,
    best_of as _best_of,
    geomean as _geomean,
    reference_sampled,
)

from repro.core.candidate_bags import SoftBagGenerator
from repro.core.ctd import CandidateTDSolver
from repro.core.reference import (
    ReferenceSoftBagGenerator,
    reference_candidate_td_decide,
)
from repro.hypergraph.generators import (
    random_cyclic_query_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.library import cycle_hypergraph, hypergraph_h2


def _instances():
    return [
        # (name, hypergraph, k, time_fixpoint, time_ctd)
        ("h2-k2", hypergraph_h2(), 2, True, True),
        ("cycle24-k2", cycle_hypergraph(24), 2, False, True),
        ("cyclic-query12-k2", random_cyclic_query_hypergraph(12, 3, seed=5), 2, True, True),
        ("random26-k2", random_hypergraph(26, 18, max_edge_size=3, seed=3), 2, True, True),
        # Generation-only: the reference fixpoint solver needs minutes here.
        ("random32-k3", random_hypergraph(32, 24, max_edge_size=3, seed=11), 3, False, False),
    ]


def test_kernel_speedup_vs_reference():
    rows = []
    for index, (name, hypergraph, k, time_fixpoint, time_ctd) in enumerate(
        _instances()
    ):
        hypergraph.bitsets  # build the mask tables outside the timed region
        sampled = reference_sampled(index)
        row = {
            "instance": name,
            "num_vertices": hypergraph.num_vertices(),
            "num_edges": hypergraph.num_edges(),
            "k": k,
            "sampled": sampled,
        }

        # -- Soft_{H,k} generation -------------------------------------------------
        reference_bags = {}
        kernel_bags = {}
        if sampled:
            row["generation_reference_s"] = _best_of(
                lambda: reference_bags.update(
                    bags=ReferenceSoftBagGenerator(hypergraph, k).candidate_bags(0)
                ),
                repeats=1,
            )
        row["generation_kernel_s"] = _best_of(
            lambda: kernel_bags.update(
                bags=SoftBagGenerator(hypergraph, k).candidate_bags(0)
            ),
            repeats=3,
        )
        row["num_candidate_bags"] = len(kernel_bags["bags"])
        if sampled:
            assert kernel_bags["bags"] == reference_bags["bags"], name
            row["generation_speedup"] = (
                row["generation_reference_s"] / row["generation_kernel_s"]
            )
            reference_total = row["generation_reference_s"]
        kernel_total = row["generation_kernel_s"]

        # -- iterated fixpoint Soft^∞_{H,k} ---------------------------------------
        if time_fixpoint:
            reference_fix = {}
            kernel_fix = {}
            if sampled:
                row["fixpoint_reference_s"] = _best_of(
                    lambda: reference_fix.update(
                        bags=ReferenceSoftBagGenerator(
                            hypergraph, k
                        ).fixpoint_candidate_bags(max_level=3)
                    ),
                    repeats=1,
                )
            row["fixpoint_kernel_s"] = _best_of(
                lambda: kernel_fix.update(
                    bags=SoftBagGenerator(hypergraph, k).fixpoint_candidate_bags(
                        max_level=3
                    )
                ),
                repeats=3,
            )
            if sampled:
                assert kernel_fix["bags"] == reference_fix["bags"], name
                row["fixpoint_speedup"] = (
                    row["fixpoint_reference_s"] / row["fixpoint_kernel_s"]
                )
                reference_total += row["fixpoint_reference_s"]
            kernel_total += row["fixpoint_kernel_s"]

        # -- CandidateTD solve ------------------------------------------------------
        if time_ctd:
            bags = kernel_bags["bags"]
            reference_decision = {}
            kernel_decision = {}
            if sampled:
                row["ctd_reference_s"] = _best_of(
                    lambda: reference_decision.update(
                        value=reference_candidate_td_decide(hypergraph, bags)
                    ),
                    repeats=1,
                )
            row["ctd_kernel_s"] = _best_of(
                lambda: kernel_decision.update(
                    value=CandidateTDSolver(hypergraph, bags).decide()
                ),
                repeats=3,
            )
            row["ctd_decision"] = kernel_decision["value"]
            if sampled:
                assert kernel_decision["value"] == reference_decision["value"], name
                row["ctd_speedup"] = row["ctd_reference_s"] / row["ctd_kernel_s"]
                reference_total += row["ctd_reference_s"]
            kernel_total += row["ctd_kernel_s"]

        if sampled:
            row["combined_speedup"] = reference_total / kernel_total
            print(
                f"{name}: gen x{row['generation_speedup']:.1f}"
                + (f" fix x{row['fixpoint_speedup']:.1f}" if time_fixpoint else "")
                + (f" ctd x{row['ctd_speedup']:.1f}" if time_ctd else "")
                + f" combined x{row['combined_speedup']:.1f}"
            )
        else:
            print(f"{name}: kernel {kernel_total*1000:.1f}ms (reference not sampled)")
        rows.append(row)

    summary = {
        "geomean_generation_speedup": _geomean(
            [row["generation_speedup"] for row in rows if "generation_speedup" in row]
        ),
        "geomean_fixpoint_speedup": _geomean(
            [row["fixpoint_speedup"] for row in rows if "fixpoint_speedup" in row]
        ),
        "geomean_ctd_speedup": _geomean(
            [row["ctd_speedup"] for row in rows if "ctd_speedup" in row]
        ),
        "geomean_combined_speedup": _geomean(
            [row["combined_speedup"] for row in rows if "combined_speedup" in row]
        ),
    }
    payload = {
        "benchmark": "bitset-kernel-vs-frozenset-reference",
        "python": platform.python_version(),
        "reference_mode": BENCH_REFERENCE_MODE,
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_kernel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: ≥5× on candidate-bag generation + CTD solve.
    minimum = float(os.environ.get("BENCH_KERNEL_MIN_SPEEDUP", "5"))
    assert summary["geomean_combined_speedup"] >= minimum
