"""Ranked-enumeration benchmark — exact lazy any-k vs the brute-force reference.

Times the lazy enumerator of :mod:`repro.core.enumerate` (Lawler-style
successor streams over the shared solver core, bottom-up key composition)
against :func:`repro.core.reference.reference_enumerate_ctds`, which builds
*every* block option eagerly, materialises a full ``TreeDecomposition`` and
re-runs ``constraint.holds_recursively`` per option, and sorts at the end.
The workload is the paper's Section 7 scenario: the top-10 cheapest CTDs per
benchmark query under the ConCov constraint and the Equation (6) estimate
cost (Appendix C.2.1), plus one synthetic instance exercising the
unconstrained path.  Every comparison also asserts both enumerators return
the same number of decompositions with matching cost keys, so this doubles
as an end-to-end equivalence check on realistic instances.

Results are written to ``benchmarks/results/BENCH_enumerate.json``.  The
speedup gate defaults to the tentpole's 3× geomean and can be relaxed via
``BENCH_ENUMERATE_MIN_SPEEDUP`` for noisy shared runners (the measured
geomean is well above 10×, so the default keeps comfortable margin on a
quiet machine).  The reference is timed with a single run (it is the slow
side); the lazy enumerator takes best-of-3 to measure its steady state.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import (
    BENCH_REFERENCE_MODE,
    RESULTS_DIR,
    best_of as _best_of,
    geomean as _geomean,
    reference_sampled,
)

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.enumerate import enumerate_ctds
from repro.core.preferences import MonotoneCostPreference
from repro.core.reference import reference_enumerate_ctds
from repro.db.cost import EstimateCostModel
from repro.hypergraph.library import cycle_hypergraph
from repro.workloads.registry import benchmark_queries

TOP_K = 10
#: Small scale keeps database construction fast; the enumeration itself only
#: depends on the query hypergraph and the estimator's statistics.
WORKLOAD_SCALE = 0.1


def _synthetic_cost():
    return MonotoneCostPreference(
        node_cost=lambda bag: len(bag) ** 2,
        edge_cost=lambda parent, child: len(parent & child) + 1,
    )


def _instances():
    """(name, hypergraph, bags, constraint, preference) tuples."""
    instances = []
    for entry in benchmark_queries():
        database, query = entry.load(scale=WORKLOAD_SCALE)
        hypergraph = query.hypergraph()
        bags = soft_candidate_bags(hypergraph, entry.width)
        constraint = ConnectedCoverConstraint(hypergraph, entry.width)
        preference = EstimateCostModel(query, database).as_preference()
        instances.append(
            (f"{entry.name}-top{TOP_K}-concov-estimates", hypergraph, bags,
             constraint, preference)
        )
    cycle = cycle_hypergraph(6)
    instances.append(
        (
            "cycle6-top10-unconstrained-cost",
            cycle,
            soft_candidate_bags(cycle, 2),
            None,
            _synthetic_cost(),
        )
    )
    return instances


def test_enumerate_speedup_vs_reference():
    rows = []
    for index, (name, hypergraph, bags, constraint, preference) in enumerate(
        _instances()
    ):
        hypergraph.bitsets  # build the mask tables outside the timed region
        sampled = reference_sampled(index)
        row = {
            "instance": name,
            "num_vertices": hypergraph.num_vertices(),
            "num_edges": hypergraph.num_edges(),
            "num_candidate_bags": len(bags),
            "top_k": TOP_K,
            "sampled": sampled,
        }

        reference_result = {}
        if sampled:
            row["reference_s"] = _best_of(
                lambda: reference_result.update(
                    tds=reference_enumerate_ctds(
                        hypergraph,
                        bags,
                        constraint=constraint,
                        preference=preference,
                        limit=TOP_K,
                    )
                ),
                repeats=1,
            )
        lazy_result = {}
        row["lazy_s"] = _best_of(
            lambda: lazy_result.update(
                tds=enumerate_ctds(
                    hypergraph,
                    bags,
                    constraint=constraint,
                    preference=preference,
                    limit=TOP_K,
                )
            ),
            repeats=3,
        )

        lazy_tds = lazy_result["tds"]
        row["num_decompositions"] = len(lazy_tds)
        lazy_keys = [preference.key(d) for d in lazy_tds]
        assert lazy_keys == sorted(lazy_keys), name
        for lazy_td in lazy_tds:
            assert lazy_td.is_valid(), name
            if constraint is not None:
                assert constraint.holds_recursively(lazy_td), name
        if sampled:
            reference_tds = reference_result["tds"]
            assert len(reference_tds) == len(lazy_tds), name
            for lazy_td, reference_td in zip(lazy_tds, reference_tds):
                # The workload keys are floats over a tie-heavy cost landscape:
                # mathematical ties may be ordered differently when float
                # summation order differs between the composed and the re-walked
                # Eq. 6 cost, so the ranked *key* sequences are compared up to
                # rounding here; exact sequence equality is pinned by the
                # integer-cost property suite.
                lazy_key = preference.key(lazy_td)
                reference_key = preference.key(reference_td)
                assert abs(lazy_key - reference_key) <= 1e-9 * max(
                    1.0, abs(reference_key)
                ), (name, lazy_key, reference_key)
            row["speedup"] = row["reference_s"] / row["lazy_s"]
            print(
                f"{name}: ref {row['reference_s']*1000:.1f}ms "
                f"lazy {row['lazy_s']*1000:.1f}ms x{row['speedup']:.1f}"
            )
        else:
            print(f"{name}: lazy {row['lazy_s']*1000:.1f}ms (not sampled)")
        rows.append(row)

    summary = {
        "geomean_speedup": _geomean(
            [row["speedup"] for row in rows if "speedup" in row]
        )
    }
    payload = {
        "benchmark": "exact-lazy-anyk-vs-exhaustive-reference",
        "python": platform.python_version(),
        "top_k": TOP_K,
        "reference_mode": BENCH_REFERENCE_MODE,
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_enumerate.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: ≥3× on the paper-workload top-10 enumerations.
    minimum = float(os.environ.get("BENCH_ENUMERATE_MIN_SPEEDUP", "3"))
    assert summary["geomean_speedup"] >= minimum
