"""Experiment E4 — Table 1: per-query candidate-bag statistics.

Paper columns: ConCov-shw, |H|, |Soft_{H,k}|, |ConCov-Soft_{H,k}| and the
time to produce the top-10 best TDs.  The reproduced table should show the
same qualitative picture: single-digit to low-double-digit candidate-bag
sets and millisecond-scale top-10 enumeration.
"""

from conftest import BENCH_SCALE, write_result

from repro.experiments.figures import render_table1, table1_rows


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    text = render_table1(scale=BENCH_SCALE)
    print()
    print(text)
    write_result("table1", text)

    assert [row["query"] for row in rows] == [
        "q_ds",
        "q_hto",
        "q_hto2",
        "q_hto3",
        "q_hto4",
        "q_lb",
    ]
    by_query = {row["query"]: row for row in rows}
    # Hypergraph sizes are structural facts and must match the paper exactly.
    assert by_query["q_ds"]["hypergraph_size"] == 5
    assert by_query["q_hto"]["hypergraph_size"] == 7
    assert by_query["q_hto2"]["hypergraph_size"] == 7
    assert by_query["q_hto3"]["hypergraph_size"] == 4
    assert by_query["q_hto4"]["hypergraph_size"] == 6
    assert by_query["q_lb"]["hypergraph_size"] == 6
    # Candidate-bag sets stay small and the ConCov filter only shrinks them.
    for row in rows:
        assert row["soft_bags"] <= 60
        assert row["concov_soft_bags"] <= row["soft_bags"]
        assert row["concov_shw"] in (2, 3)
        assert row["num_decompositions"] >= 1
