"""Supervision benchmark — the cost of the fault-tolerant batch runtime.

Times the same two-query batch twice:

* **direct** — ``execute_batch_task`` called in-process, no supervision,
  no certification.  This is what a bare ``for`` loop over the harness
  would cost.
* **supervised** — the full runtime: a spawned worker process per task,
  the parent-side hard-timeout watchdog, and independent re-certification
  of every result crossing the process boundary (no ledger, so nothing is
  cached between repeats).

Both paths must produce semantically identical certified results.  The
gate is on *absolute per-task* overhead (``BENCH_SUPERVISOR_MAX_OVERHEAD``
seconds, default 5.0): spawning an interpreter and re-importing the
solver stack costs a fixed ~1s per task regardless of solve time, so a
ratio gate would be meaningless for sub-second solves and trivially green
for hour-long ones.  The measured numbers land in
``BENCH_supervisor.json``.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import RESULTS_DIR, best_of as _best_of

from repro.core.certify import certify_ctd, decomposition_from_payload
from repro.experiments.harness import (
    BatchCertifier,
    batch_task_specs,
    execute_batch_task,
)
from repro.runtime.supervisor import RetryPolicy, Supervisor

QUERIES = ["q_hto", "q_hto2"]
SCALE = 0.3
REPEATS = 2


def _specs():
    return batch_task_specs(queries=QUERIES, scale=SCALE)


def _direct_payload(spec):
    return dict(spec, mode="ranked", level="full")


def _run_direct():
    return [execute_batch_task(_direct_payload(spec)) for spec in _specs()]


def _make_supervisor():
    return Supervisor(
        certifier=BatchCertifier(),
        max_workers=1,
        hard_timeout=120.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.05, jitter=0.0),
    )


def _run_supervised():
    report = _make_supervisor().run(_specs())
    assert [r.status for r in report.results] == ["ok"] * len(QUERIES)
    return [r.result for r in report.results]


def _semantic(result):
    return (result["query"], result["mode"], result["width"], result["decomposition"])


def test_supervision_overhead():
    # Warm the snapshot cache so neither path pays the one-off build.
    direct = _run_direct()
    supervised = _run_supervised()

    # Equivalence: the supervised batch returns exactly the results the
    # bare loop computes, and they certify against a trusted rebuild.
    assert [_semantic(r) for r in supervised] == [_semantic(r) for r in direct]
    certifier = BatchCertifier()
    for spec, result in zip(_specs(), supervised):
        certification = certifier(spec, result)
        assert certification.ok, certification.describe()
        hypergraph, _ = certifier._trusted_hypergraph(
            result["query"], SCALE, spec.get("seed")
        )
        rebuilt = decomposition_from_payload(hypergraph, result["decomposition"])
        assert certify_ctd(hypergraph, rebuilt, width_claim=result["width"]).ok

    direct_s = _best_of(_run_direct, repeats=REPEATS)
    supervised_s = _best_of(_run_supervised, repeats=REPEATS)
    per_task_overhead = (supervised_s - direct_s) / len(QUERIES)
    print(
        f"batch of {len(QUERIES)}: direct {direct_s:.3f} s, "
        f"supervised {supervised_s:.3f} s "
        f"(+{per_task_overhead:.3f} s/task for isolation + certification)"
    )

    payload = {
        "benchmark": "supervisor-overhead",
        "python": platform.python_version(),
        "repeats": REPEATS,
        "queries": QUERIES,
        "scale": SCALE,
        "direct_s": direct_s,
        "supervised_s": supervised_s,
        "per_task_overhead_s": per_task_overhead,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_supervisor.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(payload, handle, indent=2)

    maximum = float(os.environ.get("BENCH_SUPERVISOR_MAX_OVERHEAD", "5.0"))
    assert per_task_overhead <= maximum, payload
