"""Experiment E1 — Figure 5: the TPC-DS query q_ds under ConCov-shw 2.

The paper's figure plots, for every ConCov width-2 decomposition of q_ds,
its evaluation time against its cost under two cost functions, plus the
baseline ("just run the query on PostgreSQL").  The reproduced series report
the deterministic work measure of the in-memory engine; the shape to check:

* decompositions differ by a large factor (the paper: best cuts the baseline
  in half, worst is ~10x slower than the best),
* the actual-cardinality cost orders decompositions roughly like their
  measured effort,
* the baseline sits inside the range spanned by the decompositions.
"""

from conftest import BENCH_SCALE, write_result

from repro.experiments.figures import figure5_rows, render_figure5


def _spearman_like_agreement(costs, works):
    """Fraction of pairs ordered the same way by cost and by measured work."""
    agree = total = 0
    for i in range(len(costs)):
        for j in range(i + 1, len(costs)):
            if costs[i] == costs[j] or works[i] == works[j]:
                continue
            total += 1
            if (costs[i] < costs[j]) == (works[i] < works[j]):
                agree += 1
    return agree / total if total else 1.0


def test_figure5(benchmark):
    rows, baseline = benchmark.pedantic(
        lambda: figure5_rows(scale=BENCH_SCALE, limit=8), rounds=1, iterations=1
    )
    text = render_figure5(scale=BENCH_SCALE, limit=8)
    print()
    print(text)
    write_result("figure5", text)

    assert len(rows) >= 4
    works = [row["work"] for row in rows]
    costs = [row["cost_cardinalities"] for row in rows]
    # All decompositions compute the same answer.
    assert len({row["result"] for row in rows}) == 1
    assert rows[0]["result"] == baseline["result"]
    # Decompositions differ noticeably in measured effort.
    assert max(works) > min(works)
    # The cardinality-based cost function is informative: it orders the
    # decompositions mostly like the measured work (Figure 5, left).
    assert _spearman_like_agreement(costs, works) >= 0.5
    # The baseline is within the span of the decompositions (some are
    # faster, some slower), mirroring the paper's observation.
    assert baseline["work"] >= min(works) * 0.3
