"""Join benchmark — columnar relation engine vs the tuple-engine reference.

Times the relational hot path twice: micro-benchmarks of the individual
operators (natural join, semi-join single- and packed-key, projection with
dedup) on large synthetic relations, and workload-level Yannakakis runs of
the paper's six benchmark queries through their first-ranked candidate tree
decomposition — once on the columnar code-array engine
(:mod:`repro.db.relation`) and once on the seed tuple-at-a-time spec
(:mod:`repro.db.reference`).  Every comparison also asserts identical
results and identical :class:`WorkCounter` totals, so this doubles as an
end-to-end equivalence check on realistic inputs.

Results are written to ``benchmarks/results/BENCH_join.json`` (gitignored,
machine-local — same convention as ``BENCH_kernel.json``) so future PRs can
track the speedup trajectory; the summary asserts the geomean speedup the
columnar kernel was built for.  The target defaults to the tentpole's 5× but
can be relaxed via ``BENCH_JOIN_MIN_SPEEDUP`` for noisy shared runners (the
measured geomean is well above 10×, so the default has comfortable margin on
a quiet machine).  The reference is timed with a single run (it is the slow
side); the columnar engine takes best-of-3 after a warm-up.
"""

from __future__ import annotations

import json
import os
import platform
import random

import pytest

from conftest import (
    BENCH_REFERENCE_MODE,
    RESULTS_DIR,
    best_of as _best_of,
    geomean as _geomean,
    reference_sampled,
)

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.enumerate import enumerate_ctds
from repro.db.reference import ReferenceRelation, as_reference_database
from repro.db.relation import Relation, WorkCounter
from repro.db.yannakakis import YannakakisExecutor
from repro.workloads.registry import benchmark_queries

#: Data scale for the workload-level rows: big enough that per-operator
#: numpy dispatch overhead is amortised, small enough that the reference
#: engine still finishes each query in well under a second.
WORKLOAD_SCALE = 2.0


def _skewed_column(rng: random.Random, size: int, domain: int, hub_fraction=0.08):
    hubs = max(1, int(domain * hub_fraction))
    return [
        rng.randrange(hubs) if rng.random() < 0.4 else rng.randrange(domain)
        for _ in range(size)
    ]


def _micro_instances():
    """(name, build) pairs; build returns (operation_name, left, right) data."""
    rng = random.Random(20260727)
    join_left = list(
        zip(_skewed_column(rng, 40_000, 4_000), _skewed_column(rng, 40_000, 500))
    )
    join_right = list(
        zip(_skewed_column(rng, 40_000, 4_000), _skewed_column(rng, 40_000, 500))
    )
    semi_left = list(
        zip(_skewed_column(rng, 150_000, 30_000), _skewed_column(rng, 150_000, 100))
    )
    semi_right = list(
        zip(_skewed_column(rng, 40_000, 30_000), _skewed_column(rng, 40_000, 100))
    )
    project_rows = list(
        zip(_skewed_column(rng, 200_000, 300), _skewed_column(rng, 200_000, 300))
    )
    return [
        # (instance, operation, left schema/rows, right schema/rows)
        ("join-40k", "natural_join", (["a", "b"], join_left), (["a", "c"], join_right)),
        ("semijoin-150k", "semijoin", (["a", "b"], semi_left), (["a", "x"], semi_right)),
        (
            "semijoin-packed-150k",
            "semijoin",
            (["a", "b"], semi_left),
            (["a", "b"], semi_right),
        ),
        ("project-200k", "project", (["a", "b"], project_rows), None),
    ]


def _run_micro(operation, left, right, out=None):
    """One timed operator application (inputs are pre-built per engine).

    ``out`` (untimed callers only) receives the result relation so row
    contents can be compared outside the timed region.
    """
    counter = WorkCounter()
    if operation == "project":
        result = left.project(["a", "b"], counter=counter).project(
            ["a"], counter=counter
        )
    else:
        result = getattr(left, operation)(right, counter=counter)
    if out is not None:
        out["relation"] = result
    return len(result), counter.total


def test_join_speedup_vs_reference():
    rows = []

    # -- micro: individual operators on large relations ------------------------
    # Inputs are built once per engine outside the timed region: ingest cost
    # is paid once per database, operator cost on every join of every query.
    micro_instances = _micro_instances()
    for index, (name, operation, left_data, right_data) in enumerate(micro_instances):
        sampled = reference_sampled(index)
        row = {
            "instance": name,
            "kind": "micro",
            "operation": operation,
            "sampled": sampled,
        }
        columnar_left = Relation("L", *left_data)
        columnar_right = (
            Relation("R", *right_data).with_interner(columnar_left.interner)
            if right_data
            else None
        )
        reference_out = {}
        columnar_out = {}
        if sampled:
            reference_left = ReferenceRelation("L", *left_data)
            reference_right = (
                ReferenceRelation("R", *right_data) if right_data else None
            )
            row["reference_s"] = _best_of(
                lambda: reference_out.update(
                    result=_run_micro(
                        operation, reference_left, reference_right, out=reference_out
                    )
                ),
                repeats=1,
            )
        _run_micro(operation, columnar_left, columnar_right)  # warm-up
        row["columnar_s"] = _best_of(
            lambda: columnar_out.update(
                result=_run_micro(
                    operation, columnar_left, columnar_right, out=columnar_out
                )
            ),
            repeats=3,
        )
        row["output_rows"], row["work"] = columnar_out["result"]
        if sampled:
            assert columnar_out["result"] == reference_out["result"], name
            # Row contents too, not just cardinality/counters (compared outside
            # the timed region; the timed calls above pass out=... as well, but
            # stashing a reference is O(1) and identical for both engines).
            assert sorted(columnar_out["relation"].rows) == sorted(
                reference_out["relation"].rows
            ), name
            row["speedup"] = row["reference_s"] / row["columnar_s"]
            print(f"{name}: x{row['speedup']:.1f}")
        else:
            print(f"{name}: columnar {row['columnar_s']*1000:.1f}ms (not sampled)")
        rows.append(row)

    # -- workload: Yannakakis runs of the six paper queries --------------------
    for index, entry in enumerate(benchmark_queries(), start=len(micro_instances)):
        sampled = reference_sampled(index)
        database, query = entry.load(scale=WORKLOAD_SCALE)
        hypergraph = query.hypergraph()
        decompositions = enumerate_ctds(
            hypergraph, soft_candidate_bags(hypergraph, entry.width), limit=1
        )
        assert decompositions, entry.name
        decomposition = decompositions[0]
        row = {
            "instance": entry.name,
            "kind": "workload",
            "dataset": entry.dataset,
            "scale": WORKLOAD_SCALE,
            "sampled": sampled,
        }
        reference_run = {}
        columnar_run = {}
        if sampled:
            reference_db = as_reference_database(database)
            row["reference_s"] = _best_of(
                lambda: reference_run.update(
                    run=YannakakisExecutor(reference_db, query).execute(decomposition)
                ),
                repeats=1,
            )
        YannakakisExecutor(database, query).execute(decomposition)  # warm-up
        row["columnar_s"] = _best_of(
            lambda: columnar_run.update(
                run=YannakakisExecutor(database, query).execute(decomposition)
            ),
            repeats=3,
        )
        columnar = columnar_run["run"]
        row["result"] = columnar.result
        row["work"] = columnar.counter.total
        if sampled:
            reference = reference_run["run"]
            assert columnar.result == reference.result, entry.name
            assert columnar.counter.total == reference.counter.total, entry.name
            assert columnar.node_sizes == reference.node_sizes, entry.name
            assert columnar.reduced_sizes == reference.reduced_sizes, entry.name
            row["speedup"] = row["reference_s"] / row["columnar_s"]
            print(f"{entry.name}: x{row['speedup']:.1f}")
        else:
            print(
                f"{entry.name}: columnar {row['columnar_s']*1000:.1f}ms (not sampled)"
            )
        rows.append(row)

    summary = {
        "geomean_micro_speedup": _geomean(
            [row["speedup"] for row in rows if row["kind"] == "micro" and "speedup" in row]
        ),
        "geomean_workload_speedup": _geomean(
            [
                row["speedup"]
                for row in rows
                if row["kind"] == "workload" and "speedup" in row
            ]
        ),
        "geomean_speedup": _geomean(
            [row["speedup"] for row in rows if "speedup" in row]
        ),
    }
    payload = {
        "benchmark": "columnar-engine-vs-tuple-reference",
        "python": platform.python_version(),
        "reference_mode": BENCH_REFERENCE_MODE,
        "instances": rows,
        "summary": summary,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_join.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")
    print(json.dumps(summary, indent=2))

    # The tentpole target: ≥5× geomean on the join suite.
    minimum = float(os.environ.get("BENCH_JOIN_MIN_SPEEDUP", "5"))
    assert summary["geomean_speedup"] >= minimum
