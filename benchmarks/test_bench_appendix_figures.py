"""Experiment E5 — Figures 12–17: per-query cost-vs-effort scatter series.

For each of the six benchmark queries, the appendix plots the evaluation
time of the 10 cheapest ConCov decompositions against both cost functions.
The reproduced series print the same columns; the key qualitative check is
that every decomposition of a query returns the same answer and that the
cost functions vary across decompositions (so the scatter is not degenerate).
"""

import pytest

from conftest import BENCH_SCALE, write_result

from repro.experiments.figures import (
    APPENDIX_FIGURES,
    appendix_figure_rows,
    render_appendix_figure,
)


@pytest.mark.parametrize("figure", sorted(APPENDIX_FIGURES))
def test_appendix_figure(benchmark, figure):
    rows, baseline = benchmark.pedantic(
        lambda: appendix_figure_rows(figure, scale=BENCH_SCALE, limit=10),
        rounds=1,
        iterations=1,
    )
    text = render_appendix_figure(figure, scale=BENCH_SCALE, limit=10)
    print()
    print(text)
    write_result(figure, text)

    assert rows, f"no decompositions for {figure}"
    assert len({row["result"] for row in rows}) == 1
    assert baseline is not None
    assert rows[0]["result"] == baseline["result"]
    # Costs are positive and the series is not completely flat unless only a
    # single decomposition exists.
    assert all(row["cost_cardinalities"] > 0 for row in rows)
    assert all(row["cost_estimates"] > 0 for row in rows)
    if len(rows) > 3:
        assert len({round(row["cost_cardinalities"], 3) for row in rows}) > 1
