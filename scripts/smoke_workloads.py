"""End-to-end smoke test of the workload snapshot layer (used by CI).

Exercises the whole loader surface against a throwaway cache directory:

1. cold-build snapshots for all three workloads via ``repro workloads build``,
2. assert the second load is a snapshot *hit* and reconstructs the cold
   build byte-for-byte,
3. ``repro workloads list --strict`` passes while the cache is healthy,
4. a version-corrupted snapshot makes ``--strict`` fail (stale detection),
   and is transparently rebuilt by the loader afterwards.
"""

import os
import sys
import tempfile

import numpy as np

from repro.cli import main as cli_main
from repro.workloads.registry import workload_entries
from repro.workloads.snapshot import SnapshotCache, rewrite_snapshot_version

SCALE = 2.0


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def assert_same(cold, loaded, name: str) -> None:
    for relation_name in cold.relation_names():
        a, b = cold.relation(relation_name), loaded.relation(relation_name)
        for attribute in a.attributes:
            if not np.array_equal(a.codes(attribute), b.codes(attribute)):
                fail(f"{name}.{relation_name}.{attribute} differs after reload")
    if cold.interner.values() != loaded.interner.values():
        fail(f"{name}: interner tables differ after reload")


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        if cli_main(["workloads", "build", "--scale", str(SCALE), "--cache", cache_dir]):
            fail("workloads build returned non-zero")

        cache = SnapshotCache(cache_dir)
        for name, entry in workload_entries().items():
            loaded, hit = entry.load_with_status(scale=SCALE, cache=cache)
            if not hit:
                fail(f"{name}: second load missed the snapshot cache")
            assert_same(entry.build(scale=SCALE), loaded, name)
            print(f"{name}: snapshot hit verified against cold build")

        if cli_main(["workloads", "list", "--cache", cache_dir, "--strict"]):
            fail("strict list failed on a healthy cache")

        # Corrupt one snapshot's format version: strict listing must fail,
        # the loader must treat it as a miss, quarantine the stale file
        # (renamed ``*.corrupt``, kept as evidence) and rebuild.
        victim = cache.entries()[0]
        rewrite_snapshot_version(victim.path, -1)

        if cli_main(["workloads", "list", "--cache", cache_dir, "--strict"]) != 1:
            fail("strict list did not fail on a stale-version snapshot")
        entry = workload_entries()[victim.workload]
        _, hit = entry.load_with_status(scale=SCALE, cache=cache)
        if hit:
            fail("stale snapshot was served as a hit instead of rebuilt")
        if len(cache.quarantined()) != 1:
            fail("stale snapshot was not quarantined on rebuild")
        if cli_main(["workloads", "list", "--cache", cache_dir, "--strict"]) != 1:
            fail("strict list did not flag the quarantined file")
        for quarantined_path in cache.quarantined():
            os.unlink(quarantined_path)
        if cli_main(["workloads", "list", "--cache", cache_dir, "--strict"]):
            fail("strict list still failing after the quarantine was cleared")
        print("stale-version snapshot detected, quarantined and rebuilt")

    print("workload snapshot smoke tests passed")


if __name__ == "__main__":
    main()
