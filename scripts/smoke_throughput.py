"""End-to-end smoke test of the batch throughput layer (used by CI).

The scheduler's whole pitch — answer a duplicate-heavy query set faster
*without* weakening certification — checked against real solver runs:

1. a small workload query set (each benchmark query repeated) answered by
   the batch scheduler at ``--shards 2 --workers 2`` is identical to a
   serial one-``execute()``-per-query loop, and every served
   decomposition independently re-certifies against its own query's
   hypergraph,
2. the run exhibits actual reuse: fewer representative solves than
   queries and a nonzero certified fan-out count; a second plan over the
   same set hits the in-process hot memo,
3. the ``repro throughput`` CLI verb runs the same configuration and
   exits 0,
4. the supervisor's shared-memory reaper unlinks a stale segment left by
   a SIGKILLed creator: after a kill-and-resume batch, ``/dev/shm`` holds
   no ``repro-shm-`` leftovers.
"""

import json
import os
import sys
import tempfile

from repro.cli import main as cli_main
from repro.core.certify import certify_ctd, decomposition_from_payload
from repro.core.solve import SolveRequest, constraint_object
from repro.experiments.harness import (
    BatchCertifier,
    batch_task_specs,
    execute_batch_task,
)
from repro.runtime.checkpoint import BatchLedger
from repro.runtime.parallel import shutdown_pools
from repro.runtime.scheduler import BatchSolvePlan, HotMemo, run_plan
from repro.runtime.supervisor import RetryPolicy, Supervisor

QUERIES = ["q_hto", "q_hto2"]
SCALE = 0.3
REPEAT = 2


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def query_tasks():
    specs = batch_task_specs(queries=QUERIES, scale=SCALE)
    return [dict(task) for _ in range(REPEAT) for task in specs]


def shm_leftovers():
    return sorted(
        name for name in os.listdir("/dev/shm") if name.startswith("repro-shm-")
    )


def check_parallel_matches_serial(tasks):
    serial = [execute_batch_task(dict(task, cache_off=True)) for task in tasks]
    try:
        report = run_plan(
            BatchSolvePlan.from_tasks(tasks), workers=2, shards=2, cache=None
        )
    finally:
        shutdown_pools()
    for task, solo, wire in zip(tasks, serial, report.results):
        query = task["query"]
        if not (isinstance(wire, dict) and wire.get("ok")):
            fail(f"batch result for {query} is not ok: {wire!r}")
        if wire["decided"] != solo["decided"] or wire["width"] != solo["width"]:
            fail(f"batch answer for {query} differs from the serial loop")
        if len(wire["decompositions"]) != len(solo["decompositions"]):
            fail(f"batch decomposition count for {query} differs from serial")
        # "Certified" is not a claim, it is a check: re-certify every served
        # decomposition against this query's own hypergraph here.
        request = SolveRequest.from_payload(task["request"])
        constraint = constraint_object(
            request.constraint, request.hypergraph, request.width
        )
        for payload in wire["decompositions"]:
            ctd = decomposition_from_payload(request.hypergraph, payload)
            cert = certify_ctd(
                request.hypergraph,
                ctd,
                constraint=constraint,
                width_claim=request.width,
            )
            if not cert:
                fail(f"served decomposition for {query} failed certification: "
                     f"{cert.describe()}")
    counters = report.counters
    if counters["fanout"] == 0:
        fail(f"no certified fan-out happened: {counters}")
    if counters["solves"] >= len(tasks):
        fail(f"no representative reuse: {counters['solves']} solves "
             f"for {len(tasks)} queries")
    print(
        f"parallel == serial: {len(tasks)} queries, "
        f"{counters['solves']} solves, {counters['fanout']} fan-outs, "
        "every served decomposition independently re-certified"
    )
    return report


def check_hot_memo(tasks, first_report):
    memo = HotMemo()
    warm = run_plan(BatchSolvePlan.from_tasks(tasks), cache=None, memo=memo)
    replay = run_plan(BatchSolvePlan.from_tasks(tasks), cache=None, memo=memo)
    if replay.counters["memo_hits"] == 0:
        fail(f"replayed plan missed the hot memo: {replay.counters}")

    def strip(wire):
        return {k: v for k, v in wire.items() if k not in ("cache", "mode", "level")}

    for label, report in (("warm", warm), ("replay", replay)):
        a = json.dumps([strip(r) for r in report.results], sort_keys=True,
                       default=str)
        b = json.dumps([strip(r) for r in first_report.results], sort_keys=True,
                       default=str)
        if a != b:
            fail(f"{label} plan answers differ from the pooled run")
    print(
        f"hot memo: replay served {replay.counters['memo_hits']} memo hits, "
        "answers byte-identical to the pooled run"
    )


def check_cli():
    code = cli_main(
        [
            "throughput",
            "--queries",
            *QUERIES,
            "--scale",
            str(SCALE),
            "--repeat",
            str(REPEAT),
            "--workers",
            "2",
            "--shards",
            "2",
            "--no-cache",
        ]
    )
    shutdown_pools()
    if code != 0:
        fail(f"repro throughput exited {code}, expected 0")
    print("CLI: repro throughput --workers 2 --shards 2 exits 0")


def check_supervisor_reaps_segments():
    """A stale segment from a SIGKILLed creator is gone after a batch."""
    import subprocess
    from multiprocessing import shared_memory

    # A segment whose creator pid is certainly dead — the situation a
    # SIGKILLed worker leaves behind (it never runs its own cleanup).
    probe = subprocess.Popen(["sleep", "0"])
    probe.wait()
    stale_name = f"repro-shm-{probe.pid}-deadbeef"
    segment = shared_memory.SharedMemory(name=stale_name, create=True, size=64)
    segment.close()
    # Ownership is being handed to the (dead) probe pid: drop our own
    # resource-tracker registration so the reaper is the one to unlink it.
    from multiprocessing import resource_tracker

    resource_tracker.unregister(segment._name, "shared_memory")

    specs = batch_task_specs(queries=QUERIES, scale=SCALE, shards=2)
    crashing = [dict(specs[0], faults={"*": {"kind": "sigkill"}}), specs[1]]
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "batch.jsonl")
        supervisor = Supervisor(
            certifier=BatchCertifier(),
            max_workers=2,
            hard_timeout=120.0,
            retry=RetryPolicy(max_attempts=1, base_delay=0.05, jitter=0.0),
        )
        first = supervisor.run(crashing, ledger=BatchLedger(ledger_path))
        statuses = {r.task["query"]: r.status for r in first.results}
        if statuses != {QUERIES[0]: "failed", QUERIES[1]: "ok"}:
            fail(f"crashing sharded batch had unexpected statuses: {statuses}")
    leftovers = shm_leftovers()
    if stale_name in leftovers:
        fail("supervisor reaper left the dead creator's segment behind")
    if leftovers:
        fail(f"/dev/shm leaks after the kill-and-resume batch: {leftovers}")
    print("reaper: SIGKILL-orphaned segment unlinked, /dev/shm clean")


def main() -> None:
    tasks = query_tasks()
    report = check_parallel_matches_serial(tasks)
    check_hot_memo(tasks, report)
    check_cli()
    check_supervisor_reaps_segments()
    print("OK: throughput smoke passed")


if __name__ == "__main__":
    main()
