"""Smoke check for the exact lazy any-k enumerator on a paper workload query.

Enumerates the top-10 cheapest CTDs of TPC-DS ``QdS`` under the ConCov
constraint and the Equation (6) estimate cost preference (Appendix C.2.1) —
the Section 7 top-10 scenario — and cross-checks the full ranked sequence
against the brute-force reference enumerator.
"""

import time

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.enumerate import enumerate_ctds
from repro.core.reference import reference_enumerate_ctds
from repro.db.cost import EstimateCostModel
from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds


def main() -> None:
    start = time.time()
    database = build_tpcds_database(scale=0.1)
    query = tpcds_query_qds(database)
    hypergraph = query.hypergraph()
    constraint = ConnectedCoverConstraint(hypergraph, 2)
    preference = EstimateCostModel(query, database).as_preference()
    bags = soft_candidate_bags(hypergraph, 2)

    decompositions = enumerate_ctds(
        hypergraph, bags, constraint=constraint, preference=preference, limit=10
    )
    assert decompositions, "QdS should have ConCov width-2 decompositions"
    keys = [preference.key(d) for d in decompositions]
    assert keys == sorted(keys)
    for decomposition in decompositions:
        assert decomposition.is_valid()
        assert constraint.holds_recursively(decomposition)
    print(f"QdS: |V|={hypergraph.num_vertices()} |E|={hypergraph.num_edges()}")
    print(f"top-{len(decompositions)} ConCov+cost CTDs, costs "
          f"{keys[0]:.1f} .. {keys[-1]:.1f}")

    reference = reference_enumerate_ctds(
        hypergraph, bags, constraint=constraint, preference=preference, limit=10
    )
    assert len(reference) == len(decompositions)
    # The Eq. 6 keys are floats, and the cost landscape is full of exact
    # ties, so mathematical ties may be ordered differently by the two
    # enumerators if float summation order ever differs — compare the ranked
    # key sequences up to rounding instead of demanding identical
    # decomposition sequences (the integer-cost property suite pins exact
    # sequence equality).
    for lazy_td, reference_td in zip(decompositions, reference):
        lazy_key, reference_key = preference.key(lazy_td), preference.key(reference_td)
        assert abs(lazy_key - reference_key) <= 1e-9 * max(1.0, abs(reference_key))
    reference_keys = [preference.key(d) for d in reference]
    assert reference_keys == sorted(reference_keys)
    print("lazy top-10 matches the brute-force reference ranking")
    print("elapsed: %.2fs" % (time.time() - start))


if __name__ == "__main__":
    main()
