"""End-to-end smoke test of the fault-tolerant batch runtime (used by CI).

The kill-and-resume proof, against real solver runs:

1. a reference batch (two benchmark queries, supervised worker processes,
   independent certification) completes cleanly,
2. the same batch with one worker SIGKILLed on *every* attempt fails that
   task, checkpoints it, and leaves the other task's certified result in
   the ledger,
3. resuming the batch with the fault gone re-runs only the failed task and
   converges on results identical to the uninterrupted reference,
4. the ``repro batch`` CLI verb reports the resumed batch and exits 0.
"""

import os
import sys
import tempfile

from repro.cli import main as cli_main
from repro.experiments.harness import BatchCertifier, batch_task_specs
from repro.runtime.checkpoint import BatchLedger
from repro.runtime.supervisor import RetryPolicy, Supervisor

QUERIES = ["q_hto", "q_hto2"]
SCALE = 0.3


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def make_supervisor(max_attempts: int = 2) -> Supervisor:
    return Supervisor(
        certifier=BatchCertifier(),
        max_workers=2,
        hard_timeout=120.0,
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.05, jitter=0.0),
    )


def comparable(result):
    """The semantic part of a task result (drop timings/work counters)."""
    return {
        "query": result["query"],
        "mode": result["mode"],
        "width": result["width"],
        "decided": result["decided"],
        "decomposition": result["decomposition"],
    }


def check_kill_and_resume(tmp: str) -> str:
    specs = batch_task_specs(queries=QUERIES, scale=SCALE)

    reference = make_supervisor().run(
        specs, ledger=BatchLedger(os.path.join(tmp, "reference.jsonl"))
    )
    if [r.status for r in reference.results] != ["ok", "ok"]:
        fail(f"reference batch did not complete: {reference.describe()}")
    print(f"reference batch: {len(reference.results)} certified results")

    # Same batch, but one worker is SIGKILLed on every attempt.  Fault
    # directives are non-semantic, so the fingerprints (and the ledger)
    # match the healthy specs.
    ledger_path = os.path.join(tmp, "batch.jsonl")
    crashing = [dict(specs[0], faults={"*": {"kind": "sigkill"}}), specs[1]]
    first = make_supervisor(max_attempts=1).run(
        crashing, ledger=BatchLedger(ledger_path)
    )
    statuses = {r.task["query"]: r.status for r in first.results}
    if statuses != {QUERIES[0]: "failed", QUERIES[1]: "ok"}:
        fail(f"crashing batch had unexpected statuses: {statuses}")
    kinds = [f["kind"] for f in first.results[0].failures]
    if "crashed" not in kinds:
        fail(f"SIGKILLed worker was not recorded as crashed: {kinds}")
    if first.exit_code != 1:
        fail(f"crashing batch exited {first.exit_code}, expected 1")
    print(
        f"crashing batch: {QUERIES[0]} failed after {first.results[0].attempts} "
        f"SIGKILLed attempts, {QUERIES[1]} certified ok, checkpoint written"
    )

    # Resume with the fault gone: only the failed task re-runs.
    resumed = make_supervisor().run(specs, ledger=BatchLedger(ledger_path))
    if [r.status for r in resumed.results] != ["ok", "ok"]:
        fail(f"resumed batch did not recover: {resumed.describe()}")
    if [r.cached for r in resumed.results] != [False, True]:
        fail("resume re-ran the wrong tasks: "
             f"{[(r.task['query'], r.cached) for r in resumed.results]}")
    got = [comparable(r.result) for r in resumed.results]
    want = [comparable(r.result) for r in reference.results]
    if got != want:
        fail("resumed results differ from the uninterrupted reference")
    print("resume: failed task re-run, cached task reused, "
          "results identical to the uninterrupted reference")
    return ledger_path


def check_cli(tmp: str, ledger_path: str) -> None:
    code = cli_main(
        [
            "batch",
            "--queries",
            *QUERIES,
            "--scale",
            str(SCALE),
            "--ledger",
            ledger_path,
        ]
    )
    if code != 0:
        fail(f"repro batch exited {code} on a completed ledger, expected 0")
    if cli_main(["batch", "--queries", "nope"]) != 2:
        fail("repro batch with an unknown query did not exit 2")
    print("CLI: batch resume exits 0, unknown query exits 2")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = check_kill_and_resume(tmp)
        check_cli(tmp, ledger_path)
    print("OK: batch runtime smoke passed")


if __name__ == "__main__":
    main()
