"""End-to-end smoke test of the query front door (used by CI).

Drives ``repro query`` the way a user would — SQL text and named
JOB-lite queries — cold and warm against a real on-disk decomposition
cache, and checks the trust model at the API level:

1. a cold run solves, stores and answers; the warm run answers
   *byte-identically* but sources its CTD from the cache (provenance
   flips, nothing else changes),
2. the cache store reports a hit and the hit was re-certified rather
   than trusted blindly (a poisoned entry is rejected and transparently
   re-solved to the same answer),
3. SQL-text and named-query entry points agree, and malformed SQL is a
   one-line diagnostic with exit code 2.
"""

import io
import json
import sys
import tempfile

from repro.cli import main as cli_main
from repro.core.cache import DecompositionCache
from repro.db.frontdoor import run_query
from repro.workloads.joblite import (
    JOBLITE_QUERY_SQL,
    build_joblite_database,
    joblite_query,
)

QUERIES = ["jl02", "jl08"]


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def run_cli(arguments):
    out = io.StringIO()
    code = cli_main(arguments, out=out)
    return code, out.getvalue()


def check_cold_warm_cli(tmp: str) -> None:
    for name in QUERIES:
        argv = ["query", "--name", name, "--cache", tmp]
        cold_code, cold = run_cli(argv)
        warm_code, warm = run_cli(argv)
        if cold_code != 0 or warm_code != 0:
            fail(f"{name}: query exited {cold_code}/{warm_code}, expected 0/0")
        if "provenance=solve" not in cold:
            fail(f"{name}: cold run did not report provenance=solve:\n{cold}")
        if "provenance=cache" not in warm:
            fail(f"{name}: warm run did not report provenance=cache:\n{warm}")
        if cold.replace("provenance=solve", "provenance=cache") != warm:
            fail(f"{name}: warm output differs beyond provenance:\n{cold}\n{warm}")
        print(f"{name}: warm run byte-identical, CTD served from cache")


def check_sql_entry_matches_named(tmp: str) -> None:
    name = QUERIES[0]
    _, by_name = run_cli(["query", "--name", name, "--cache", tmp])
    _, by_sql = run_cli(
        ["query", "--sql", JOBLITE_QUERY_SQL[name], "--cache", tmp]
    )
    name_answer = by_name.splitlines()[0]
    sql_answer = by_sql.splitlines()[0]
    if name_answer != sql_answer:
        fail(f"SQL and named entry disagree: {sql_answer!r} vs {name_answer!r}")
    print(f"SQL text and named entry agree: {sql_answer}")


def check_recertification(tmp: str) -> None:
    database = build_joblite_database(scale=1.0)
    query = joblite_query(database, QUERIES[0])
    store = DecompositionCache(tmp)
    reference = run_query(query, database, cache=store)
    hits_before = store.stats.hits
    warm = run_query(query, database, cache=store)
    if warm.provenance != "cache" or store.stats.hits <= hits_before:
        fail("warm API run did not hit the decomposition cache")
    # Poison every entry; re-certification must reject and re-solve.
    for info in store.entries():
        with open(info.path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        if record.get("decompositions"):
            record["decompositions"] = [{"bags": [[0]], "parents": [None]}]
        with open(info.path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
    healed = run_query(query, database, cache=store)
    if store.stats.rejected < 1:
        fail("poisoned cache entry was not rejected at re-certification")
    if healed.provenance != "solve" or healed.value != reference.value:
        fail(
            "poisoned cache changed the answer: "
            f"{healed.provenance} {healed.value} vs {reference.value}"
        )
    print("cache hits re-certified; poisoned entry rejected and re-solved")


def check_errors() -> None:
    code, output = run_cli(["query", "--sql", "SELEKT 1", "--no-cache"])
    if code != 2 or not output.startswith("error:"):
        fail(f"malformed SQL: expected one-line error and exit 2, got {code}")
    code, _ = run_cli(["query", "--name", "jl02", "--sql", "SELECT *"])
    if code != 2:
        fail("conflicting --name/--sql did not exit 2")
    print("CLI: malformed SQL and conflicting sources exit 2")


def main() -> None:
    with tempfile.TemporaryDirectory() as cli_tmp:
        check_cold_warm_cli(cli_tmp)
        check_sql_entry_matches_named(cli_tmp)
    with tempfile.TemporaryDirectory() as api_tmp:
        check_recertification(api_tmp)
    check_errors()
    print("OK: query front door smoke passed")


if __name__ == "__main__":
    main()
