"""Smoke check for Algorithm 2's worklist: ConCov + Eq. 6 cost on a workload query.

Runs one constrained, preference-optimised ``shw_leq`` call over a paper
workload query (TPC-DS ``QdS``) — the Section 7 scenario where the estimate
cost model (Appendix C.2.1) feeds the preference and ``ConCov`` prunes
Cartesian-product bags — and cross-checks the optimum against the seed
round-robin reference.
"""

import time

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.reference import reference_constrained_ctd
from repro.core.soft import shw_leq
from repro.db.cost import EstimateCostModel
from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds


def main() -> None:
    start = time.time()
    database = build_tpcds_database(scale=0.1)
    query = tpcds_query_qds(database)
    hypergraph = query.hypergraph()
    model = EstimateCostModel(query, database)
    constraint = ConnectedCoverConstraint(hypergraph, 2)
    preference = model.as_preference()

    decomposition = shw_leq(hypergraph, 2, constraint=constraint, preference=preference)
    assert decomposition is not None, "ConCov-shw(QdS) <= 2 should hold"
    assert decomposition.is_valid()
    assert constraint.holds_recursively(decomposition)
    cost = preference.key(decomposition)
    print(f"QdS: |V|={hypergraph.num_vertices()} |E|={hypergraph.num_edges()}")
    print(f"ConCov+cost optimal decomposition: {decomposition}, cost {cost:.1f}")

    bags = soft_candidate_bags(hypergraph, 2)
    solver = ConstrainedCTDSolver(hypergraph, bags, constraint, preference)
    reference = reference_constrained_ctd(
        hypergraph, bags, constraint=constraint, preference=preference
    )
    assert reference is not None
    reference_key = preference.key(reference)
    # Summation order over children can differ between the two solvers, so
    # the float costs are compared up to rounding.
    assert abs(solver.optimal_key() - reference_key) <= 1e-6 * max(
        1.0, abs(reference_key)
    ), (solver.optimal_key(), reference_key)
    print(f"worklist optimum matches round-robin reference: {solver.optimal_key():.1f}")
    print("elapsed: %.2fs" % (time.time() - start))


if __name__ == "__main__":
    main()
