"""End-to-end smoke test of the resource-governance layer (used by CI).

Exercises the robustness surface of PR 6 against real solver runs and a
throwaway snapshot cache:

1. a tight work budget on a hard synthetic instance exhausts with a
   ``budget_exhausted`` outcome and a *valid* anytime result (every
   enumerated decomposition is a prefix entry of the unbudgeted ranking),
2. a generous budget changes nothing and reports ``complete``,
3. the governed CLI verbs exit with the documented ``timeout(1)``-style
   codes (0 complete / 125 budget exhausted),
4. an injected snapshot corruption is quarantined (renamed ``*.corrupt``)
   on the next load and transparently rebuilt; ``workloads list --strict``
   flags the quarantine and ``workloads clean`` clears it.
"""

import os
import sys
import tempfile

# The governance layer is under test, not the decomposition cache: a warm
# cache would serve the "exhausting" CLI solves instantly (complete,
# exit 0) and mask the budget path this smoke exists to prove.
os.environ.setdefault("REPRO_CTD_CACHE_OFF", "1")

from repro.cli import main as cli_main
from repro.core.candidate_bags import soft_candidate_bags
from repro.core.enumerate import CTDEnumerator, enumerate_ctds
from repro.core.preferences import NodeCountPreference
from repro.hypergraph.generators import random_hypergraph
from repro.hypergraph.io import to_hyperbench
from repro.hypergraph.library import cycle_hypergraph, triangle_hypergraph
from repro.runtime import Budget
from repro.runtime.budget import STATUS_BUDGET
from repro.runtime.faults import truncate_file
from repro.workloads.snapshot import SnapshotCache


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_budgeted_solve() -> None:
    # Hard enough that 200 work units cannot finish it, small enough that
    # the ungoverned reference run stays fast.
    hard = random_hypergraph(26, 18, max_edge_size=3, seed=3)
    budget = Budget(max_work=200)
    bags = soft_candidate_bags(hard, 2, budget=budget)
    full_bags = soft_candidate_bags(hard, 2)
    if not budget.exhausted or budget.status != STATUS_BUDGET:
        fail("tight budget did not exhaust on the hard instance")
    if not bags <= full_bags:
        fail("anytime bag set is not a subset of the full bag set")
    print(
        f"hard instance: exhausted after {budget.work} work units with "
        f"{len(bags)}/{len(full_bags)} candidate bags (sound subset)"
    )

    # Anytime enumeration: whatever a budgeted run yields is an exact
    # prefix of the unbudgeted ranking.  The work cap is derived from a
    # metered full run (the work counter at the 5th result), so the smoke
    # stays meaningful when solver work-unit accounting evolves.
    cycle = cycle_hypergraph(12)
    preference = NodeCountPreference()
    limit = 50
    meter = Budget(max_work=10**9)
    enumerator = CTDEnumerator(
        cycle,
        soft_candidate_bags(cycle, 2, budget=meter),
        preference=preference,
        budget=meter,
    )
    full, marks = [], []
    for decomposition in enumerator.iter_decompositions():
        full.append(decomposition)
        marks.append(meter.work)
        if len(full) >= limit:
            break
    if meter.exhausted or len(full) != limit:
        fail("metered full enumeration did not complete")
    budget = Budget(max_work=marks[4])
    partial = enumerate_ctds(
        cycle,
        soft_candidate_bags(cycle, 2, budget=budget),
        preference=preference,
        limit=limit,
        budget=budget,
    )
    if not budget.exhausted:
        fail("derived work cap did not exhaust the enumeration")
    if not 0 < len(partial) < len(full):
        fail(f"expected a proper non-empty prefix, got {len(partial)}/{len(full)}")
    for got, want in zip(partial, full):
        if got.canonical_form() != want.canonical_form():
            fail("budgeted enumeration is not a prefix of the full ranking")
        if not got.is_valid():
            fail("budgeted enumeration yielded an invalid decomposition")
    print(
        f"anytime enumeration: {len(partial)}/{len(full)} decompositions, "
        "exact non-empty prefix, all valid"
    )

    # A generous budget changes nothing.
    generous = Budget(max_work=10**9)
    same = enumerate_ctds(
        cycle,
        soft_candidate_bags(cycle, 2, budget=generous),
        preference=preference,
        limit=limit,
        budget=generous,
    )
    if generous.exhausted or [td.canonical_form() for td in same] != [
        td.canonical_form() for td in full
    ]:
        fail("generous budget changed the enumeration")
    print("generous budget: identical ranking, outcome complete")


def check_cli_exit_codes(tmp: str) -> None:
    path = os.path.join(tmp, "triangle.hg")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_hyperbench(triangle_hypergraph()))
    code = cli_main(["decompose", path, "-k", "2", "--max-work", "1000000000"])
    if code != 0:
        fail(f"generous governed decompose exited {code}, expected 0")
    code = cli_main(["decompose", path, "-k", "2", "--max-work", "1"])
    if code != 125:
        fail(f"exhausted governed decompose exited {code}, expected 125")
    print("CLI exit codes: complete=0, budget_exhausted=125")


def check_quarantine_cycle(tmp: str) -> None:
    cache_dir = os.path.join(tmp, "cache")
    build = [
        "workloads", "build", "--workload", "tpcds",
        "--scale", "0.3", "--cache", cache_dir,
    ]
    if cli_main(build):
        fail("workloads build returned non-zero")
    cache = SnapshotCache(cache_dir)
    victim = cache.entries()[0].path
    truncate_file(victim, fraction=0.4)
    # The next load must quarantine the torn file and rebuild a clean one.
    if cli_main(build):
        fail("rebuild after corruption returned non-zero")
    if len(cache.quarantined()) != 1:
        fail("torn snapshot was not quarantined")
    if len(cache.entries()) != 1:
        fail("quarantined snapshot was not rebuilt")
    if cli_main(["workloads", "list", "--cache", cache_dir, "--strict"]) != 1:
        fail("strict list did not flag the quarantined file")
    if cli_main(["workloads", "clean", "--cache", cache_dir]):
        fail("workloads clean returned non-zero")
    if cache.quarantined() or cache.entries():
        fail("clean left cache files behind")
    print("quarantine cycle: corrupt -> quarantined -> rebuilt -> cleaned")


def main() -> None:
    check_budgeted_solve()
    with tempfile.TemporaryDirectory() as tmp:
        check_cli_exit_codes(tmp)
        check_quarantine_cycle(tmp)
    print("OK: robustness smoke passed")


if __name__ == "__main__":
    main()
