"""Quick development smoke check for the combinatorial core."""

import time

from repro.hypergraph.library import (
    hypergraph_h2,
    triangle_hypergraph,
    cycle_hypergraph,
    four_cycle_query,
)
from repro.core.candidate_bags import soft_candidate_bags
from repro.core.ctd import candidate_td
from repro.core.soft import shw_leq, soft_hypertree_width
from repro.baselines.detkdecomp import hypertree_width
from repro.baselines.acyclic import is_alpha_acyclic


def main() -> None:
    start = time.time()
    h2 = hypergraph_h2()
    bags2 = soft_candidate_bags(h2, 2)
    print("Soft_{H2,2} size:", len(bags2))
    td = candidate_td(h2, bags2)
    print("CTD for Soft_{H2,2}:", td, "valid:", td.is_valid() if td else None)
    print("shw(H2) <= 2:", shw_leq(h2, 2) is not None)
    print("shw(H2) <= 1:", shw_leq(h2, 1) is not None)
    print("shw(H2):", soft_hypertree_width(h2)[0])
    print("hw(H2):", hypertree_width(h2))
    tri = triangle_hypergraph()
    print("triangle acyclic:", is_alpha_acyclic(tri))
    print("shw(triangle):", soft_hypertree_width(tri)[0])
    print("hw(triangle):", hypertree_width(tri))
    c4 = four_cycle_query()
    print("shw(C4):", soft_hypertree_width(c4)[0], "hw(C4):", hypertree_width(c4))
    c6 = cycle_hypergraph(6)
    print("shw(C6):", soft_hypertree_width(c6)[0], "hw(C6):", hypertree_width(c6))
    print("elapsed: %.2fs" % (time.time() - start))


if __name__ == "__main__":
    main()
