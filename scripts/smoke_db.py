"""Development smoke check for the database substrate and experiment harness."""

import time

from repro.workloads.registry import benchmark_queries
from repro.experiments.harness import QueryExperiment


def main() -> None:
    for entry in benchmark_queries():
        start = time.time()
        database, query = entry.load()
        experiment = QueryExperiment(database, query, entry.width, name=entry.name)
        hypergraph = experiment.hypergraph
        print(f"== {entry.name} ({entry.dataset}) ==")
        print("  atoms:", hypergraph.num_edges(), "vars:", hypergraph.num_vertices())
        t0 = time.time()
        soft = experiment.soft_bags
        concov = experiment.concov_bags
        print(f"  |Soft| = {len(soft)}  |ConCov-Soft| = {len(concov)}  ({time.time()-t0:.2f}s)")
        decompositions, elapsed = experiment.ranked_decompositions(limit=5)
        print(f"  top-5 CTDs in {elapsed:.3f}s, got {len(decompositions)}")
        evaluations = experiment.evaluate(decompositions[:3])
        for ev in evaluations:
            print(
                f"    rank {ev.rank}: work={ev.work} max_int={ev.metrics.max_intermediate}"
                f" card_cost={ev.cardinality_cost:.0f} est_cost={ev.estimate_cost:.0f}"
                f" result={ev.metrics.result} time={ev.wall_time:.3f}s"
            )
        baseline = experiment.baseline()
        print(
            f"  baseline: work={baseline.work} max_int={baseline.max_intermediate}"
            f" result={baseline.result} time={baseline.wall_time:.3f}s"
        )
        print(f"  total {time.time()-start:.2f}s")


if __name__ == "__main__":
    main()
