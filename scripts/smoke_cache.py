"""End-to-end smoke test of the decomposition cache (used by CI).

The trust-model proof, against real solver runs:

1. a cold solve through the front door stores its certified CTDs,
2. an *isomorphic relabeling* of the same query hits the cache and the
   served CTD certifies against the relabeled hypergraph,
3. a bit-flipped entry (unreadable JSON) is quarantined on read and the
   query re-solves to the same answer,
4. a *parseable* poisoned entry (valid JSON, wrong bags) fails
   re-certification, is quarantined, and the query re-solves correctly —
   the cache can cost time, never correctness,
5. the ``repro cache list`` / ``repro cache clean`` verbs report and
   remove what the run left behind.
"""

import io
import os
import sys
import json
import tempfile

from repro.cli import main as cli_main
from repro.core.cache import DecompositionCache
from repro.core.solve import SolveRequest, execute
from repro.hypergraph.generators import random_cyclic_query_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.runtime.faults import flip_byte

WIDTH = 3


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def request(hypergraph: Hypergraph) -> SolveRequest:
    return SolveRequest(
        hypergraph=hypergraph,
        mode="enumerate",
        width=WIDTH,
        constraint="concov",
        preference="nodecount",
        limit=3,
    )


def relabeled(hypergraph: Hypergraph) -> Hypergraph:
    rename = {
        vertex: f"x{i}"
        for i, vertex in enumerate(sorted(hypergraph.vertices, key=str))
    }
    return Hypergraph(
        {
            f"re_{edge.name}": sorted(rename[v] for v in edge.vertices)
            for edge in hypergraph.edges
        }
    )


def bag_shape(result):
    """Label-free shape of the top decomposition (sorted bag sizes)."""
    return sorted(len(bag) for bag in result.decomposition.bags())


def the_entry(store: DecompositionCache) -> str:
    entries = store.entries()
    if len(entries) != 1:
        fail(f"expected exactly one cache entry, found {len(entries)}")
    return entries[0].path


def check_cold_store_and_isomorphic_hit(store, hypergraph):
    cold = execute(request(hypergraph), cache=store)
    if not cold.decided or cold.cache_status != "stored":
        fail(f"cold solve did not store: {cold.decided} {cold.cache_status}")
    print(f"cold solve: width {cold.width}, stored in {cold.elapsed:.3f} s")

    hit = execute(request(relabeled(hypergraph)), cache=store)
    if hit.cache_status != "hit":
        fail(f"isomorphic relabeling missed the cache: {hit.cache_status}")
    if bag_shape(hit) != bag_shape(cold):
        fail(f"hit shape {bag_shape(hit)} != solved shape {bag_shape(cold)}")
    if not all(bag <= hit.request.hypergraph.vertices for bag in hit.decomposition.bags()):
        fail("served bags are not over the relabeled hypergraph's vertices")
    print(f"isomorphic hit: served + re-certified in {hit.elapsed:.4f} s")
    return cold


def check_bitflip_quarantine(store, hypergraph, reference):
    path = the_entry(store)
    flip_byte(path, 1)  # break the JSON container itself
    result = execute(request(hypergraph), cache=store)
    if not result.decided or result.cache_status != "stored":
        fail(f"bit-flipped entry did not re-solve+store: {result.cache_status}")
    if bag_shape(result) != bag_shape(reference):
        fail("re-solve after bit flip changed the answer")
    if store.stats.quarantined != 1 or not store.quarantined():
        fail(f"bit-flipped entry was not quarantined: {store.stats.as_dict()}")
    print("bit-flipped entry: quarantined on read, re-solved to the same answer")


def check_parseable_poison(store, hypergraph, reference):
    path = the_entry(store)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    # Valid JSON, valid envelope, nonsense decomposition: only
    # re-certification can catch this one.
    record["decompositions"] = [{"bags": [[0]], "parents": [None]}]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle)
    result = execute(request(hypergraph), cache=store)
    if not result.decided or result.cache_status != "stored":
        fail(f"poisoned entry did not re-solve+store: {result.cache_status}")
    if bag_shape(result) != bag_shape(reference):
        fail("re-solve after poisoning changed the answer")
    if store.stats.rejected != 1:
        fail(f"poisoned entry was not rejected by certification: {store.stats.as_dict()}")
    if store.stats.quarantined != 2 or not store.quarantined():
        fail(f"poisoned entry was not quarantined: {store.stats.as_dict()}")
    print("poisoned entry: failed re-certification, quarantined, re-solved")

    healthy = execute(request(hypergraph), cache=store)
    if healthy.cache_status != "hit":
        fail(f"re-stored entry does not serve: {healthy.cache_status}")
    print("re-stored entry serves hits again")


def check_cli_verbs(store):
    out = io.StringIO()
    code = cli_main(["cache", "list", "--cache", store.directory], out=out)
    listing = out.getvalue()
    if code != 0 or "quarantined" not in listing:
        fail(f"cache list exited {code}:\n{listing}")
    print("cache list: " + listing.strip().splitlines()[-1])

    out = io.StringIO()
    code = cli_main(["cache", "clean", "--cache", store.directory], out=out)
    if code != 0 or "removed 2" not in out.getvalue():
        fail(f"cache clean exited {code}: {out.getvalue().strip()}")
    if os.listdir(store.directory):
        fail(f"cache clean left files: {os.listdir(store.directory)}")
    print("cache clean: " + out.getvalue().strip())


def main() -> None:
    hypergraph = random_cyclic_query_hypergraph(6, 2, seed=0)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as tmp:
        store = DecompositionCache(os.path.join(tmp, "ctd-cache"))
        reference = check_cold_store_and_isomorphic_hit(store, hypergraph)
        check_bitflip_quarantine(store, hypergraph, reference)
        check_parseable_poison(store, hypergraph, reference)
        check_cli_verbs(store)
    print("OK: decomposition cache smoke test passed")


if __name__ == "__main__":
    main()
