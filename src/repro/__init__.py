"""repro — a reproduction of "Soft and Constrained Hypertree Width" (PODS 2025).

The top-level package re-exports the most commonly used entry points:

* :class:`repro.Hypergraph` and the named example hypergraphs,
* soft hypertree width (:func:`repro.soft_hypertree_width`, :func:`repro.shw_leq`),
* the CandidateTD solvers (:func:`repro.candidate_td`,
  :func:`repro.constrained_candidate_td`) and constraints/preferences,
* the relational substrate (:mod:`repro.db`) and the benchmark workloads
  (:mod:`repro.workloads`) used to reproduce the paper's evaluation.
"""

from repro.hypergraph import Hypergraph, Edge
from repro.hypergraph.library import (
    hypergraph_h2,
    hypergraph_h3,
    hypergraph_h3_prime,
)
from repro.core import (
    candidate_td,
    constrained_candidate_td,
    CTDEnumerator,
    enumerate_ctds,
    soft_candidate_bags,
    soft_hypertree_width,
    shw_leq,
    shw_i_leq,
    ConnectedCoverConstraint,
    ShallowCyclicityConstraint,
    PartitionClusteringConstraint,
    CostPreference,
)

__version__ = "0.1.0"

__all__ = [
    "Hypergraph",
    "Edge",
    "hypergraph_h2",
    "hypergraph_h3",
    "hypergraph_h3_prime",
    "candidate_td",
    "constrained_candidate_td",
    "CTDEnumerator",
    "enumerate_ctds",
    "soft_candidate_bags",
    "soft_hypertree_width",
    "shw_leq",
    "shw_i_leq",
    "ConnectedCoverConstraint",
    "ShallowCyclicityConstraint",
    "PartitionClusteringConstraint",
    "CostPreference",
    "__version__",
]
