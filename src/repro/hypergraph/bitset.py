"""Int-mask bitset kernel for vertex-set algebra.

Every combinatorial hot path of the decomposition pipeline — candidate-bag
generation (``Soft^i_{H,k}``), [S]-components, edge covers and the
Algorithm 1 fixpoint — reduces to set algebra over subsets of ``V(H)``.
This module represents those subsets as Python ints (bit ``i`` set iff the
``i``-th vertex in a fixed order is present), turning unions, intersections,
subset tests and cardinalities into single machine-word-per-64-vertices
operations instead of hash-based frozenset traversals.

Two invariants hold throughout the code base:

* **Masks never leak through public APIs.**  All public functions keep their
  frozenset-based signatures; masks are an internal representation that is
  materialised back into frozensets at the API boundary via
  :meth:`VertexIndexer.to_frozenset`.
* **One indexer per hypergraph.**  A mask is only meaningful relative to the
  :class:`VertexIndexer` that produced it; the cached
  :class:`HypergraphBitsets` on each (immutable) :class:`Hypergraph` is the
  single source of masks for that hypergraph.

The frozenset implementations this replaces live on as the executable
specification in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

Vertex = Hashable

try:  # numpy accelerates the pairwise mask products on ≤64-vertex graphs
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

__all__ = [
    "VertexIndexer",
    "HypergraphBitsets",
    "popcount",
    "iter_bits",
    "pairwise_and_masks",
]


def popcount(mask: int) -> int:
    """Number of set bits (``|S|`` for the vertex set encoded by ``mask``)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _masks_to_limbs(masks: Sequence[int], limbs: int) -> "_np.ndarray":
    """Decompose big-int masks into an ``(n, limbs)`` uint64 array.

    Limb ``j`` of row ``i`` holds bits ``64*j .. 64*j+63`` of ``masks[i]``.
    """
    word = (1 << 64) - 1
    array = _np.empty((len(masks), limbs), dtype=_np.uint64)
    for i, mask in enumerate(masks):
        for j in range(limbs):
            array[i, j] = (mask >> (64 * j)) & word
    return array


def _pairwise_and_limbs(
    left: Sequence[int], right: Sequence[int], limbs: int
) -> "set[int]":
    """Chunked numpy outer AND over the n-limb layout (> 64-vertex graphs)."""
    left_arr = _masks_to_limbs(left, limbs)
    right_arr = _masks_to_limbs(right, limbs)
    result: set = set()
    # Chunk the outer product so memory stays bounded (~8 MB per chunk).
    chunk = max(1, (1 << 20) // max(1, len(right) * limbs))
    for start in range(0, len(left_arr), chunk):
        block = left_arr[start : start + chunk, None, :] & right_arr[None, :, :]
        flat = block.reshape(-1, limbs)
        nonzero = flat[flat.any(axis=1)]
        for row in _np.unique(nonzero, axis=0):
            mask = 0
            for j in range(limbs - 1, -1, -1):
                mask = (mask << 64) | int(row[j])
            result.add(mask)
    return result


def pairwise_and_masks(left: Sequence[int], right: Sequence[int]) -> "set[int]":
    """The set of non-zero pairwise ANDs ``{a & b | a ∈ left, b ∈ right}``.

    This is the inner product of candidate-bag generation (``⋃λ1 ∩ ⋃C`` over
    all unions and components).  At volume the product is computed with a
    chunked numpy outer AND: single uint64 words when every mask fits in 64
    bits, an n-limb ``(n, ⌈bits/64⌉)`` uint64 layout for larger vertex sets
    (LSQB/Hetionet-sized hypergraphs), so the big-int double loop is only
    ever used for small inputs or when numpy is unavailable.
    """
    if not left or not right:
        return set()
    if _np is not None and len(left) * len(right) >= 16384:  # numpy wins only at volume
        bits = max(max(left).bit_length(), max(right).bit_length())
        limbs = max(1, (bits + 63) // 64)
        if limbs > 1:
            return _pairwise_and_limbs(left, right, limbs)
        left_arr = _np.fromiter(left, dtype=_np.uint64, count=len(left))
        right_arr = _np.fromiter(right, dtype=_np.uint64, count=len(right))
        result: set = set()
        # Chunk the outer product so memory stays bounded (~8 MB per chunk).
        chunk = max(1, (1 << 20) // max(1, len(right_arr)))
        for start in range(0, len(left_arr), chunk):
            block = left_arr[start : start + chunk, None] & right_arr[None, :]
            flat = block.ravel()
            result.update(_np.unique(flat[flat != 0]).tolist())
        return result
    result = set()
    add = result.add
    for a in left:
        for b in right:
            c = a & b
            if c:
                add(c)
    return result


class VertexIndexer:
    """A stable bijection between vertices and bit positions.

    Vertices are ordered by their string representation (ties broken by the
    input iteration order), so bit position 0 is the lexicographically
    smallest vertex.  Because components of a hypergraph are pairwise
    disjoint, ordering component masks by their *lowest set bit* coincides
    with the "sorted by sorted string representation" ordering the public
    API guarantees — a property the components code relies on.
    """

    __slots__ = ("_order", "_index", "_universe")

    def __init__(self, vertices: Iterable[Vertex]):
        self._order: Tuple[Vertex, ...] = tuple(sorted(vertices, key=str))
        self._index: Dict[Vertex, int] = {v: i for i, v in enumerate(self._order)}
        self._universe: int = (1 << len(self._order)) - 1

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._index

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._order)

    @property
    def universe(self) -> int:
        """The mask of all vertices, ``V(H)``."""
        return self._universe

    def bit(self, vertex: Vertex) -> int:
        """The bit position of ``vertex`` (raises ``KeyError`` if unknown)."""
        return self._index[vertex]

    def vertex(self, bit: int) -> Vertex:
        """The vertex at the given bit position."""
        return self._order[bit]

    # -- conversions -------------------------------------------------------

    def to_mask(self, vertices: Iterable[Vertex]) -> int:
        """Encode a set of known vertices (raises ``KeyError`` on unknowns)."""
        index = self._index
        mask = 0
        for v in vertices:
            mask |= 1 << index[v]
        return mask

    def to_mask_clipped(self, vertices: Iterable[Vertex]) -> int:
        """Encode ``vertices ∩ V(H)``, silently dropping unknown vertices."""
        index = self._index
        mask = 0
        for v in vertices:
            bit = index.get(v)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def to_frozenset(self, mask: int) -> FrozenSet[Vertex]:
        """Decode a mask back into a frozenset of vertices."""
        order = self._order
        return frozenset(order[b] for b in iter_bits(mask))

    def to_sorted_vertices(self, mask: int) -> List[Vertex]:
        """Decode a mask into vertices in bit (string-sorted) order."""
        order = self._order
        return [order[b] for b in iter_bits(mask)]


class HypergraphBitsets:
    """Cached mask tables for one hypergraph.

    ``edge_masks[i]`` is the vertex mask of the ``i``-th edge (in the
    hypergraph's edge order) and ``incident_edge_masks[b]`` is a mask *over
    edge positions* listing the edges containing the vertex at bit ``b``.
    The two directions together let the component BFS touch each edge once.

    [S]-components are memoised per separator mask: the candidate-bag
    enumeration and the block machinery probe the same separators over and
    over (``Soft_{H,k}`` alone revisits every ≤k-edge union), so the cache
    turns the dominant cost into a dict lookup.
    """

    __slots__ = (
        "indexer",
        "edge_masks",
        "edge_mask_by_name",
        "incident_edge_masks",
        "universe",
        "_component_cache",
        "_component_union_cache",
    )

    def __init__(self, vertices: Iterable[Vertex], named_edges: Sequence[Tuple[str, FrozenSet[Vertex]]]):
        self.indexer = VertexIndexer(vertices)
        to_mask = self.indexer.to_mask
        self.edge_masks: Tuple[int, ...] = tuple(
            to_mask(edge_vertices) for _, edge_vertices in named_edges
        )
        self.edge_mask_by_name: Dict[str, int] = {
            name: mask for (name, _), mask in zip(named_edges, self.edge_masks)
        }
        incident = [0] * len(self.indexer)
        for edge_index, mask in enumerate(self.edge_masks):
            edge_bit = 1 << edge_index
            for b in iter_bits(mask):
                incident[b] |= edge_bit
        self.incident_edge_masks: Tuple[int, ...] = tuple(incident)
        self.universe: int = self.indexer.universe
        self._component_cache: Dict[int, Tuple[int, ...]] = {}
        self._component_union_cache: Dict[int, Tuple[int, ...]] = {}

    # -- components --------------------------------------------------------

    def components(self, separator_mask: int) -> Tuple[int, ...]:
        """[S]-vertex-component masks for the given separator, ascending.

        Each returned mask is a maximal set of pairwise [S]-connected
        vertices (isolated free vertices yield singleton components).  The
        masks are pairwise disjoint and returned in ascending order of
        their lowest set bit — which, the masks being disjoint, equals the
        lexicographic order of their sorted vertex lists.
        """
        cached = self._component_cache.get(separator_mask)
        if cached is None:
            cached = self._compute_components(separator_mask)
            self._component_cache[separator_mask] = cached
        return cached

    def _compute_components(self, separator_mask: int) -> Tuple[int, ...]:
        free = self.universe & ~separator_mask
        if not free:
            return ()
        not_sep = ~separator_mask
        edge_masks = self.edge_masks
        incident = self.incident_edge_masks
        edge_free = [m & not_sep for m in edge_masks]
        remaining_edges = (1 << len(edge_masks)) - 1
        components: List[int] = []
        unassigned = free
        while unassigned:
            frontier = unassigned & -unassigned
            component = 0
            while frontier:
                component |= frontier
                touched = 0
                while frontier:
                    low = frontier & -frontier
                    touched |= incident[low.bit_length() - 1]
                    frontier ^= low
                touched &= remaining_edges
                remaining_edges &= ~touched
                new_vertices = 0
                while touched:
                    low = touched & -touched
                    new_vertices |= edge_free[low.bit_length() - 1]
                    touched ^= low
                frontier = new_vertices & ~component
            components.append(component)
            unassigned &= ~component
        return tuple(components)

    def component_unions(self, separator_mask: int) -> Tuple[int, ...]:
        """``⋃C`` for each [S]-*edge*-component ``C`` of the separator.

        For every vertex component that contains at least one edge, the
        union of the (full, separator-inclusive) vertex sets of the edges in
        the corresponding edge component.  This is exactly the ``⋃C`` of
        Definition 3, so candidate-bag generation can intersect against
        these masks directly.
        """
        cached = self._component_union_cache.get(separator_mask)
        if cached is not None:
            return cached
        incident = self.incident_edge_masks
        edge_masks = self.edge_masks
        unions: List[int] = []
        for component in self.components(separator_mask):
            touched = 0
            while component:
                low = component & -component
                touched |= incident[low.bit_length() - 1]
                component ^= low
            if touched:
                union = 0
                while touched:
                    low = touched & -touched
                    union |= edge_masks[low.bit_length() - 1]
                    touched ^= low
                unions.append(union)
        result = tuple(unions)
        self._component_union_cache[separator_mask] = result
        return result
