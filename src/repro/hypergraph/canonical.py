"""Isomorphism-invariant canonical forms of hypergraphs.

The decomposition algorithms are pure functions of the query *shape*: two
hypergraphs that differ only in vertex names and edge names/order have
exactly the same CompNF CTDs up to renaming.  This module computes, for a
:class:`~repro.hypergraph.hypergraph.Hypergraph`, a :class:`CanonicalForm`
carrying

* a **fingerprint** — a sha256 hex digest that is identical for isomorphic
  hypergraphs (the key of the persistent decomposition cache), and
* a **relabeling permutation** — a canonical vertex order, so vertex sets
  (bags of a cached CTD) can be translated between the caller's vertex
  names and label-free canonical indices and back.

Algorithm
---------

1. **Iterated WL-style refinement**: vertices and edges are colored by
   mutual recursion — an edge's signature is its size plus the sorted
   multiset of its vertex colors, a vertex's signature is its old color
   plus the sorted multiset of its incident edge colors — until the vertex
   partition stabilises.  Signatures are densified to integers by sorted
   order, never hashed, so colors are deterministic across processes and
   hash seeds.
2. **Individualisation search**: while some color class holds more than
   one vertex, one vertex of the first (lowest-color) non-singleton class
   is individualised (given a fresh color) and refinement re-runs; the
   recursion explores every choice in the class and keeps the
   lexicographically least resulting edge encoding.  True twins (vertices
   with identical incident edge sets, which are automorphic by
   transposition) are collapsed to one branch, which keeps e.g. a single
   wide edge from exploding the search.
3. The branch count is capped (:data:`MAX_LEAVES`); the cap binding can
   only cost cache hits on pathologically symmetric inputs, never
   correctness — every cache hit is independently re-certified against the
   caller's hypergraph before being served.

Edges are canonicalised as the *set* of distinct vertex sets — edge names
and duplicated edges are invisible to every decomposition algorithm, so
they are invisible to the fingerprint too (matching ``Hypergraph.__eq__``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex

__all__ = ["CanonicalForm", "canonical_form", "hypergraph_fingerprint", "MAX_LEAVES"]

#: Upper bound on explored leaves of the individualisation search.  With
#: twin collapsing, real query hypergraphs resolve in a handful of leaves;
#: the cap is a backstop against adversarially symmetric inputs (where a
#: truncated search may cost cache hits, never wrong answers).
MAX_LEAVES = 4096


class CanonicalForm:
    """The canonical form of one hypergraph.

    ``order`` maps canonical indices to the caller's vertices
    (``order[i]`` is the vertex with canonical index ``i``); ``encoding``
    is the sorted tuple of edges as sorted canonical-index tuples.  The
    fingerprint is the sha256 of the canonical JSON of the encoding, so
    isomorphic hypergraphs — same shape, any vertex/edge naming — agree on
    it while the permutation stays private to each labeling.
    """

    __slots__ = ("fingerprint", "order", "encoding", "_index")

    def __init__(self, order: Tuple[Vertex, ...], encoding: Tuple[Tuple[int, ...], ...]):
        self.order = order
        self.encoding = encoding
        self._index: Dict[Vertex, int] = {v: i for i, v in enumerate(order)}
        payload = json.dumps(
            {"vertices": len(order), "edges": [list(edge) for edge in encoding]},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- permutation --------------------------------------------------------

    def index_of(self, vertex: Vertex) -> int:
        """The canonical index of one of the caller's vertices."""
        return self._index[vertex]

    def to_canonical_bag(self, bag: Iterable[Vertex]) -> List[int]:
        """Translate a vertex set into sorted canonical indices.

        Raises :class:`KeyError` on vertices the hypergraph does not have —
        a bag that cannot be expressed in canonical indices must never be
        written to the cache.
        """
        return sorted(self._index[v] for v in bag)

    def from_canonical_bag(self, indices: Iterable[int]) -> FrozenSet[Vertex]:
        """Translate canonical indices back into the caller's vertices.

        Raises :class:`ValueError` on out-of-range indices (a corrupt or
        foreign cache entry), never returns a partial bag.
        """
        order = self.order
        bag = []
        for index in indices:
            if not isinstance(index, int) or not 0 <= index < len(order):
                raise ValueError(f"canonical vertex index {index!r} is out of range")
            bag.append(order[index])
        return frozenset(bag)


# -- refinement --------------------------------------------------------------


def _refine(
    colors: List[int],
    edges: Sequence[Tuple[int, ...]],
    incidence: Sequence[Tuple[int, ...]],
) -> List[int]:
    """Run WL-style refinement to a stable vertex coloring.

    ``edges[j]`` lists the vertex ids of edge ``j``; ``incidence[v]`` the
    edge ids containing vertex ``v``.  Colors are densified by sorted
    signature each round, so the result depends only on the partition, not
    on any hash function.
    """
    classes = len(set(colors))
    while True:
        edge_signatures = [
            (len(edge),) + tuple(sorted(colors[v] for v in edge)) for edge in edges
        ]
        edge_palette = {sig: i for i, sig in enumerate(sorted(set(edge_signatures)))}
        edge_colors = [edge_palette[sig] for sig in edge_signatures]
        vertex_signatures = [
            (colors[v],) + tuple(sorted(edge_colors[e] for e in incidence[v]))
            for v in range(len(colors))
        ]
        vertex_palette = {
            sig: i for i, sig in enumerate(sorted(set(vertex_signatures)))
        }
        colors = [vertex_palette[sig] for sig in vertex_signatures]
        new_classes = len(vertex_palette)
        if new_classes == classes:
            return colors
        classes = new_classes


def _encode(
    position: List[int], edges: Sequence[Tuple[int, ...]]
) -> Tuple[Tuple[int, ...], ...]:
    """The edge encoding under ``position`` (vertex id -> canonical index)."""
    return tuple(
        sorted(tuple(sorted(position[v] for v in edge)) for edge in edges)
    )


class _Search:
    """Individualisation-refinement search for the least edge encoding."""

    def __init__(
        self,
        edges: Sequence[Tuple[int, ...]],
        incidence: Sequence[Tuple[int, ...]],
        tie_key: Sequence,
        max_leaves: int,
    ):
        self.edges = edges
        self.incidence = incidence
        #: Deterministic (but label-dependent) order for picking branch
        #: representatives; only the *choice order* depends on it, and with
        #: an unexhausted leaf budget every choice is explored anyway.
        self.tie_key = tie_key
        self.leaves_left = max_leaves
        self.best_encoding: Optional[Tuple] = None
        self.best_position: Optional[List[int]] = None

    def run(self, colors: List[int]) -> None:
        self._descend(_refine(colors, self.edges, self.incidence))

    def _descend(self, colors: List[int]) -> None:
        if self.leaves_left <= 0:
            return
        cells: Dict[int, List[int]] = {}
        for v, color in enumerate(colors):
            cells.setdefault(color, []).append(v)
        target: Optional[List[int]] = None
        for color in sorted(cells):
            if len(cells[color]) > 1:
                target = cells[color]
                break
        if target is None:
            self.leaves_left -= 1
            position = [0] * len(colors)
            for v, color in enumerate(colors):
                position[v] = color
            encoding = _encode(position, self.edges)
            if self.best_encoding is None or encoding < self.best_encoding:
                self.best_encoding = encoding
                self.best_position = position
            return
        # Collapse true twins: vertices with identical incident edge sets
        # are automorphic by transposition, so one branch per incidence
        # signature covers every distinct outcome.
        groups: Dict[Tuple[int, ...], int] = {}
        for v in sorted(target, key=lambda u: self.tie_key[u]):
            groups.setdefault(self.incidence[v], v)
        for v in groups.values():
            if self.leaves_left <= 0:
                return
            # Individualise v: give it a color below its cell, densify.
            branched = [
                (color, 0 if u == v else 1) for u, color in enumerate(colors)
            ]
            palette = {sig: i for i, sig in enumerate(sorted(set(branched)))}
            self._descend(
                _refine(
                    [palette[sig] for sig in branched], self.edges, self.incidence
                )
            )


def canonical_form(
    hypergraph: Hypergraph, max_leaves: int = MAX_LEAVES
) -> CanonicalForm:
    """Compute the canonical form (fingerprint + permutation) of a hypergraph.

    Isomorphic hypergraphs get equal fingerprints; the permutation
    (:attr:`CanonicalForm.order`) maps canonical indices back to this
    particular labeling's vertices.  Deterministic for a fixed labeling.
    """
    vertices = sorted(hypergraph.vertices, key=lambda v: (str(type(v)), str(v)))
    vertex_id = {v: i for i, v in enumerate(vertices)}
    # Distinct edge vertex sets only: names and duplicates are invisible to
    # the solvers, so they must be invisible to the fingerprint too.
    edge_sets = sorted(
        {frozenset(vertex_id[v] for v in edge.vertices) for edge in hypergraph.edges},
        key=lambda s: tuple(sorted(s)),
    )
    edges: List[Tuple[int, ...]] = [tuple(sorted(s)) for s in edge_sets]
    incidence_lists: List[List[int]] = [[] for _ in vertices]
    for j, edge in enumerate(edges):
        for v in edge:
            incidence_lists[v].append(j)
    incidence = [tuple(ids) for ids in incidence_lists]
    if not vertices:
        return CanonicalForm((), tuple(edges))
    search = _Search(
        edges, incidence, tie_key=[str(v) for v in vertices], max_leaves=max_leaves
    )
    search.run([0] * len(vertices))
    assert search.best_position is not None  # at least one leaf was explored
    order: List[Vertex] = [None] * len(vertices)  # type: ignore[list-item]
    for v, index in enumerate(search.best_position):
        order[index] = vertices[v]
    return CanonicalForm(tuple(order), search.best_encoding)


def hypergraph_fingerprint(hypergraph: Hypergraph) -> str:
    """The isomorphism-invariant fingerprint of ``hypergraph``.

    Convenience wrapper around :func:`canonical_form` for callers that
    only need the cache key / provenance identity (e.g. the query front
    door's ``--explain`` output), not the permutation.
    """
    return canonical_form(hypergraph).fingerprint
