"""Structural statistics of hypergraphs.

These are the properties HyperBench (Fischl et al.) reports for its
instances and that the tractability results around candidate tree
decompositions refer to (bounded rank, bounded degree, bounded
multi-intersection).  They are useful both for characterising query
workloads and for deciding which of the tractable ghw/fhw fragments of
Gottlob et al. apply to a given instance.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict

from repro.hypergraph.hypergraph import Hypergraph


def rank(hypergraph: Hypergraph) -> int:
    """The rank: the size of the largest edge."""
    return max((len(edge) for edge in hypergraph.edges), default=0)


def degree(hypergraph: Hypergraph) -> int:
    """The degree: the largest number of edges sharing one vertex."""
    return max(
        (len(hypergraph.incident_edges(v)) for v in hypergraph.vertices), default=0
    )


def intersection_width(hypergraph: Hypergraph) -> int:
    """The largest intersection of two distinct edges (the BIP parameter)."""
    best = 0
    for a, b in combinations(hypergraph.edges, 2):
        best = max(best, len(a.vertices & b.vertices))
    return best


def multi_intersection_width(hypergraph: Hypergraph, count: int) -> int:
    """The largest intersection of ``count`` distinct edges (the BMIP parameter)."""
    if count < 2:
        raise ValueError("count must be at least 2")
    if hypergraph.num_edges() < count:
        return 0
    best = 0
    for edges in combinations(hypergraph.edges, count):
        intersection = edges[0].vertices
        for edge in edges[1:]:
            intersection = intersection & edge.vertices
            if len(intersection) <= best:
                break
        best = max(best, len(intersection))
    return best


def hypergraph_statistics(hypergraph: Hypergraph) -> Dict[str, int]:
    """A HyperBench-style summary of a hypergraph."""
    return {
        "vertices": hypergraph.num_vertices(),
        "edges": hypergraph.num_edges(),
        "size": hypergraph.size(),
        "rank": rank(hypergraph),
        "degree": degree(hypergraph),
        "intersection_width": intersection_width(hypergraph),
        "triple_intersection_width": multi_intersection_width(hypergraph, 3)
        if hypergraph.num_edges() >= 3
        else 0,
    }
