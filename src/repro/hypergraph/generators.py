"""Random hypergraph generators.

These are used by the property-based tests and by the synthetic-workload
benchmarks.  All generators are deterministic for a fixed ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.hypergraph.hypergraph import Hypergraph


def random_hypergraph(
    num_vertices: int,
    num_edges: int,
    max_edge_size: int = 3,
    seed: Optional[int] = None,
) -> Hypergraph:
    """A random hypergraph with no isolated vertices.

    Each edge picks between 2 and ``max_edge_size`` distinct vertices
    uniformly at random; afterwards every vertex not yet covered is attached
    to a fresh binary edge so that the result has no isolated vertices (an
    assumption of the decomposition algorithms).
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(num_vertices)]
    edges = {}
    for i in range(num_edges):
        size = rng.randint(2, max(2, min(max_edge_size, num_vertices)))
        edges[f"e{i}"] = rng.sample(vertices, size)
    covered = {v for verts in edges.values() for v in verts}
    extra = 0
    for v in vertices:
        if v not in covered:
            other = rng.choice([u for u in vertices if u != v])
            edges[f"iso{extra}"] = [v, other]
            extra += 1
    return Hypergraph(edges)


def random_acyclic_hypergraph(
    num_edges: int,
    edge_size: int = 3,
    seed: Optional[int] = None,
) -> Hypergraph:
    """A random α-acyclic hypergraph built by growing a join tree.

    Each new edge shares a random non-empty subset of vertices with an
    existing edge and adds fresh vertices for the rest, which guarantees the
    result has a join tree (and therefore hw = ghw = shw = 1).
    """
    rng = random.Random(seed)
    counter = 0

    def fresh() -> str:
        nonlocal counter
        counter += 1
        return f"x{counter}"

    edges: List[List[str]] = [[fresh() for _ in range(edge_size)]]
    for _ in range(1, num_edges):
        parent = rng.choice(edges)
        shared = rng.sample(parent, rng.randint(1, max(1, edge_size - 1)))
        new_edge = shared + [fresh() for _ in range(edge_size - len(shared))]
        edges.append(new_edge)
    return Hypergraph({f"e{i}": verts for i, verts in enumerate(edges)})


def random_cyclic_query_hypergraph(
    cycle_length: int,
    num_tails: int = 2,
    seed: Optional[int] = None,
) -> Hypergraph:
    """A cyclic-core-plus-acyclic-tails hypergraph.

    This mimics the shape of the paper's benchmark queries: a cycle of
    ``cycle_length`` binary atoms (the cyclic "core") with ``num_tails``
    acyclic chains attached to random cycle vertices.  Such queries have a
    small ShallowCyc depth, which the constraint benchmarks exercise.
    """
    if cycle_length < 3:
        raise ValueError("cycle length must be at least 3")
    rng = random.Random(seed)
    edges = {
        f"c{i}": [f"u{i}", f"u{(i + 1) % cycle_length}"] for i in range(cycle_length)
    }
    for t in range(num_tails):
        anchor = f"u{rng.randrange(cycle_length)}"
        length = rng.randint(1, 3)
        prev = anchor
        for step in range(length):
            nxt = f"t{t}_{step}"
            edges[f"tail{t}_{step}"] = [prev, nxt]
            prev = nxt
    return Hypergraph(edges)
