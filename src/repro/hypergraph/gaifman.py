"""Gaifman (primal) graph utilities.

The Gaifman graph of a hypergraph ``H`` has the same vertices and an edge
between two vertices whenever they co-occur in some hyperedge.  Tree
decompositions of ``H`` coincide with tree decompositions of its Gaifman
graph; the hyperedges themselves are only needed for λ-labels.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.hypergraph.hypergraph import Hypergraph, Vertex


def gaifman_graph(hypergraph: Hypergraph) -> Dict[Vertex, FrozenSet[Vertex]]:
    """Adjacency map of the Gaifman graph (vertex -> neighbours, no self loops)."""
    adjacency: Dict[Vertex, Set[Vertex]] = {v: set() for v in hypergraph.vertices}
    for edge in hypergraph.edges:
        verts = list(edge.vertices)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                adjacency[u].add(v)
                adjacency[v].add(u)
    return {v: frozenset(neigh) for v, neigh in adjacency.items()}


def neighbours(hypergraph: Hypergraph, vertex: Vertex) -> FrozenSet[Vertex]:
    """Neighbours of ``vertex`` in the Gaifman graph."""
    result: Set[Vertex] = set()
    for edge in hypergraph.incident_edges(vertex):
        result.update(edge.vertices)
    result.discard(vertex)
    return frozenset(result)


def is_clique(hypergraph: Hypergraph, vertex_set: Iterable[Vertex]) -> bool:
    """``True`` iff ``vertex_set`` is a clique in the Gaifman graph."""
    verts = list(frozenset(vertex_set))
    adjacency = None
    for i, u in enumerate(verts):
        for v in verts[i + 1:]:
            if adjacency is None:
                adjacency = gaifman_graph(hypergraph)
            if v not in adjacency.get(u, frozenset()):
                return False
    return True
