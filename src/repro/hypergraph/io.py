"""Reading and writing hypergraphs in the HyperBench text format.

The HyperBench format (Fischl et al., ACM JEA 2021) writes one edge per line
as ``name(v1,v2,...),`` with an optional trailing comma on the last line and
``%``-prefixed comment lines.  Both detkdecomp and BalancedGo consume this
format, so supporting it makes the library interoperable with the published
benchmark instances.
"""

from __future__ import annotations

import re
from typing import List

from repro.hypergraph.hypergraph import Hypergraph

_EDGE_PATTERN = re.compile(r"\s*([\w.\-]+)\s*\(([^)]*)\)\s*,?\s*$")


def parse_hyperbench(text: str) -> Hypergraph:
    """Parse a hypergraph from HyperBench text."""
    edges = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        # Several edges may share a physical line, separated by "),".
        for chunk in _split_edges(line):
            match = _EDGE_PATTERN.match(chunk)
            if not match:
                raise ValueError(f"cannot parse edge declaration: {chunk!r}")
            name, vertex_list = match.groups()
            vertices = [v.strip() for v in vertex_list.split(",") if v.strip()]
            if not vertices:
                raise ValueError(f"edge {name!r} has no vertices")
            if name in edges:
                raise ValueError(f"duplicate edge name {name!r}")
            edges[name] = vertices
    if not edges:
        raise ValueError("no edges found in input")
    return Hypergraph(edges)


def _split_edges(line: str) -> List[str]:
    """Split a physical line into one chunk per edge declaration."""
    chunks = []
    depth = 0
    current = []
    for char in line:
        current.append(char)
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            chunks.append("".join(current))
            current = []
    if "".join(current).strip():
        chunks.append("".join(current))
    return chunks


def to_hyperbench(hypergraph: Hypergraph) -> str:
    """Serialise a hypergraph to HyperBench text (one edge per line)."""
    lines = []
    for edge in hypergraph.edges:
        vertices = ",".join(sorted(map(str, edge.vertices)))
        lines.append(f"{edge.name}({vertices}),")
    return "\n".join(lines) + "\n"
