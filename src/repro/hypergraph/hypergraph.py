"""The :class:`Hypergraph` data structure.

A hypergraph is a pair ``(V, E)`` where ``E`` is a set of named hyperedges,
each a subset of ``V``.  Vertices are arbitrary hashable values (strings in
most of this code base).  Edges carry names because the database layer maps
each hyperedge to a relation (atom) of a conjunctive query and needs to refer
back to it; the combinatorial layer mostly works with the edge vertex sets.

The class is immutable after construction, which lets us cache derived
structures (incidence lists, vertex ordering) and safely share hypergraphs
between decomposition searches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

Vertex = Hashable


class Edge:
    """A named hyperedge: an immutable set of vertices with a name.

    Two edges compare equal iff both their names and vertex sets are equal.
    Edges are hashable and can be used as dictionary keys, e.g. in ``λ``
    labels of decompositions.
    """

    __slots__ = ("name", "vertices")

    def __init__(self, name: str, vertices: Iterable[Vertex]):
        self.name = str(name)
        self.vertices: FrozenSet[Vertex] = frozenset(vertices)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self.vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.name == other.name and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash((self.name, self.vertices))

    def __repr__(self) -> str:
        verts = ",".join(sorted(map(str, self.vertices)))
        return f"Edge({self.name!r}, {{{verts}}})"


class Hypergraph:
    """An immutable hypergraph with named edges.

    Parameters
    ----------
    edges:
        Either a mapping ``name -> iterable of vertices`` or an iterable of
        :class:`Edge` objects / ``(name, vertices)`` pairs.
    vertices:
        Optional extra vertices.  The paper assumes hypergraphs without
        isolated vertices; we allow them for generality but most algorithms
        require ``self.has_isolated_vertices()`` to be ``False``.
    """

    __slots__ = ("_edges", "_vertices", "_incidence", "_edge_order", "_bitsets")

    def __init__(
        self,
        edges: Iterable,
        vertices: Optional[Iterable[Vertex]] = None,
    ):
        edge_list = []
        if isinstance(edges, Mapping):
            items: Iterable = edges.items()
        else:
            items = edges
        for item in items:
            if isinstance(item, Edge):
                edge_list.append(item)
            else:
                name, verts = item
                edge_list.append(Edge(name, verts))
        names = [e.name for e in edge_list]
        if len(set(names)) != len(names):
            raise ValueError("duplicate edge names in hypergraph")
        self._edges: Dict[str, Edge] = {e.name: e for e in edge_list}
        self._edge_order: Tuple[str, ...] = tuple(e.name for e in edge_list)
        vertex_set = set()
        for e in edge_list:
            vertex_set.update(e.vertices)
        if vertices is not None:
            vertex_set.update(vertices)
        self._vertices: FrozenSet[Vertex] = frozenset(vertex_set)
        incidence: Dict[Vertex, list] = {v: [] for v in self._vertices}
        for e in edge_list:
            for v in e.vertices:
                incidence[v].append(e)
        self._incidence = {v: tuple(es) for v, es in incidence.items()}
        self._bitsets = None

    # -- basic accessors ---------------------------------------------------

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set ``V(H)``."""
        return self._vertices

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The edges ``E(H)`` in insertion order."""
        return tuple(self._edges[name] for name in self._edge_order)

    @property
    def edge_names(self) -> Tuple[str, ...]:
        return self._edge_order

    def edge(self, name: str) -> Edge:
        """Return the edge with the given name."""
        return self._edges[name]

    def __contains__(self, name: str) -> bool:
        return name in self._edges

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return len(self._edges)

    def size(self) -> int:
        """``||H||``: total number of vertex occurrences over all edges."""
        return sum(len(e) for e in self.edges)

    def incident_edges(self, vertex: Vertex) -> Tuple[Edge, ...]:
        """``I(v)``: the edges containing ``vertex``."""
        return self._incidence.get(vertex, ())

    def has_isolated_vertices(self) -> bool:
        return any(len(es) == 0 for es in self._incidence.values())

    # -- bitset kernel -----------------------------------------------------

    @property
    def bitsets(self) -> "HypergraphBitsets":
        """The cached mask tables for this hypergraph (built on first use).

        Immutability makes the cache safe: the vertex order, per-edge masks
        and the [S]-component memo all remain valid for the lifetime of the
        hypergraph.  Masks are an internal representation — public APIs
        accept and return frozensets (see :mod:`repro.hypergraph.bitset`).
        """
        bitsets = self._bitsets
        if bitsets is None:
            from repro.hypergraph.bitset import HypergraphBitsets

            bitsets = HypergraphBitsets(
                self._vertices,
                [(name, self._edges[name].vertices) for name in self._edge_order],
            )
            self._bitsets = bitsets
        return bitsets

    def edge_mask(self, name: str) -> int:
        """The vertex mask of the named edge."""
        return self.bitsets.edge_mask_by_name[name]

    def vertex_mask(self, vertices: Iterable[Vertex]) -> int:
        """Encode ``vertices ∩ V(H)`` as a mask (unknown vertices dropped)."""
        return self.bitsets.indexer.to_mask_clipped(vertices)

    def vertex_set(self, mask: int) -> FrozenSet[Vertex]:
        """Decode a mask produced by this hypergraph's indexer."""
        return self.bitsets.indexer.to_frozenset(mask)

    # -- derived hypergraphs -----------------------------------------------

    def induced_subhypergraph(self, vertex_subset: Iterable[Vertex]) -> "Hypergraph":
        """``H[U]``: vertices ``U`` and edges ``{e ∩ U | e ∈ E(H)} \\ {∅}``.

        Edges that become equal after restriction are kept once (the first
        edge name wins); this matches how induced subhypergraphs are used in
        the decomposition algorithms, where only the vertex sets matter.
        """
        universe = frozenset(vertex_subset) & self._vertices
        seen = {}
        for e in self.edges:
            restricted = e.vertices & universe
            if restricted and restricted not in seen:
                seen[restricted] = e.name
        edges = [Edge(name, verts) for verts, name in seen.items()]
        return Hypergraph(edges, vertices=universe)

    def restrict_edges(self, edge_names: Iterable[str]) -> "Hypergraph":
        """The subhypergraph consisting of the named edges only."""
        names = set(edge_names)
        return Hypergraph([self._edges[n] for n in self._edge_order if n in names])

    def vertices_of(self, edges: Iterable[Edge]) -> FrozenSet[Vertex]:
        """``⋃λ`` for a collection ``λ`` of edges."""
        result = set()
        for e in edges:
            result.update(e.vertices)
        return frozenset(result)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._vertices == other._vertices
            and {e.vertices for e in self.edges} == {e.vertices for e in other.edges}
        )

    def __hash__(self) -> int:
        return hash((self._vertices, frozenset(e.vertices for e in self.edges)))

    def __repr__(self) -> str:
        return f"Hypergraph(|V|={self.num_vertices()}, |E|={self.num_edges()})"

    # -- convenience constructors -------------------------------------------

    @classmethod
    def from_edge_sets(cls, edge_sets: Sequence[Iterable[Vertex]]) -> "Hypergraph":
        """Build a hypergraph from unnamed vertex sets (named ``e0``, ``e1``, ...)."""
        return cls({f"e{i}": verts for i, verts in enumerate(edge_sets)})
