"""Hypergraph substrate.

This package provides the hypergraph data structure and the connectivity
machinery ([S]-components, separators, induced subhypergraphs) that every
decomposition algorithm in :mod:`repro` builds on, together with generators
for random hypergraphs and a library of the named hypergraphs used in the
paper (``H2``, ``H3``, ``H3'``, the ``H*_BOG`` family, cycles, grids).
"""

from repro.hypergraph.hypergraph import Edge, Hypergraph
from repro.hypergraph.components import (
    connected_components,
    edge_components,
    is_connected,
    vertex_components,
)
from repro.hypergraph.gaifman import gaifman_graph, is_clique, neighbours
from repro.hypergraph.generators import (
    random_hypergraph,
    random_acyclic_hypergraph,
    random_cyclic_query_hypergraph,
)
from repro.hypergraph.library import (
    cycle_hypergraph,
    example4_query,
    four_cycle_query,
    grid_hypergraph,
    hypergraph_h2,
    hypergraph_h3,
    hypergraph_h3_prime,
    hypergraph_bog_star,
    triangle_hypergraph,
)
from repro.hypergraph.canonical import CanonicalForm, canonical_form
from repro.hypergraph.io import parse_hyperbench, to_hyperbench
from repro.hypergraph.stats import hypergraph_statistics

__all__ = [
    "Edge",
    "Hypergraph",
    "connected_components",
    "edge_components",
    "vertex_components",
    "is_connected",
    "gaifman_graph",
    "neighbours",
    "is_clique",
    "random_hypergraph",
    "random_acyclic_hypergraph",
    "random_cyclic_query_hypergraph",
    "cycle_hypergraph",
    "four_cycle_query",
    "example4_query",
    "grid_hypergraph",
    "triangle_hypergraph",
    "hypergraph_h2",
    "hypergraph_h3",
    "hypergraph_h3_prime",
    "hypergraph_bog_star",
    "CanonicalForm",
    "canonical_form",
    "parse_hyperbench",
    "to_hyperbench",
    "hypergraph_statistics",
]
