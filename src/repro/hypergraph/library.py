"""Named hypergraphs used in the paper.

The functions in this module construct, from scratch, the concrete
hypergraphs discussed in the paper:

* :func:`hypergraph_h2` — the hypergraph ``H2`` of Example 1 / Figure 1 with
  ``ghw = shw = 2`` and ``hw = 3``;
* :func:`hypergraph_h3` — the hypergraph ``H3`` of Appendix A.2 / Figure 8
  with ``ghw = shw = 3`` and ``hw = 4``;
* :func:`hypergraph_h3_prime` — the modified hypergraph ``H3'`` of Example 2 /
  Figure 2 (``H3`` plus the edge ``{3', 4'}``) with ``ghw = shw1 = 3`` and
  ``shw = hw = 4``;
* :func:`hypergraph_bog_star` — a member of the ``H*_BOG`` family sketched in
  Appendix B.2 (see the docstring for the substitutions made);
* small standard shapes: cycles, triangles, grids, the 4-cycle query of
  Example 3 and the partitioned query of Example 4.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hypergraph.hypergraph import Hypergraph


def triangle_hypergraph() -> Hypergraph:
    """The triangle query ``R(x,y), S(y,z), T(z,x)`` (hw = ghw = shw = 2)."""
    return Hypergraph({"R": ["x", "y"], "S": ["y", "z"], "T": ["z", "x"]})


def cycle_hypergraph(length: int) -> Hypergraph:
    """The ``length``-cycle with binary edges ``e_i = {v_i, v_{i+1 mod n}}``."""
    if length < 3:
        raise ValueError("cycle length must be at least 3")
    return Hypergraph(
        {f"e{i}": [f"v{i}", f"v{(i + 1) % length}"] for i in range(length)}
    )


def four_cycle_query() -> Hypergraph:
    """Example 3: ``R(w,x), S(x,y), T(y,z), U(z,w)`` (hw = 2)."""
    return Hypergraph(
        {"R": ["w", "x"], "S": ["x", "y"], "T": ["y", "z"], "U": ["z", "w"]}
    )


def example4_query() -> Tuple[Hypergraph, Dict[str, str]]:
    """Example 4: the 6-atom query and its vertical partitioning.

    Returns the hypergraph and a map ``edge name -> partition`` (relations
    ``R, U, V`` live on partition ``"p1"``, relations ``S, T, W`` on ``"p2"``).
    """
    hypergraph = Hypergraph(
        {
            "R": ["v1", "v2"],
            "S": ["v2", "v4"],
            "T": ["v3", "v4"],
            "U": ["v1", "v3"],
            "V": ["v1", "v5"],
            "W": ["v4", "v6"],
        }
    )
    partition = {"R": "p1", "U": "p1", "V": "p1", "S": "p2", "T": "p2", "W": "p2"}
    return hypergraph, partition


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """A ``rows × cols`` grid graph viewed as a hypergraph of binary edges."""
    edges = {}
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges[f"h{r}_{c}"] = [f"v{r}_{c}", f"v{r}_{c + 1}"]
            if r + 1 < rows:
                edges[f"w{r}_{c}"] = [f"v{r}_{c}", f"v{r + 1}_{c}"]
    return Hypergraph(edges)


def hypergraph_h2() -> Hypergraph:
    """The hypergraph ``H2`` from Example 1 (Figure 1a).

    Vertices ``1..8, a, b``; edges ``{1,8}, {3,4}, {1,2,a}, {4,5,a}, {6,7,a},
    {2,3,b}, {5,6,b}, {7,8,b}``.  It satisfies ``ghw = shw = 2`` and
    ``hw = 3``.
    """
    return Hypergraph(
        {
            "e18": ["1", "8"],
            "e34": ["3", "4"],
            "e12a": ["1", "2", "a"],
            "e45a": ["4", "5", "a"],
            "e67a": ["6", "7", "a"],
            "e23b": ["2", "3", "b"],
            "e56b": ["5", "6", "b"],
            "e78b": ["7", "8", "b"],
        }
    )


_H3_G = ("g11", "g12", "g21", "g22")
_H3_H = ("h11", "h12", "h21", "h22")
_H3_V = ("0", "1", "2", "3", "4", "0p", "1p", "2p", "3p", "4p")


def _h3_edges(include_3p4p: bool) -> Dict[str, List[str]]:
    """Shared edge construction for ``H3`` and ``H3'``.

    Primed vertices are written with a ``p`` suffix (``0p`` for ``0'``).
    """
    edges: Dict[str, List[str]] = {}
    for w in _H3_G + _H3_H:
        for v in _H3_V:
            edges[f"pin_{w}_{v}"] = [w, v]
    edges["e24"] = ["2", "4"]
    edges["e2p4p"] = ["2p", "4p"]
    edges["e00p"] = ["0", "0p"]
    edges["e01"] = ["0", "1"]
    edges["e12"] = ["1", "2"]
    edges["e03"] = ["0", "3"]
    edges["e23"] = ["2", "3"]
    edges["e0p1p"] = ["0p", "1p"]
    edges["e1p2p"] = ["1p", "2p"]
    edges["e0p3p"] = ["0p", "3p"]
    edges["e2p3p"] = ["2p", "3p"]
    if include_3p4p:
        edges["e3p4p"] = ["3p", "4p"]
    edges["hor1"] = ["g11", "g12", "h11", "h12", "4p"]
    edges["hor2"] = ["g21", "g22", "h21", "h22", "3"]
    edges["vert1"] = ["g11", "g21", "h11", "h21", "4"]
    edges["vert2"] = ["g12", "g22", "h12", "h22", "3p"]
    return edges


def hypergraph_h3() -> Hypergraph:
    """The hypergraph ``H3`` of Appendix A.2 (adapted from Adler [1]).

    Satisfies ``ghw = shw = 3`` and ``hw = 4``.  Primed vertices use a ``p``
    suffix (``3p`` for ``3'``).
    """
    return Hypergraph(_h3_edges(include_3p4p=False))


def hypergraph_h3_prime() -> Hypergraph:
    """The modified hypergraph ``H3'`` of Example 2 (Figure 2a).

    It is ``H3`` plus the edge ``{3', 4'}`` and satisfies
    ``ghw = shw1 = 3`` and ``shw = hw = 4``.
    """
    return Hypergraph(_h3_edges(include_3p4p=True))


def hypergraph_bog_star(n: int = 3, grid_size: int = 3) -> Hypergraph:
    """A member of the ``H*_BOG`` family of Theorem 9 / Appendix B.2.

    The construction in the paper builds on the "balloon of grids" (BOG)
    hypergraphs of Adler [1]: a switch graph over two copies ``N1, N2`` of a
    punctured hypergraph with marshal width above ``n``, a set ``B`` of
    balloon vertices covered by edges ``a_1..a_s`` (rows) and ``b_1..b_s``
    (columns), eyelet vertices attaching ``B`` to the switch graph, and — the
    paper's modification — an extra vertex ``⋆`` adjacent exactly to ``B``.

    Adler's full construction (punctured hypergraphs, machinists, eyelets) is
    not reproduced verbatim here; instead we build the structurally analogous
    family documented in DESIGN.md: ``N1``/``N2`` are ``grid_size × grid_size``
    grids (whose marshal width grows with ``grid_size``), ``B`` is an
    ``s × s`` balloon grid of vertices ``g_{i,j}`` covered by row edges
    ``a_i = {g_{i,1..s}} ∪ α_i`` and column edges ``b_j = {g_{1..s,j}} ∪ β_j``
    where ``α``/``β`` distribute the switch-graph vertices as in Eq. (2)-(4),
    and ``⋆`` is adjacent exactly to ``B``.  The family preserves the
    behaviour the benchmarks exercise: a large candidate-bag space where
    ``Soft^1`` separates ``⋆`` and subedges of the row/column edges become
    available only after one iteration.
    """
    if n < 1:
        raise ValueError("n must be positive")
    edges: Dict[str, List[str]] = {}

    def grid_vertices(tag: str) -> List[str]:
        return [f"{tag}_{r}_{c}" for r in range(grid_size) for c in range(grid_size)]

    # The two copies N1, N2 of the "hard" sub-hypergraph (grids here).
    for tag in ("n1", "n2"):
        for r in range(grid_size):
            for c in range(grid_size):
                if c + 1 < grid_size:
                    edges[f"{tag}_h_{r}_{c}"] = [f"{tag}_{r}_{c}", f"{tag}_{r}_{c + 1}"]
                if r + 1 < grid_size:
                    edges[f"{tag}_v_{r}_{c}"] = [f"{tag}_{r}_{c}", f"{tag}_{r + 1}_{c}"]
    n1_vertices = grid_vertices("n1")
    n2_vertices = grid_vertices("n2")

    # Switch-graph scaffolding: the hub vertex m' and the e1/e2 selector
    # vertices, each connected to every vertex of the respective copy.
    hub = "m_prime"
    e1 = [f"e1_{i}" for i in range(n + 1)]
    e2 = [f"e2_{i}" for i in range(n + 1)]
    for i, v in enumerate(e1):
        edges[f"sel1_{i}"] = [v] + n1_vertices
    for i, v in enumerate(e2):
        edges[f"sel2_{i}"] = [v] + n2_vertices
    edges["hub1"] = [hub] + n1_vertices
    edges["hub2"] = [hub] + n2_vertices

    # The α / β sides of the switch graph and the balloon grid B.
    alpha = e1 + [hub] + n2_vertices
    beta = e2 + [hub] + n1_vertices
    s = len(alpha)
    balloon = [[f"g_{i}_{j}" for j in range(s)] for i in range(s)]
    for i in range(s):
        edges[f"a_{i}"] = balloon[i] + [alpha[i]]
    for j in range(s):
        edges[f"b_{j}"] = [balloon[i][j] for i in range(s)] + [beta[j]]

    # The paper's modification: a star vertex adjacent exactly to B.
    balloon_flat = [v for row in balloon for v in row]
    for idx, g in enumerate(balloon_flat):
        edges[f"star_{idx}"] = ["star", g]
    return Hypergraph(edges)
