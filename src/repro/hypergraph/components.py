"""Connectivity and [S]-components.

Terminology follows Section 2 of the paper.  For a vertex set ``S``:

* two vertices ``u, v ∉ S`` are *[S]-connected* if there is a path between
  them that avoids ``S``;
* two edges are [S]-connected if they contain [S]-connected vertices;
* an *[S]-component* is a maximal set of pairwise [S]-connected edges;
* the corresponding *vertex component* is the maximal set of pairwise
  [S]-connected vertices.

Both flavours are used: Definition 3 (candidate bags) needs edge components,
the block machinery of Algorithm 1 needs vertex components.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex


class _UnionFind:
    """Union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable):
        self._parent = {item: item for item in items}

    def find(self, item):
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> Dict:
        result: Dict = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result


def vertex_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[FrozenSet[Vertex]]:
    """Maximal sets of pairwise [S]-connected vertices.

    Vertices in the separator never appear in any component.  The result is
    sorted deterministically (by sorted string representation) so callers can
    rely on a stable ordering.
    """
    sep = frozenset(separator)
    outside = [v for v in hypergraph.vertices if v not in sep]
    if not outside:
        return []
    uf = _UnionFind(outside)
    for edge in hypergraph.edges:
        free = [v for v in edge.vertices if v not in sep]
        for i in range(1, len(free)):
            uf.union(free[0], free[i])
    comps = [frozenset(group) for group in uf.groups().values()]
    return sorted(comps, key=lambda c: sorted(map(str, c)))


def edge_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[Tuple[Edge, ...]]:
    """Maximal sets of pairwise [S]-connected edges ([S]-components).

    An edge entirely contained in the separator belongs to no component.
    The components are returned in the same order as the matching vertex
    components.
    """
    sep = frozenset(separator)
    vcomps = vertex_components(hypergraph, sep)
    index: Dict[Vertex, int] = {}
    for i, comp in enumerate(vcomps):
        for v in comp:
            index[v] = i
    buckets: List[List[Edge]] = [[] for _ in vcomps]
    for edge in hypergraph.edges:
        free = next((v for v in edge.vertices if v not in sep), None)
        if free is not None:
            buckets[index[free]].append(edge)
    return [tuple(bucket) for bucket in buckets if bucket]


def lambda_components(
    hypergraph: Hypergraph, lambda_edges: Iterable[Edge]
) -> List[Tuple[Edge, ...]]:
    """[λ]-components: edge components w.r.t. the union of the λ edges."""
    separator = hypergraph.vertices_of(lambda_edges)
    return edge_components(hypergraph, separator)


def component_vertices(component: Iterable[Edge]) -> FrozenSet[Vertex]:
    """``⋃C`` for an (edge) component ``C``."""
    result = set()
    for edge in component:
        result.update(edge.vertices)
    return frozenset(result)


def connected_components(hypergraph: Hypergraph) -> List[FrozenSet[Vertex]]:
    """Connected components of the hypergraph (as vertex sets)."""
    return vertex_components(hypergraph, ())


def is_connected(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph has at most one connected component."""
    return len(connected_components(hypergraph)) <= 1


def separates(
    hypergraph: Hypergraph, separator: Iterable[Vertex], u: Vertex, v: Vertex
) -> bool:
    """``True`` iff ``u`` and ``v`` are *not* [S]-connected.

    Vertices inside the separator are considered separated from everything
    (they cannot participate in [S]-paths).
    """
    sep = frozenset(separator)
    if u in sep or v in sep:
        return True
    for comp in vertex_components(hypergraph, sep):
        if u in comp and v in comp:
            return False
    return True


def is_minimal_separator(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> bool:
    """Check whether ``separator`` is a minimal separator of the Gaifman graph.

    A vertex set ``S`` is a minimal separator if at least two [S]-components
    are *full*, i.e. every vertex of ``S`` has a neighbour in the component.
    (This is the classical Bouchitté–Todinca characterisation.)
    """
    sep = frozenset(separator)
    if not sep:
        return False
    full = 0
    for comp in vertex_components(hypergraph, sep):
        attached = set()
        for edge in hypergraph.edges:
            if edge.vertices & comp:
                attached.update(edge.vertices & sep)
        if attached == sep:
            full += 1
            if full >= 2:
                return True
    return False
