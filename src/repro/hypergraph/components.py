"""Connectivity and [S]-components.

Terminology follows Section 2 of the paper.  For a vertex set ``S``:

* two vertices ``u, v ∉ S`` are *[S]-connected* if there is a path between
  them that avoids ``S``;
* two edges are [S]-connected if they contain [S]-connected vertices;
* an *[S]-component* is a maximal set of pairwise [S]-connected edges;
* the corresponding *vertex component* is the maximal set of pairwise
  [S]-connected vertices.

Both flavours are used: Definition 3 (candidate bags) needs edge components,
the block machinery of Algorithm 1 needs vertex components.

The computation runs on the hypergraph's bitset kernel
(:mod:`repro.hypergraph.bitset`): a BFS over per-edge masks replaces the
seed's per-vertex union-find, and results are memoised per separator mask on
the hypergraph, so repeated probes of the same separator (the common case in
candidate-bag generation and Algorithm 1) cost a dict lookup.  The public
API is unchanged and keeps returning frozensets in the same deterministic
order as the seed implementation (see :mod:`repro.core.reference`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex


def vertex_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[FrozenSet[Vertex]]:
    """Maximal sets of pairwise [S]-connected vertices.

    Vertices in the separator never appear in any component.  The result is
    sorted deterministically (by sorted string representation) so callers can
    rely on a stable ordering.
    """
    bitsets = hypergraph.bitsets
    separator_mask = bitsets.indexer.to_mask_clipped(separator)
    to_frozenset = bitsets.indexer.to_frozenset
    # Components are disjoint, so ascending mask order (lowest bit first)
    # already equals the documented sort-by-sorted-strings order.
    return [to_frozenset(mask) for mask in bitsets.components(separator_mask)]


def edge_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[Tuple[Edge, ...]]:
    """Maximal sets of pairwise [S]-connected edges ([S]-components).

    An edge entirely contained in the separator belongs to no component.
    The components are returned in the same order as the matching vertex
    components.
    """
    bitsets = hypergraph.bitsets
    separator_mask = bitsets.indexer.to_mask_clipped(separator)
    components = bitsets.components(separator_mask)
    if not components:
        return []
    not_sep = ~separator_mask
    buckets: List[List[Edge]] = [[] for _ in components]
    for edge, edge_mask in zip(hypergraph.edges, bitsets.edge_masks):
        free = edge_mask & not_sep
        if not free:
            continue
        for i, component in enumerate(components):
            if free & component:
                buckets[i].append(edge)
                break
    return [tuple(bucket) for bucket in buckets if bucket]


def lambda_components(
    hypergraph: Hypergraph, lambda_edges: Iterable[Edge]
) -> List[Tuple[Edge, ...]]:
    """[λ]-components: edge components w.r.t. the union of the λ edges."""
    separator = hypergraph.vertices_of(lambda_edges)
    return edge_components(hypergraph, separator)


def component_vertices(component: Iterable[Edge]) -> FrozenSet[Vertex]:
    """``⋃C`` for an (edge) component ``C``."""
    result = set()
    for edge in component:
        result.update(edge.vertices)
    return frozenset(result)


def connected_components(hypergraph: Hypergraph) -> List[FrozenSet[Vertex]]:
    """Connected components of the hypergraph (as vertex sets)."""
    return vertex_components(hypergraph, ())


def is_connected(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph has at most one connected component."""
    return len(connected_components(hypergraph)) <= 1


def separates(
    hypergraph: Hypergraph, separator: Iterable[Vertex], u: Vertex, v: Vertex
) -> bool:
    """``True`` iff ``u`` and ``v`` are *not* [S]-connected.

    Vertices inside the separator are considered separated from everything
    (they cannot participate in [S]-paths).
    """
    sep = frozenset(separator)
    if u in sep or v in sep:
        return True
    bitsets = hypergraph.bitsets
    indexer = bitsets.indexer
    if u not in indexer or v not in indexer:
        return True
    u_bit = 1 << indexer.bit(u)
    v_bit = 1 << indexer.bit(v)
    for component in bitsets.components(indexer.to_mask_clipped(sep)):
        if component & u_bit:
            return not (component & v_bit)
    return True


def is_minimal_separator(
    hypergraph: Hypergraph, separator: Iterable[Vertex]
) -> bool:
    """Check whether ``separator`` is a minimal separator of the Gaifman graph.

    A vertex set ``S`` is a minimal separator if at least two [S]-components
    are *full*, i.e. every vertex of ``S`` has a neighbour in the component.
    (This is the classical Bouchitté–Todinca characterisation.)
    """
    sep = frozenset(separator)
    if not sep or not sep <= hypergraph.vertices:
        return False
    bitsets = hypergraph.bitsets
    separator_mask = bitsets.indexer.to_mask(sep)
    edge_masks = bitsets.edge_masks
    full = 0
    for component in bitsets.components(separator_mask):
        attached = 0
        for edge_mask in edge_masks:
            if edge_mask & component:
                attached |= edge_mask & separator_mask
        if attached == separator_mask:
            full += 1
            if full >= 2:
                return True
    return False
