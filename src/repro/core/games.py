"""Robber and Marshals games, including the Institutional variant (Appendix A.1).

In the ``k``-Robber-and-Marshals game, ``k`` marshals occupy hyperedges and a
robber moves on vertices; the marshals win if they can trap the robber.  The
*monotone* variant requires the robber's escape space never to grow.  The
paper's Institutional Robber and Marshals Game (IRMG) adds administrators:
the effectively marshalled space is the intersection of the marshalled edges
with an administrated edge component, which lets the marshals block parts of
edges.  Theorem 12 states ``mon-irmw(H) ≤ shw(H)``.

The implementation is a value iteration over the finite game graph whose
states are pairs (blocked vertex set, escape space).  Both games share the
same engine and differ only in the family of vertex sets the marshal side can
block per move, so the containment ``irmw ≤ mw`` is immediate from the code
as well.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.hypergraph.components import (
    component_vertices,
    edge_components,
    vertex_components,
)

BlockedSet = FrozenSet[Vertex]
Escape = FrozenSet[Vertex]


def _marshal_blocking_sets(hypergraph: Hypergraph, k: int) -> List[BlockedSet]:
    """All vertex sets blockable by ≤ k marshals (unions of ≤ k edges)."""
    edges = list(hypergraph.edges)
    result: Set[BlockedSet] = {frozenset()}
    for size in range(1, min(k, len(edges)) + 1):
        for subset in combinations(edges, size):
            result.add(hypergraph.vertices_of(subset))
    return sorted(result, key=lambda s: (len(s), sorted(map(str, s))))


def _irmg_blocking_sets(hypergraph: Hypergraph, k: int) -> List[BlockedSet]:
    """Effectively marshalled spaces of the IRMG: ``(⋃C) ∩ (⋃M)``.

    ``A`` ranges over ≤ k administrator edges, ``C`` over [A]-edge-components,
    and ``M`` over ≤ k marshal edges.  With ``A = ∅`` the single component is
    all of ``E(H)``, so every plain-marshal blocking set is included.
    """
    edges = list(hypergraph.edges)
    marshal_unions = _marshal_blocking_sets(hypergraph, k)
    component_sets: Set[BlockedSet] = set()
    for size in range(0, min(k, len(edges)) + 1):
        for administrators in combinations(edges, size):
            separator = hypergraph.vertices_of(administrators)
            for component in edge_components(hypergraph, separator):
                component_sets.add(component_vertices(component))
    result: Set[BlockedSet] = {frozenset()}
    for marshal_union in marshal_unions:
        for component_set in component_sets:
            result.add(marshal_union & component_set)
    return sorted(result, key=lambda s: (len(s), sorted(map(str, s))))


class _CaptureGame:
    """A pursuit game parameterised by the family of blockable vertex sets."""

    def __init__(self, hypergraph: Hypergraph, blocking_sets: Iterable[BlockedSet]):
        self.hypergraph = hypergraph
        self.blocking_sets = list(blocking_sets)
        self._components_cache: Dict[BlockedSet, Tuple[Escape, ...]] = {}

    def _components(self, blocked: BlockedSet) -> Tuple[Escape, ...]:
        if blocked not in self._components_cache:
            self._components_cache[blocked] = tuple(
                vertex_components(self.hypergraph, blocked)
            )
        return self._components_cache[blocked]

    def _successors(
        self, blocked: BlockedSet, escape: Escape, new_blocked: BlockedSet
    ) -> List[Escape]:
        """Escape spaces the robber can be in after the blockers move.

        The robber may move along paths avoiding ``blocked ∩ new_blocked``;
        afterwards it sits in some component w.r.t. ``new_blocked``.
        """
        transition_separator = blocked & new_blocked
        reachable: Set[Vertex] = set()
        for component in self._components(transition_separator):
            if component & escape:
                reachable.update(component)
        reachable.update(escape)
        return [
            component
            for component in self._components(new_blocked)
            if component & reachable
        ]

    def blockers_win(self, monotone: bool = False) -> bool:
        """Do the blockers have a (monotone) winning strategy from the start?"""
        states: Set[Tuple[BlockedSet, Escape]] = set()
        initial_blocked: BlockedSet = frozenset()
        initial_escapes = self._components(initial_blocked)
        frontier: List[Tuple[BlockedSet, Escape]] = [
            (initial_blocked, escape) for escape in initial_escapes
        ]
        # Explore the reachable state space first.
        while frontier:
            state = frontier.pop()
            if state in states:
                continue
            states.add(state)
            blocked, escape = state
            for new_blocked in self.blocking_sets:
                for successor in self._successors(blocked, escape, new_blocked):
                    if (new_blocked, successor) not in states:
                        frontier.append((new_blocked, successor))
        winning: Set[Tuple[BlockedSet, Escape]] = set()
        changed = True
        while changed:
            changed = False
            for state in states:
                if state in winning:
                    continue
                blocked, escape = state
                for new_blocked in self.blocking_sets:
                    successors = self._successors(blocked, escape, new_blocked)
                    if monotone and any(not s <= escape for s in successors):
                        continue
                    if all((new_blocked, s) in winning for s in successors):
                        winning.add(state)
                        changed = True
                        break
        return all(
            (initial_blocked, escape) in winning for escape in initial_escapes
        )


def marshals_have_winning_strategy(
    hypergraph: Hypergraph, k: int, monotone: bool = False
) -> bool:
    """Do ``k`` marshals have a (monotone) winning strategy on ``H``?"""
    game = _CaptureGame(hypergraph, _marshal_blocking_sets(hypergraph, k))
    return game.blockers_win(monotone=monotone)


def irmg_have_winning_strategy(
    hypergraph: Hypergraph, k: int, monotone: bool = False
) -> bool:
    """Do ``k`` marshals + administrators win the (monotone) IRMG on ``H``?"""
    game = _CaptureGame(hypergraph, _irmg_blocking_sets(hypergraph, k))
    return game.blockers_win(monotone=monotone)


def marshals_width(hypergraph: Hypergraph, monotone: bool = False, max_k: int = 8) -> int:
    """``mw(H)`` (or ``mon-mw(H)``): the least k with a (monotone) winning strategy."""
    for k in range(1, max_k + 1):
        if marshals_have_winning_strategy(hypergraph, k, monotone=monotone):
            return k
    raise ValueError(f"no winning strategy with up to {max_k} marshals")


def irmg_width(hypergraph: Hypergraph, monotone: bool = False, max_k: int = 8) -> int:
    """``irmw(H)`` (or ``mon-irmw(H)``): the least k winning the (monotone) IRMG."""
    for k in range(1, max_k + 1):
        if irmg_have_winning_strategy(hypergraph, k, monotone=monotone):
            return k
    raise ValueError(f"no winning strategy with up to {max_k} marshals")
