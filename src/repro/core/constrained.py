"""Algorithm 2: constrained and preference-optimised candidate tree decompositions.

This is the paper's ``(𝒞, ≤)-CandidateTD`` solver: instead of merely checking
whether *some* basis satisfies a block, it keeps, for every block, the basis
whose induced partial decomposition ``Decomp(S, C, X)`` satisfies the subtree
constraint ``𝒞`` and is minimal with respect to the preference order ``≤``.
For tractable, preference-complete pairs ``(𝒞, ≤)`` the algorithm finds a
globally minimal constrained CTD in polynomial time (Theorem 10).

The fixpoint is event-driven, mirroring Algorithm 1 in :mod:`repro.core.ctd`
but with the preference folded into the re-probe condition:

* only statically feasible (candidate, block) pairs are ever probed — the
  satisfaction-independent basis conditions are memoised per pair in
  :meth:`repro.core.blocks.BlockIndex.candidate_probes`, and the probe
  tables with their event-routing reverse map come from the shared solver
  core (:class:`repro.core.options.SolverCore`, also driving Algorithm 1
  and the exact ranked enumerator);
* every block keeps one best entry ``(preference key, fragment)``; partial
  decompositions are immutable ``(bag, children)`` fragments
  (:mod:`repro.core.fragments`) assembled from the current best fragments of
  the candidate's sub-blocks, so constraint checks and preference keys are
  evaluated once per distinct fragment, not once per probe
  (:class:`repro.core.options.FragmentEvaluator`);
* a worklist drives re-probing with two event kinds: a sub-block becoming
  *newly satisfied* (it can complete a waiting basis, as in Algorithm 1) and
  a sub-block's best key *improving* (it changes the fragments the blocks
  using it as a sub would compose).  A block always keeps the least-key
  compliant fragment it has evaluated, so a re-probe can only improve its
  entry; with the topological bottom-up sweep every sub-block is final
  before its dependants are first probed, making the fixpoint the canonical
  bottom-up dynamic program.

For preferences that declare themselves monotone
(:class:`repro.core.preferences.Preference.monotone`) keys compose bottom-up
from child states and the partial decomposition is never materialised unless
a non-trivial constraint needs to inspect it; non-monotone preferences fall
back to evaluating the (memoised) materialised fragment.

The seed's round-robin dynamic program is preserved as the executable
specification :func:`repro.core.reference.reference_constrained_ctd`; the
equivalence property tests assert identical decide answers and optimal keys,
and ``benchmarks/test_bench_constrained.py`` tracks the speedup.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.core.blocks import Bag, Block
from repro.core.constraints import SubtreeConstraint
from repro.core.fragments import Fragment, make_fragment
from repro.core.options import _REJECTED, SolverCore
from repro.core.preferences import Preference
from repro.runtime.budget import Budget, BudgetExceeded, SolveOutcome, completed_outcome


class ConstrainedCTDSolver:
    """Event-driven dynamic program keeping the ≤-minimal compliant decomposition.

    Governed solving (*anytime semantics*): with a
    :class:`~repro.runtime.Budget` (constructor or ``solve(budget=...)``),
    the fixpoint ticks once per probe evaluation.  On exhaustion — or
    Ctrl-C under a budget — the per-block best entries accumulated so far
    are kept: every one is a constraint-compliant partial decomposition,
    so :meth:`solve` returns the best root fragment found so far (possibly
    ``None``) and :attr:`outcome` says whether it is the proven optimum
    (``complete``) or a best-effort answer.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        constraint: Optional[SubtreeConstraint] = None,
        preference: Optional[Preference] = None,
        budget: Optional[Budget] = None,
        shards: int = 1,
        pool=None,
    ):
        # The shared core (repro.core.options) carries the filtered bag set,
        # the block index, the probe tables and the per-fragment memo tables
        # that turn the per-probe decomposition rebuilds of the seed DP into
        # dict lookups.
        self.core = SolverCore(
            hypergraph,
            candidate_bags,
            constraint,
            preference,
            budget=budget,
            shards=shards,
            pool=pool,
        )
        self.hypergraph = hypergraph
        self.budget = budget
        self.constraint = self.core.constraint
        self.preference = self.core.preference
        self.index = self.core.index
        # Dense per-block state, filled by _run.  Invariant: a non-None
        # fragment entry always satisfies the constraint on every subtree.
        self._satisfied: Optional[bytearray] = None
        self._best_key: List[object] = []
        self._best_fragment: List[Optional[Fragment]] = []
        self._best_state: List[object] = []
        self._solved = False
        self._outcome: Optional[SolveOutcome] = None

    def _set_budget(self, budget: Optional[Budget]) -> None:
        if budget is None:
            return
        if self._solved:
            raise RuntimeError("budget must be supplied before the solver runs")
        self.budget = budget
        self.core.budget = budget

    # -- fragment evaluation ---------------------------------------------------

    def _materialise(self, fragment: Fragment) -> TreeDecomposition:
        return self.core.evaluator.materialise(fragment)

    def _evaluate_fragment(self, fragment: Fragment) -> object:
        """``(key, state)`` of a compliant fragment, or ``_REJECTED``.

        The fragment's children are best entries of their blocks, hence
        already constraint-compliant on every subtree — so the memoised
        evaluation of the shared core applies directly.
        """
        return self.core.evaluator.evaluate(fragment)

    # -- Algorithm 2 -----------------------------------------------------------------

    def _probe_block(self, block_id: int, probes, satisfied, queue, in_queue, parents, probed) -> None:
        """Re-evaluate every feasible probe of a block against current bests.

        Updates the block's best entry when a strictly better compliant
        fragment exists and emits the corresponding worklist event
        (newly-satisfied or key-improved) to the block's registered parents.
        """
        candidate_bags = self.index.candidate_bags
        best_fragment = self._best_fragment
        best_key = self._best_key
        budget = self.budget
        current_key = best_key[block_id]
        current_fragment = best_fragment[block_id]
        changed = False
        # try/finally: a BudgetExceeded (or Ctrl-C) mid-scan must not lose
        # a strictly better fragment already found in this round — committing
        # it is what makes the exhausted solver's answer its true best-so-far.
        try:
            for cand_id, live_subs in probes[block_id]:
                if budget is not None:
                    budget.tick()
                ok = True
                for sub in live_subs:
                    if not satisfied[sub]:
                        ok = False
                        break
                if not ok:
                    continue
                fragment = make_fragment(
                    candidate_bags[cand_id],
                    [best_fragment[sub] for sub in live_subs],
                )
                if current_fragment is not None and fragment == current_fragment:
                    continue
                evaluation = self._evaluate_fragment(fragment)
                if evaluation is _REJECTED:
                    continue
                key, state = evaluation
                if current_fragment is None or key < current_key:
                    current_key, current_fragment = key, fragment
                    self._best_state[block_id] = state
                    changed = True
        finally:
            if changed:
                best_key[block_id] = current_key
                best_fragment[block_id] = current_fragment
                satisfied[block_id] = 1
                # Event: this block was newly satisfied or its key improved —
                # either way every parent whose probes use it as a sub must be
                # re-examined (parents not yet reached by the bottom-up sweep
                # will see the fresh state on their first probe).
                for parent in parents.get(block_id, ()):
                    if probed[parent] and not in_queue[parent]:
                        in_queue[parent] = 1
                        queue.append(parent)

    def _run(self) -> None:
        if self._solved:
            return
        index = self.index
        budget = self.budget
        block_count = index.block_count()
        component_masks = index.mask_arrays()[1]
        order = index.topological_order_ids()

        satisfied = bytearray(block_count)
        # Published up front: on budget exhaustion the partially-filled
        # arrays ARE the anytime answer (per-block bests found so far).
        self._satisfied = satisfied
        self._best_key = [None] * block_count
        self._best_fragment = [None] * block_count
        self._best_state = [None] * block_count
        for block_id in range(block_count):
            if not component_masks[block_id]:
                # Trivially satisfied: no component, no node, no fragment.
                satisfied[block_id] = 1

        try:
            # Static probe tables: feasible candidates per block and the
            # reverse sub-block -> dependent-blocks map routing worklist
            # events (governed: can exhaust the budget before any probe).
            probes, parents = self.core.probe_tables()

            queue: deque = deque()
            in_queue = bytearray(block_count)
            probed = bytearray(block_count)
            # Bottom-up sweep in topological order: sub-blocks precede the
            # blocks that can use them, so most blocks settle on their first
            # probe and the worklist only carries the residual events.
            for block_id in order:
                if component_masks[block_id]:
                    self._probe_block(
                        block_id, probes, satisfied, queue, in_queue, parents, probed
                    )
                probed[block_id] = 1
            while queue:
                block_id = queue.popleft()
                in_queue[block_id] = 0
                self._probe_block(
                    block_id, probes, satisfied, queue, in_queue, parents, probed
                )
        except BudgetExceeded:
            pass  # anytime: keep the per-block bests found so far
        except KeyboardInterrupt:
            if budget is None:
                raise
            budget.mark_interrupted()
        self._outcome = budget.outcome() if budget is not None else completed_outcome()
        self._solved = True

    # -- public API ----------------------------------------------------------------------

    def _trivial_decomposition(self) -> Optional[TreeDecomposition]:
        """The vertex-less hypergraph's single-empty-bag CTD, if compliant."""
        return self.core.trivial_decomposition()

    def decide(self) -> bool:
        """``True`` iff a constraint-compliant CompNF CTD exists."""
        self._run()
        root_id = self.index.block_id(self.index.root_block)
        assert root_id is not None and self._satisfied is not None
        if not self._satisfied[root_id]:
            return False
        # A satisfied root block with a component always carries a real
        # basis fragment; the vertex-less hypergraph's root block (∅, ∅) is
        # trivially satisfied and accepts iff the single-empty-bag
        # decomposition is compliant.
        if self._best_fragment[root_id] is None:
            return self._trivial_decomposition() is not None
        return True

    def solve(self, budget: Optional[Budget] = None) -> Optional[TreeDecomposition]:
        """Return the ≤-minimal constraint-compliant CTD, or ``None``.

        With an exhausted ``budget`` this degrades to the *best CTD found
        so far* (any returned decomposition is always compliant and valid;
        only its optimality and a ``None`` answer become inconclusive) —
        check :attr:`outcome` to tell the cases apart.
        """
        self._set_budget(budget)
        self._run()
        root_id = self.index.block_id(self.index.root_block)
        if not self._satisfied[root_id]:
            return None
        fragment = self._best_fragment[root_id]
        if fragment is None:
            return self._trivial_decomposition()
        # Compliant by construction: every accepted fragment passed ``holds``
        # on itself and is built from accepted (hence compliant) children,
        # which is exactly ``holds_recursively`` unrolled.
        return self._materialise(fragment)

    def solve_with_outcome(
        self, budget: Optional[Budget] = None
    ) -> Tuple[Optional[TreeDecomposition], SolveOutcome]:
        """``(best decomposition or None, outcome)`` — the governed entry point."""
        decomposition = self.solve(budget=budget)
        return decomposition, self.outcome

    @property
    def outcome(self) -> SolveOutcome:
        """How the fixpoint ended; ``complete`` unless a budget cut it short."""
        self._run()
        assert self._outcome is not None
        return self._outcome

    def optimal_key(self):
        """The preference key of the optimal compliant CTD (``None`` if infeasible)."""
        self._run()
        root_id = self.index.block_id(self.index.root_block)
        if not self._satisfied[root_id]:
            return None
        if self._best_fragment[root_id] is None:
            decomposition = self._trivial_decomposition()
            return None if decomposition is None else self.preference.key(decomposition)
        return self._best_key[root_id]

    def satisfied_blocks(self) -> List[Block]:
        """The blocks satisfied by a compliant partial decomposition."""
        self._run()
        return [
            self.index.block_at(block_id)
            for block_id in range(self.index.block_count())
            if self._satisfied[block_id]
        ]

    def basis_of(self, block: Block) -> Optional[Bag]:
        """The best basis bag of a block (``∅`` for trivially satisfied blocks)."""
        self._run()
        block_id = self.index.block_id(block)
        if block_id is None or not self._satisfied[block_id]:
            return None
        fragment = self._best_fragment[block_id]
        return fragment[0] if fragment is not None else frozenset()

    def partial_decomposition(self, block: Block) -> Optional[TreeDecomposition]:
        """``Decomp(S, C, X)`` for the block's best basis, or ``None``.

        The block head (the parent's bag) is not included: subtree
        constraints and preferences are defined over the partial
        decompositions induced by subtrees, and the parent's own bag is
        accounted for when the parent's block is processed.
        """
        self._run()
        block_id = self.index.block_id(block)
        if block_id is None or not self._satisfied[block_id]:
            return None
        fragment = self._best_fragment[block_id]
        if fragment is None:
            return None
        return self._materialise(fragment)


def constrained_candidate_td(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[FrozenSet[Vertex]],
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    budget: Optional[Budget] = None,
    shards: int = 1,
    pool=None,
) -> Optional[TreeDecomposition]:
    """Solve the ``(𝒞, ≤)``-CandidateTD problem (Algorithm 2)."""
    solver = ConstrainedCTDSolver(
        hypergraph,
        candidate_bags,
        constraint,
        preference,
        budget=budget,
        shards=shards,
        pool=pool,
    )
    return solver.solve()
