"""Algorithm 2: constrained and preference-optimised candidate tree decompositions.

This is the paper's ``(𝒞, ≤)-CandidateTD`` solver: instead of merely checking
whether *some* basis satisfies a block, it keeps, for every block, the basis
whose induced partial decomposition ``Decomp(S, C, X)`` satisfies the subtree
constraint ``𝒞`` and is minimal with respect to the preference order ``≤``.
For tractable, preference-complete pairs ``(𝒞, ≤)`` the algorithm finds a
globally minimal constrained CTD in polynomial time (Theorem 10).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode
from repro.core.blocks import Bag, Block, BlockIndex
from repro.core.constraints import NoConstraint, SubtreeConstraint
from repro.core.preferences import NoPreference, Preference


class ConstrainedCTDSolver:
    """Dynamic program over blocks keeping the ≤-minimal compliant decomposition."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        constraint: Optional[SubtreeConstraint] = None,
        preference: Optional[Preference] = None,
    ):
        self.hypergraph = hypergraph
        self.constraint = constraint if constraint is not None else NoConstraint()
        self.preference = preference if preference is not None else NoPreference()
        filtered = self.constraint.filter_bags(
            {frozenset(bag) for bag in candidate_bags if bag}
        )
        self.index = BlockIndex(hypergraph, filtered)
        self._basis: Dict[Block, Optional[Bag]] = {}
        self._satisfied: Dict[Block, bool] = {}
        self._solved = False

    # -- partial decompositions ------------------------------------------------

    def _attach_block(self, tree: RootedTree, parent: TreeNode, block: Block) -> None:
        if not block.component:
            return
        basis = self._basis[block]
        if basis is None:
            raise ValueError(f"block {block} is not satisfied")
        node = tree.new_node(parent, bag=basis)
        for sub in self.index.sub_blocks(basis, block):
            if sub.component:
                self._attach_block(tree, node, sub)

    def partial_decomposition(self, block: Block, basis: Bag) -> TreeDecomposition:
        """``Decomp(S, C, X)`` viewed as the subtree rooted at the basis node.

        The decomposition is assembled from the current bases of the
        sub-blocks of ``(S, C)`` w.r.t. ``X``.  The block head (the parent's
        bag) is not included: subtree constraints and preferences are defined
        over the partial decompositions induced by subtrees, and the parent's
        own bag is accounted for when the parent's block is processed.
        """
        tree = RootedTree()
        node = tree.new_node(None, bag=basis)
        for sub in self.index.sub_blocks(basis, block):
            if sub.component:
                self._attach_block(tree, node, sub)
        return TreeDecomposition(self.hypergraph, tree)

    def _current_decomposition(self, block: Block) -> Optional[TreeDecomposition]:
        basis = self._basis.get(block)
        if basis is None:
            return None
        return self.partial_decomposition(block, basis)

    # -- Algorithm 2 -----------------------------------------------------------------

    def _run(self) -> None:
        if self._solved:
            return
        blocks = self.index.topological_order()
        for block in blocks:
            trivially_satisfied = not block.component
            self._basis[block] = frozenset() if trivially_satisfied else None
            self._satisfied[block] = trivially_satisfied
        max_rounds = len(blocks) * max(1, len(self.index.candidate_bags)) + 10
        for _ in range(max_rounds):
            changed = False
            for block in blocks:
                if not block.component:
                    continue
                for candidate in self.index.candidate_bags:
                    if not self.index.is_basis(candidate, block, self._satisfied):
                        continue
                    new_decomposition = self.partial_decomposition(block, candidate)
                    if not self.constraint.holds_recursively(new_decomposition):
                        continue
                    current = self._current_decomposition(block)
                    if current is None or self.preference.is_strictly_better(
                        new_decomposition, current
                    ):
                        self._basis[block] = candidate
                        self._satisfied[block] = True
                        changed = True
            if not changed:
                break
        self._solved = True

    # -- public API ----------------------------------------------------------------------

    def decide(self) -> bool:
        """``True`` iff a constraint-compliant CompNF CTD exists."""
        return self.solve() is not None

    def solve(self) -> Optional[TreeDecomposition]:
        """Return the ≤-minimal constraint-compliant CTD, or ``None``."""
        self._run()
        root = self.index.root_block
        if not self._satisfied.get(root, False) or not self._basis.get(root):
            return None
        decomposition = self._build_full_decomposition()
        if not self.constraint.holds_recursively(decomposition):
            return None
        return decomposition

    def _build_full_decomposition(self) -> TreeDecomposition:
        root_block = self.index.root_block
        basis = self._basis[root_block]
        assert basis is not None
        tree = RootedTree()
        root_node = tree.new_node(None, bag=basis)
        for sub in self.index.sub_blocks(basis, root_block):
            if sub.component:
                self._attach_block(tree, root_node, sub)
        return TreeDecomposition(self.hypergraph, tree)


def constrained_candidate_td(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[FrozenSet[Vertex]],
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
) -> Optional[TreeDecomposition]:
    """Solve the ``(𝒞, ≤)``-CandidateTD problem (Algorithm 2)."""
    solver = ConstrainedCTDSolver(hypergraph, candidate_bags, constraint, preference)
    return solver.solve()
