"""Blocks and bases — the machinery behind the CandidateTD algorithms.

Following Section 3 of the paper: a *block* is a pair ``(S, C)`` of disjoint
vertex sets where ``C`` is a maximal set of [S]-connected vertices of ``H``
or ``C = ∅``; the block is *headed by* ``S``.  For blocks ``(X, Y)`` and
``(S, C)`` we have ``(X, Y) ≤ (S, C)`` iff ``X ∪ Y ⊆ S ∪ C`` and ``Y ⊆ C``.

A vertex set ``X ≠ S`` is a *basis* of ``(S, C)`` (w.r.t. the blocks headed
by ``X`` that are ≤ ``(S, C)``) if (1) those blocks together with ``X`` cover
``C``, (2) they cover every edge that intersects ``C``, and (3) each of them
is satisfied.

The index assigns every block a dense integer id and keeps its masks (head,
component, union, and the union of all edges touching the component) in
parallel arrays, so the block order and the basis test collapse to array
loads and int operations — no frozenset hashing on the hot path.  The
satisfaction-*independent* basis conditions (1) and (2) are evaluated once
per (candidate, block) pair and memoised (:meth:`BlockIndex.basis_sub_ids`),
leaving only condition (3) for the solvers' fixpoints.  The public API still
speaks :class:`Block` objects and frozensets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex

Bag = FrozenSet[Vertex]

_MISSING = object()


@dataclass(frozen=True)
class Block:
    """A block ``(S, C)``: head ``S`` and component ``C`` (possibly empty)."""

    head: Bag
    component: Bag

    @property
    def union(self) -> Bag:
        return self.head | self.component

    def leq(self, other: "Block") -> bool:
        """The block order: ``self ≤ other``."""
        return self.union <= other.union and self.component <= other.component

    def __repr__(self) -> str:
        head = ",".join(sorted(map(str, self.head))) or "∅"
        comp = ",".join(sorted(map(str, self.component))) or "∅"
        return f"Block(S={{{head}}}, C={{{comp}}})"


class BlockIndex:
    """All blocks headed by the candidate bags (plus the root block).

    The index materialises, for every head ``S ∈ 𝒮 ∪ {∅}``, the blocks
    ``(S, C)`` over the [S]-vertex-components of the hypergraph, and offers
    the basis test used by Algorithms 1 and 2.
    """

    def __init__(self, hypergraph: Hypergraph, candidate_bags: Iterable[Bag]):
        self.hypergraph = hypergraph
        bitsets = hypergraph.bitsets
        self._indexer = bitsets.indexer
        self.candidate_bags: List[Bag] = sorted(
            {frozenset(bag) for bag in candidate_bags if bag},
            key=lambda bag: (len(bag), sorted(map(str, bag))),
        )
        to_mask = self._indexer.to_mask
        self.candidate_masks: List[int] = [to_mask(bag) for bag in self.candidate_bags]
        self.candidate_bag_masks: Dict[Bag, int] = dict(
            zip(self.candidate_bags, self.candidate_masks)
        )
        # Dense block storage: id -> Block plus parallel mask arrays.
        self._block_list: List[Block] = []
        self._block_id: Dict[Block, int] = {}
        self._head_masks: List[int] = []
        self._component_masks: List[int] = []
        self._union_masks: List[int] = []
        self._touching_masks: List[int] = []
        # head mask -> ids of the blocks headed by that vertex set.
        self._head_to_block_ids: Dict[int, List[int]] = {}
        self._blocks_by_head: Dict[Bag, List[Block]] = {}

        edge_masks = bitsets.edge_masks
        to_frozenset = self._indexer.to_frozenset
        empty: Bag = frozenset()
        heads = list(zip(self.candidate_bags, self.candidate_masks)) + [(empty, 0)]
        for head, head_mask in heads:
            blocks = [self._register(Block(head, empty), head_mask, 0, edge_masks)]
            for component_mask in bitsets.components(head_mask):
                blocks.append(
                    self._register(
                        Block(head, to_frozenset(component_mask)),
                        head_mask,
                        component_mask,
                        edge_masks,
                    )
                )
            self._blocks_by_head[head] = blocks
        self.root_block = Block(empty, frozenset(hypergraph.vertices))
        if self.root_block not in self._block_id:
            # Disconnected hypergraph: register the full-vertex-set block
            # explicitly so the accept test of Algorithm 1 still applies.
            self._register(self.root_block, 0, bitsets.universe, edge_masks)
            self._blocks_by_head[empty].append(self.root_block)
        # (candidate mask, block id) -> sub-block ids if conditions 1+2 hold.
        self._basis_subs_cache: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}
        # block id -> statically feasible (candidate id, live sub ids) probes.
        self._probe_cache: Dict[int, Tuple[Tuple[int, Tuple[int, ...]], ...]] = {}

    def _register(
        self, block: Block, head_mask: int, component_mask: int, edge_masks
    ) -> Block:
        touching = 0
        if component_mask:
            for edge_mask in edge_masks:
                if edge_mask & component_mask:
                    touching |= edge_mask
        block_id = len(self._block_list)
        self._block_list.append(block)
        self._block_id[block] = block_id
        self._head_masks.append(head_mask)
        self._component_masks.append(component_mask)
        self._union_masks.append(head_mask | component_mask)
        self._touching_masks.append(touching)
        self._head_to_block_ids.setdefault(head_mask, []).append(block_id)
        return block

    # -- accessors ------------------------------------------------------------

    def blocks(self) -> List[Block]:
        """All blocks, in no particular order."""
        return list(self._block_list)

    def block_count(self) -> int:
        return len(self._block_list)

    def block_at(self, block_id: int) -> Block:
        """The block with the given dense id."""
        return self._block_list[block_id]

    def block_id(self, block: Block) -> Optional[int]:
        """The dense id of a registered block (``None`` if unregistered)."""
        return self._block_id.get(block)

    def blocks_headed_by(self, head: Bag) -> List[Block]:
        return list(self._blocks_by_head.get(frozenset(head), []))

    def mask_arrays(self) -> Tuple[List[int], List[int], List[int], List[int]]:
        """``(head, component, union, touching)`` mask arrays, block-id indexed.

        The returned lists are the live internal arrays — callers must treat
        them as read-only.  They exist so the solvers' fixpoints can run on
        plain list indexing without per-call accessor overhead.
        """
        return (
            self._head_masks,
            self._component_masks,
            self._union_masks,
            self._touching_masks,
        )

    def blocks_of_head_mask(self, head_mask: int) -> Tuple[int, ...]:
        """Ids of the blocks headed by the vertex set encoded by ``head_mask``."""
        return tuple(self._head_to_block_ids.get(head_mask, ()))

    def block_masks(self, block_id: int) -> Tuple[int, int, int]:
        """``(head, component, union)`` masks of the identified block."""
        return (
            self._head_masks[block_id],
            self._component_masks[block_id],
            self._union_masks[block_id],
        )

    def candidate_mask(self, candidate: Bag) -> Optional[int]:
        """The mask of a candidate bag, or ``None`` if it leaves ``V(H)``."""
        mask = self.candidate_bag_masks.get(candidate)
        if mask is None:
            try:
                mask = self._indexer.to_mask(candidate)
            except KeyError:
                return None
        return mask

    def sub_blocks(self, head: Bag, parent: Block) -> List[Block]:
        """The blocks headed by ``head`` that are ≤ ``parent``."""
        head_mask = self.candidate_mask(frozenset(head))
        if head_mask is None:
            return []
        parent_id = self._block_id.get(parent)
        if parent_id is None:
            return [b for b in self.blocks_headed_by(head) if b.leq(parent)]
        parent_union = self._union_masks[parent_id]
        parent_component = self._component_masks[parent_id]
        block_list = self._block_list
        union_masks = self._union_masks
        component_masks = self._component_masks
        return [
            block_list[i]
            for i in self._head_to_block_ids.get(head_mask, ())
            if (union_masks[i] & ~parent_union) == 0
            and (component_masks[i] & ~parent_component) == 0
        ]

    def topological_order(self) -> List[Block]:
        """Blocks ordered so that every block follows all blocks it can depend on.

        A basis decomposition of ``(S, C)`` only uses blocks ``(X, Y)`` with
        ``X ∪ Y ⊆ S ∪ C`` and, when the unions coincide, ``Y ⊊ C``.  Sorting
        by ``(|S ∪ C|, |C|)`` therefore yields a valid bottom-up order.
        """
        return [self._block_list[i] for i in self.topological_order_ids()]

    def topological_order_ids(self) -> List[int]:
        """:meth:`topological_order` as dense block ids."""
        union_masks = self._union_masks
        component_masks = self._component_masks
        block_list = self._block_list
        return sorted(
            range(len(block_list)),
            key=lambda i: (
                union_masks[i].bit_count(),
                component_masks[i].bit_count(),
                sorted(map(str, block_list[i].head)),
            ),
        )

    # -- the basis test ----------------------------------------------------------

    def basis_sub_ids(
        self, candidate_mask: int, block_id: int
    ) -> Optional[Tuple[int, ...]]:
        """Sub-block ids witnessing conditions 1+2, or ``None`` if they fail.

        This is the satisfaction-independent part of the basis test: the
        result only depends on the hypergraph, the candidate (identified by
        its mask — masks and vertex sets are in bijection) and the block, so
        it is computed once and memoised.  ``candidate`` is a basis of
        ``block`` under a satisfaction map iff this is not ``None`` and every
        returned sub-block is satisfied (condition 3).
        """
        key = (candidate_mask, block_id)
        cached = self._basis_subs_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        result = self._compute_basis_sub_ids(candidate_mask, block_id)
        self._basis_subs_cache[key] = result
        return result

    def _compute_basis_sub_ids(
        self, candidate_mask: int, block_id: int
    ) -> Optional[Tuple[int, ...]]:
        if candidate_mask == self._head_masks[block_id]:
            return None
        block_union = self._union_masks[block_id]
        # A basis must live inside the block: the decomposition it induces is
        # a TD of H[S ∪ C], so bags outside S ∪ C would break connectedness
        # once the block is glued into a larger decomposition.
        if candidate_mask & ~block_union:
            return None
        block_component = self._component_masks[block_id]
        union_masks = self._union_masks
        component_masks = self._component_masks
        covered = candidate_mask
        subs = []
        for sub_id in self._head_to_block_ids.get(candidate_mask, ()):
            if (union_masks[sub_id] & ~block_union) == 0 and (
                component_masks[sub_id] & ~block_component
            ) == 0:
                subs.append(sub_id)
                covered |= component_masks[sub_id]
        # Condition 1: C ⊆ X ∪ ⋃Yi.
        if block_component & ~covered:
            return None
        # Condition 2: edges meeting C are inside X ∪ ⋃Yi (each such edge is
        # a subset of their union, so one subset test covers all of them).
        if self._touching_masks[block_id] & ~covered:
            return None
        return tuple(subs)

    def candidate_probes(self, block_id: int) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """The statically feasible ``(candidate id, live sub-block ids)`` pairs.

        A pair appears iff the satisfaction-independent basis conditions 1+2
        hold for the candidate and the block (:meth:`basis_sub_ids`), with the
        trivially satisfied empty-component sub-blocks dropped: only the
        remaining *live* subs gate condition 3 and contribute subtrees to the
        induced partial decomposition.  This is the probe set Algorithm 2's
        worklist re-examines and the lazy enumerator builds its option
        streams over (via :meth:`repro.core.options.SolverCore.probe_tables`),
        so it is memoised per block.
        """
        cached = self._probe_cache.get(block_id)
        if cached is not None:
            return cached
        not_union = ~self._union_masks[block_id]
        component_masks = self._component_masks
        probes = []
        for cand_id, candidate_mask in enumerate(self.candidate_masks):
            if candidate_mask & not_union:
                continue
            subs = self.basis_sub_ids(candidate_mask, block_id)
            if subs is None:
                continue
            probes.append(
                (cand_id, tuple(s for s in subs if component_masks[s]))
            )
        result = tuple(probes)
        self._probe_cache[block_id] = result
        return result

    def is_basis(
        self,
        candidate: Bag,
        block: Block,
        satisfied: Dict[Block, bool],
    ) -> bool:
        """Is ``candidate`` a basis of ``block`` given the satisfaction map?

        ``satisfied`` maps blocks to whether a (constraint-compliant)
        decomposition witnessing their satisfaction is known.
        """
        candidate_mask = self.candidate_mask(frozenset(candidate))
        if candidate_mask is None:
            return False
        block_id = self._block_id.get(block)
        if block_id is None:
            return self._is_basis_unregistered(candidate_mask, block, satisfied)
        sub_ids = self.basis_sub_ids(candidate_mask, block_id)
        if sub_ids is None:
            return False
        # Condition 3: every sub-block is satisfied.
        block_list = self._block_list
        return all(satisfied.get(block_list[i], False) for i in sub_ids)

    def _is_basis_unregistered(
        self, candidate_mask: int, block: Block, satisfied: Dict[Block, bool]
    ) -> bool:
        """Basis test against an ad-hoc block that is not in the index."""
        head_mask = self._indexer.to_mask_clipped(block.head)
        component_mask = self._indexer.to_mask_clipped(block.component)
        union_mask = head_mask | component_mask
        if candidate_mask == head_mask or candidate_mask & ~union_mask:
            return False
        union_masks = self._union_masks
        component_masks = self._component_masks
        covered = candidate_mask
        subs = []
        for sub_id in self._head_to_block_ids.get(candidate_mask, ()):
            if (union_masks[sub_id] & ~union_mask) == 0 and (
                component_masks[sub_id] & ~component_mask
            ) == 0:
                subs.append(sub_id)
                covered |= component_masks[sub_id]
        if component_mask & ~covered:
            return False
        touching = 0
        for edge_mask in self.hypergraph.bitsets.edge_masks:
            if edge_mask & component_mask:
                touching |= edge_mask
        if touching & ~covered:
            return False
        block_list = self._block_list
        return all(satisfied.get(block_list[i], False) for i in subs)
