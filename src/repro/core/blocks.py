"""Blocks and bases — the machinery behind the CandidateTD algorithms.

Following Section 3 of the paper: a *block* is a pair ``(S, C)`` of disjoint
vertex sets where ``C`` is a maximal set of [S]-connected vertices of ``H``
or ``C = ∅``; the block is *headed by* ``S``.  For blocks ``(X, Y)`` and
``(S, C)`` we have ``(X, Y) ≤ (S, C)`` iff ``X ∪ Y ⊆ S ∪ C`` and ``Y ⊆ C``.

A vertex set ``X ≠ S`` is a *basis* of ``(S, C)`` (w.r.t. the blocks headed
by ``X`` that are ≤ ``(S, C)``) if (1) those blocks together with ``X`` cover
``C``, (2) they cover every edge that intersects ``C``, and (3) each of them
is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.hypergraph.components import vertex_components

Bag = FrozenSet[Vertex]


@dataclass(frozen=True)
class Block:
    """A block ``(S, C)``: head ``S`` and component ``C`` (possibly empty)."""

    head: Bag
    component: Bag

    @property
    def union(self) -> Bag:
        return self.head | self.component

    def leq(self, other: "Block") -> bool:
        """The block order: ``self ≤ other``."""
        return self.union <= other.union and self.component <= other.component

    def __repr__(self) -> str:
        head = ",".join(sorted(map(str, self.head))) or "∅"
        comp = ",".join(sorted(map(str, self.component))) or "∅"
        return f"Block(S={{{head}}}, C={{{comp}}})"


class BlockIndex:
    """All blocks headed by the candidate bags (plus the root block).

    The index materialises, for every head ``S ∈ 𝒮 ∪ {∅}``, the blocks
    ``(S, C)`` over the [S]-vertex-components of the hypergraph, and offers
    the basis test used by Algorithms 1 and 2.
    """

    def __init__(self, hypergraph: Hypergraph, candidate_bags: Iterable[Bag]):
        self.hypergraph = hypergraph
        self.candidate_bags: List[Bag] = sorted(
            {frozenset(bag) for bag in candidate_bags if bag},
            key=lambda bag: (len(bag), sorted(map(str, bag))),
        )
        self._blocks_by_head: Dict[Bag, List[Block]] = {}
        self._all_blocks: List[Block] = []
        empty: Bag = frozenset()
        for head in self.candidate_bags + [empty]:
            blocks = [Block(head, frozenset())]
            for component in vertex_components(hypergraph, head):
                blocks.append(Block(head, component))
            self._blocks_by_head[head] = blocks
            self._all_blocks.extend(blocks)
        self.root_block = Block(empty, frozenset(hypergraph.vertices))
        if self.root_block not in self._blocks_by_head[empty]:
            # Disconnected hypergraph: register the full-vertex-set block
            # explicitly so the accept test of Algorithm 1 still applies.
            self._blocks_by_head[empty].append(self.root_block)
            self._all_blocks.append(self.root_block)

    # -- accessors ------------------------------------------------------------

    def blocks(self) -> List[Block]:
        """All blocks, in no particular order."""
        return list(self._all_blocks)

    def blocks_headed_by(self, head: Bag) -> List[Block]:
        return list(self._blocks_by_head.get(frozenset(head), []))

    def sub_blocks(self, head: Bag, parent: Block) -> List[Block]:
        """The blocks headed by ``head`` that are ≤ ``parent``."""
        return [b for b in self.blocks_headed_by(head) if b.leq(parent)]

    def topological_order(self) -> List[Block]:
        """Blocks ordered so that every block follows all blocks it can depend on.

        A basis decomposition of ``(S, C)`` only uses blocks ``(X, Y)`` with
        ``X ∪ Y ⊆ S ∪ C`` and, when the unions coincide, ``Y ⊊ C``.  Sorting
        by ``(|S ∪ C|, |C|)`` therefore yields a valid bottom-up order.
        """
        return sorted(
            self._all_blocks,
            key=lambda b: (len(b.union), len(b.component), sorted(map(str, b.head))),
        )

    # -- the basis test ----------------------------------------------------------

    def is_basis(
        self,
        candidate: Bag,
        block: Block,
        satisfied: Dict[Block, bool],
    ) -> bool:
        """Is ``candidate`` a basis of ``block`` given the satisfaction map?

        ``satisfied`` maps blocks to whether a (constraint-compliant)
        decomposition witnessing their satisfaction is known.
        """
        if candidate == block.head:
            return False
        # A basis must live inside the block: the decomposition it induces is
        # a TD of H[S ∪ C], so bags outside S ∪ C would break connectedness
        # once the block is glued into a larger decomposition.
        if not candidate <= block.union:
            return False
        subs = self.sub_blocks(candidate, block)
        covered = set(candidate)
        for sub in subs:
            covered.update(sub.component)
        # Condition 1: C ⊆ X ∪ ⋃Yi.
        if not block.component <= covered:
            return False
        # Condition 2: edges meeting C are inside X ∪ ⋃Yi.
        for edge in self.hypergraph.edges:
            if edge.vertices & block.component and not edge.vertices <= covered:
                return False
        # Condition 3: every sub-block is satisfied.
        return all(satisfied.get(sub, False) for sub in subs)
