"""Algorithm 1: CompNF Candidate Tree Decompositions.

Given a hypergraph ``H`` and a set ``𝒮`` of candidate bags, decide whether a
tree decomposition of ``H`` in component normal form exists all of whose bags
belong to ``𝒮`` and, if so, construct one.

The solver implements the paper's Algorithm 1 fixpoint incrementally instead
of round-robin over the full (block × candidate) cross product:

* candidate bags are indexed by the block unions they fit inside
  (``X ⊆ S ∪ C`` is a necessary condition for ``X`` to be a basis of
  ``(S, C)``), so only feasible (candidate, block) pairs are ever probed;
* the satisfaction-independent basis conditions are evaluated inline,
  at most once per pair: the decide-only fixpoint stops at a block's
  *first* basis, so — unlike Algorithm 2 and the ranked enumerator, which
  need every block's *complete* probe set and share the memoised
  :meth:`repro.core.blocks.BlockIndex.candidate_probes` tables through
  :meth:`repro.core.options.SolverCore.probe_tables` — materialising full
  probe tables here would only add overhead;
* a worklist keyed on newly-satisfied blocks drives re-probing: a block
  ``(S, C)`` can only become satisfiable when one of the sub-blocks of some
  candidate becomes satisfied, and those sub-blocks are exactly the blocks
  headed by that candidate, so each satisfaction event re-probes just the
  pairs whose candidate equals the event block's head.

Construction (constraint-filtered candidate set, block index, the trivial
decomposition of the vertex-less hypergraph) is shared with the other two
solvers via :class:`repro.core.options.SolverCore`.

The result (satisfied blocks and the accept decision) is identical to the
seed's round-robin fixpoint, kept as
:func:`repro.core.reference.reference_candidate_td_decide`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode
from repro.core.blocks import Bag, Block
from repro.core.options import SolverCore
from repro.runtime.budget import Budget, BudgetExceeded, SolveOutcome, completed_outcome


class CandidateTDSolver:
    """Decides the CandidateTD problem and extracts a witnessing CTD.

    With a :class:`~repro.runtime.Budget` the fixpoint is governed: one
    tick per (candidate, block) probe.  On exhaustion (or Ctrl-C under a
    budget) the solver keeps the satisfied blocks found so far — every one
    of them is genuinely witnessed, so ``decide() is True`` remains sound,
    while ``False`` becomes inconclusive; :attr:`outcome` reports which.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        budget: Optional[Budget] = None,
        shards: int = 1,
        pool=None,
    ):
        self.hypergraph = hypergraph
        self.budget = budget
        self.core = SolverCore(
            hypergraph, candidate_bags, budget=budget, shards=shards, pool=pool
        )
        self.index = self.core.index
        self._basis: Dict[Block, Optional[Bag]] = {}
        self._satisfied: Dict[Block, bool] = {}
        self._solved = False
        self._outcome: Optional[SolveOutcome] = None

    # -- Algorithm 1 -------------------------------------------------------------

    def _fixpoint(self, satisfied: bytearray, basis_cand: List[Optional[int]]) -> None:
        """The governed fixpoint loops; mutates ``satisfied``/``basis_cand``.

        Raises :class:`BudgetExceeded` mid-loop when the budget exhausts;
        the arrays then hold a valid partial fixpoint (everything marked
        satisfied is witnessed) for the caller's anytime boundary.
        """
        index = self.index
        budget = self.budget
        # Probe ticks are flushed in batches: the per-probe cost is one
        # local increment, and flushing at most ``check_interval`` units per
        # tick keeps the deadline's amortization window intact.
        flush_at = 0 if budget is None else min(256, budget.check_interval)
        unflushed = 0
        order = index.topological_order_ids()
        head_masks, component_masks, union_masks, touching_masks = index.mask_arrays()
        candidate_masks = index.candidate_masks
        # Per candidate, the ids of the blocks it heads (its potential
        # sub-blocks): candidate bags are indexed by the vertex sets they
        # fit inside via the mask subset pre-filter below.
        candidate_sub_ids = [
            index.blocks_of_head_mask(mask) for mask in candidate_masks
        ]
        queue: deque = deque()
        # (block id, candidate id, sub ids) triples whose static basis
        # conditions hold but which wait on the keyed sub-block's
        # satisfaction (condition 3).
        waiters: Dict[int, List] = {}

        # Bottom-up pass: probe each block's fitting candidates until one is
        # a basis; register the statically-feasible failures as waiters.
        # The static conditions are evaluated inline (cf.
        # BlockIndex.basis_sub_ids) — the scan stops at the first basis and
        # each pair is visited at most once, so the complete memoised probe
        # tables of SolverCore.probe_tables would only add overhead here.
        for block_id in order:
            if satisfied[block_id]:
                continue
            if budget is not None:
                budget.tick()
            block_union = union_masks[block_id]
            block_component = component_masks[block_id]
            block_head = head_masks[block_id]
            block_touching = touching_masks[block_id]
            not_union = ~block_union
            for cand_id, candidate_mask in enumerate(candidate_masks):
                if candidate_mask & not_union or candidate_mask == block_head:
                    continue
                # One work unit per probe attempt: candidates rejected by
                # the one-comparison subset prefilter above are free.
                if budget is not None:
                    unflushed += 1
                    if unflushed >= flush_at:
                        budget.tick(unflushed)
                        unflushed = 0
                covered = candidate_mask
                subs = []
                for sub_id in candidate_sub_ids[cand_id]:
                    if (union_masks[sub_id] & not_union) == 0 and (
                        component_masks[sub_id] & ~block_component
                    ) == 0:
                        subs.append(sub_id)
                        covered |= component_masks[sub_id]
                if block_component & ~covered or block_touching & ~covered:
                    continue
                pending = [s for s in subs if not satisfied[s]]
                if not pending:
                    basis_cand[block_id] = cand_id
                    satisfied[block_id] = 1
                    queue.append(block_id)
                    break
                for s in pending:
                    waiters.setdefault(s, []).append((block_id, cand_id, subs))
        if budget is not None and unflushed:
            budget.tick(unflushed)
            unflushed = 0
        # Worklist: once a sub-block is satisfied, re-probe exactly the pairs
        # that were waiting on it.  A pair stays registered on its other
        # pending sub-blocks, so its last-satisfied dependency re-probes it.
        while queue:
            event = queue.popleft()
            for block_id, cand_id, subs in waiters.pop(event, ()):
                if budget is not None:
                    budget.tick()
                if satisfied[block_id]:
                    continue
                if all(satisfied[s] for s in subs):
                    basis_cand[block_id] = cand_id
                    satisfied[block_id] = 1
                    queue.append(block_id)

    def _run_fixpoint(self) -> None:
        if self._solved:
            return
        index = self.index
        block_count = index.block_count()
        component_masks = index.mask_arrays()[1]
        satisfied = bytearray(block_count)
        basis_cand: List[Optional[int]] = [None] * block_count
        for block_id in range(block_count):
            if not component_masks[block_id]:
                satisfied[block_id] = 1
        budget = self.budget
        try:
            self._fixpoint(satisfied, basis_cand)
        except BudgetExceeded:
            pass  # anytime: keep the partial fixpoint, report via outcome
        except KeyboardInterrupt:
            if budget is None:
                raise
            budget.mark_interrupted()
        self._outcome = budget.outcome() if budget is not None else completed_outcome()
        # Materialise the id-space result into the Block-keyed public maps.
        candidate_bags = index.candidate_bags
        empty: Bag = frozenset()
        for block_id in range(block_count):
            block = index.block_at(block_id)
            if satisfied[block_id]:
                cand_id = basis_cand[block_id]
                self._basis[block] = (
                    empty if cand_id is None else candidate_bags[cand_id]
                )
                self._satisfied[block] = True
            else:
                self._basis[block] = None
                self._satisfied[block] = False
        self._solved = True

    # -- public API ----------------------------------------------------------------

    def decide(self) -> bool:
        """``True`` iff a CompNF CTD for the candidate bags exists."""
        self._run_fixpoint()
        root = self.index.root_block
        # A satisfied root block with a component always has a real
        # (non-empty) basis; on the vertex-less hypergraph the root block is
        # (∅, ∅), trivially satisfied by the empty basis, and the trivial
        # single-empty-bag decomposition witnesses acceptance.
        return self._satisfied.get(root, False)

    def solve(self) -> Optional[TreeDecomposition]:
        """Return a CompNF CTD, or ``None`` if none exists.

        Under an exhausted budget a ``None`` is inconclusive — check
        :attr:`outcome` (a witnessing decomposition, when returned, is
        always a real CTD regardless of the budget).
        """
        if not self.decide():
            return None
        return self._build_decomposition()

    def solve_with_outcome(self) -> Tuple[Optional[TreeDecomposition], SolveOutcome]:
        """``(decomposition or None, outcome)`` — the governed entry point."""
        decomposition = self.solve()
        return decomposition, self.outcome

    @property
    def outcome(self) -> SolveOutcome:
        """How the fixpoint ended; ``complete`` unless a budget cut it short."""
        self._run_fixpoint()
        assert self._outcome is not None
        return self._outcome

    def satisfied_blocks(self) -> List[Block]:
        """The blocks that were satisfied by the fixpoint (for inspection)."""
        self._run_fixpoint()
        return [block for block, ok in self._satisfied.items() if ok]

    def basis_of(self, block: Block) -> Optional[Bag]:
        self._run_fixpoint()
        return self._basis.get(block)

    # -- decomposition extraction ------------------------------------------------------

    def _attach_block(
        self, tree: RootedTree, parent: TreeNode, block: Block
    ) -> None:
        """Attach the decomposition of ``block``'s component below ``parent``.

        ``parent`` carries the block's head as its bag; the block must be
        satisfied with a non-trivial basis.
        """
        if not block.component:
            return
        basis = self._basis[block]
        if basis is None:
            raise ValueError(f"block {block} is not satisfied")
        node = tree.new_node(parent, bag=basis)
        for sub in self.index.sub_blocks(basis, block):
            if sub.component:
                self._attach_block(tree, node, sub)

    def _build_decomposition(self) -> TreeDecomposition:
        root_block = self.index.root_block
        basis = self._basis[root_block]
        assert basis is not None
        if not root_block.component:
            # Vertex-less hypergraph: the trivial single-empty-bag CTD.
            trivial = self.core.trivial_decomposition()
            assert trivial is not None  # no constraint can reject it here
            return trivial
        tree = RootedTree()
        root_node = tree.new_node(None, bag=basis)
        for sub in self.index.sub_blocks(basis, root_block):
            if sub.component:
                self._attach_block(tree, root_node, sub)
        return TreeDecomposition(self.hypergraph, tree)


def candidate_td(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[FrozenSet[Vertex]],
    budget: Optional[Budget] = None,
    shards: int = 1,
    pool=None,
) -> Optional[TreeDecomposition]:
    """Solve the CandidateTD problem (Algorithm 1) and return a CTD or ``None``."""
    return CandidateTDSolver(
        hypergraph, candidate_bags, budget=budget, shards=shards, pool=pool
    ).solve()
