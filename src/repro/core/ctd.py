"""Algorithm 1: CompNF Candidate Tree Decompositions.

Given a hypergraph ``H`` and a set ``𝒮`` of candidate bags, decide whether a
tree decomposition of ``H`` in component normal form exists all of whose bags
belong to ``𝒮`` and, if so, construct one.

The solver follows the paper's Algorithm 1: it maintains, per block, a basis
(or "not yet satisfied"), and repeatedly tries to satisfy further blocks
until a fixpoint is reached.  Accept iff the root block ``(∅, V(H))`` is
satisfied through a non-empty basis; the corresponding decomposition is then
assembled recursively from the recorded bases.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode
from repro.core.blocks import Bag, Block, BlockIndex


class CandidateTDSolver:
    """Decides the CandidateTD problem and extracts a witnessing CTD."""

    def __init__(self, hypergraph: Hypergraph, candidate_bags: Iterable[Bag]):
        self.hypergraph = hypergraph
        self.index = BlockIndex(hypergraph, candidate_bags)
        self._basis: Dict[Block, Optional[Bag]] = {}
        self._satisfied: Dict[Block, bool] = {}
        self._solved = False

    # -- Algorithm 1 -------------------------------------------------------------

    def _run_fixpoint(self) -> None:
        if self._solved:
            return
        blocks = self.index.topological_order()
        for block in blocks:
            if not block.component:
                self._basis[block] = frozenset()
                self._satisfied[block] = True
            else:
                self._basis[block] = None
                self._satisfied[block] = False
        changed = True
        while changed:
            changed = False
            for block in blocks:
                if self._satisfied[block]:
                    continue
                for candidate in self.index.candidate_bags:
                    if self.index.is_basis(candidate, block, self._satisfied):
                        self._basis[block] = candidate
                        self._satisfied[block] = True
                        changed = True
                        break
        self._solved = True

    # -- public API ----------------------------------------------------------------

    def decide(self) -> bool:
        """``True`` iff a CompNF CTD for the candidate bags exists."""
        self._run_fixpoint()
        root = self.index.root_block
        return self._satisfied.get(root, False) and bool(self._basis.get(root))

    def solve(self) -> Optional[TreeDecomposition]:
        """Return a CompNF CTD, or ``None`` if none exists."""
        if not self.decide():
            return None
        return self._build_decomposition()

    def satisfied_blocks(self) -> List[Block]:
        """The blocks that were satisfied by the fixpoint (for inspection)."""
        self._run_fixpoint()
        return [block for block, ok in self._satisfied.items() if ok]

    def basis_of(self, block: Block) -> Optional[Bag]:
        self._run_fixpoint()
        return self._basis.get(block)

    # -- decomposition extraction ------------------------------------------------------

    def _attach_block(
        self, tree: RootedTree, parent: TreeNode, block: Block
    ) -> None:
        """Attach the decomposition of ``block``'s component below ``parent``.

        ``parent`` carries the block's head as its bag; the block must be
        satisfied with a non-trivial basis.
        """
        if not block.component:
            return
        basis = self._basis[block]
        if basis is None:
            raise ValueError(f"block {block} is not satisfied")
        node = tree.new_node(parent, bag=basis)
        for sub in self.index.sub_blocks(basis, block):
            if sub.component:
                self._attach_block(tree, node, sub)

    def _build_decomposition(self) -> TreeDecomposition:
        root_block = self.index.root_block
        basis = self._basis[root_block]
        assert basis is not None
        tree = RootedTree()
        root_node = tree.new_node(None, bag=basis)
        for sub in self.index.sub_blocks(basis, root_block):
            if sub.component:
                self._attach_block(tree, root_node, sub)
        return TreeDecomposition(self.hypergraph, tree)


def candidate_td(
    hypergraph: Hypergraph, candidate_bags: Iterable[FrozenSet[Vertex]]
) -> Optional[TreeDecomposition]:
    """Solve the CandidateTD problem (Algorithm 1) and return a CTD or ``None``."""
    return CandidateTDSolver(hypergraph, candidate_bags).solve()
