"""Edge covers of vertex sets.

The λ-labels of (G)HDs and the ConCov constraint both need edge covers:
collections of hyperedges whose union contains a given bag.  This module
provides greedy and exact minimum covers, enumeration of all covers up to a
size bound, and the connectedness test used by the ConCov constraint.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex


def _relevant_edges(hypergraph: Hypergraph, bag: FrozenSet[Vertex]) -> List[Edge]:
    """Edges that intersect the bag, largest intersection first."""
    edges = [e for e in hypergraph.edges if e.vertices & bag]
    edges.sort(key=lambda e: (-len(e.vertices & bag), e.name))
    return edges


def greedy_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex]
) -> Optional[List[Edge]]:
    """A greedy (not necessarily minimum) edge cover of ``bag``.

    Returns ``None`` if no cover exists (some bag vertex occurs in no edge).
    """
    remaining = set(bag)
    cover: List[Edge] = []
    while remaining:
        best = None
        best_gain = 0
        for edge in hypergraph.edges:
            gain = len(edge.vertices & remaining)
            if gain > best_gain:
                best, best_gain = edge, gain
        if best is None:
            return None
        cover.append(best)
        remaining -= best.vertices
    return cover


def minimum_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex], upper_bound: Optional[int] = None
) -> Optional[List[Edge]]:
    """An exact minimum edge cover of ``bag`` (branch and bound).

    ``upper_bound`` restricts the search to covers of at most that size and
    makes the call cheap when only small covers are of interest (e.g. when
    verifying that a candidate bag has a cover of size ≤ k).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return []
    edges = _relevant_edges(hypergraph, bag_set)
    coverable = set()
    for edge in edges:
        coverable.update(edge.vertices & bag_set)
    if coverable != bag_set:
        return None
    greedy = greedy_edge_cover(hypergraph, bag_set)
    best: Optional[List[Edge]] = greedy
    limit = len(greedy) if greedy is not None else len(edges)
    if upper_bound is not None:
        limit = min(limit, upper_bound)
        if best is not None and len(best) > upper_bound:
            best = None

    def search(remaining: FrozenSet[Vertex], chosen: List[Edge], start: int) -> None:
        nonlocal best, limit
        if not remaining:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
                limit = len(best)
            return
        if len(chosen) >= limit:
            return
        # Branch on an uncovered vertex with the fewest covering edges.
        pivot = min(
            remaining,
            key=lambda v: sum(1 for e in edges if v in e.vertices),
        )
        for edge in edges:
            if pivot in edge.vertices:
                chosen.append(edge)
                search(remaining - edge.vertices, chosen, start)
                chosen.pop()

    search(bag_set, [], 0)
    if best is not None and upper_bound is not None and len(best) > upper_bound:
        return None
    return best


def enumerate_covers(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> Iterator[Tuple[Edge, ...]]:
    """Enumerate the *minimal* edge covers of ``bag`` of size at most ``max_size``.

    A cover is minimal if no proper subset is also a cover.  Every cover of
    size ≤ ``max_size`` contains a minimal one, so minimal covers suffice for
    existence-style questions (ConCov asks for *some* connected cover; note
    that non-minimal covers are not enumerated, see
    :func:`has_connected_cover` for how connectivity is handled).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        yield ()
        return
    edges = _relevant_edges(hypergraph, bag_set)
    seen = set()

    def search(remaining: FrozenSet[Vertex], chosen: List[Edge]) -> Iterator[Tuple[Edge, ...]]:
        if not remaining:
            names = frozenset(e.name for e in chosen)
            if names not in seen:
                seen.add(names)
                yield tuple(chosen)
            return
        if len(chosen) >= max_size:
            return
        pivot = min(
            remaining,
            key=lambda v: sum(1 for e in edges if v in e.vertices),
        )
        for edge in edges:
            if pivot in edge.vertices and edge not in chosen:
                chosen.append(edge)
                yield from search(remaining - edge.vertices, chosen)
                chosen.pop()

    yield from search(bag_set, [])


def connected_edge_set(edges: Sequence[Edge]) -> bool:
    """``True`` iff the given edges form a connected subhypergraph.

    Connectivity is via shared vertices: the intersection graph of the edges
    must be connected.  The empty set and singletons are connected.
    """
    edge_list = list(edges)
    if len(edge_list) <= 1:
        return True
    visited = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for j, other in enumerate(edge_list):
            if j not in visited and edge_list[current].vertices & other.vertices:
                visited.add(j)
                frontier.append(j)
    return len(visited) == len(edge_list)


def has_connected_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> bool:
    """``True`` iff ``bag`` has an edge cover of size ≤ ``max_size`` whose
    edges form a connected subhypergraph (the ConCov property of Section 6).

    We enumerate minimal covers first and, for each disconnected minimal
    cover with spare budget, try to reconnect it by adding up to the
    remaining number of edges (a bridging search).  The empty bag is
    trivially covered.
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return True
    all_edges = list(hypergraph.edges)
    for cover in enumerate_covers(hypergraph, bag_set, max_size):
        if connected_edge_set(cover):
            return True
        budget = max_size - len(cover)
        if budget > 0 and _can_connect(list(cover), all_edges, budget):
            return True
    return False


def _can_connect(cover: List[Edge], all_edges: List[Edge], budget: int) -> bool:
    """Can the cover be made connected by adding at most ``budget`` edges?"""
    if connected_edge_set(cover):
        return True
    if budget == 0:
        return False
    chosen = set(e.name for e in cover)
    for edge in all_edges:
        if edge.name in chosen:
            continue
        if any(edge.vertices & c.vertices for c in cover):
            if _can_connect(cover + [edge], all_edges, budget - 1):
                return True
    return False


def connected_covers(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> List[Tuple[Edge, ...]]:
    """All minimal covers of ``bag`` of size ≤ ``max_size`` that are connected."""
    return [
        cover
        for cover in enumerate_covers(hypergraph, bag, max_size)
        if connected_edge_set(cover)
    ]
