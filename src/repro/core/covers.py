"""Edge covers of vertex sets.

The λ-labels of (G)HDs and the ConCov constraint both need edge covers:
collections of hyperedges whose union contains a given bag.  This module
provides greedy and exact minimum covers, enumeration of all covers up to a
size bound, and the connectedness test used by the ConCov constraint.

The searches run on int masks: per-call tables map each bag vertex to the
mask of relevant edges covering it, so pivot selection (fewest covering
edges first) and the branch step are bit scans instead of the seed's
per-pivot linear scans over edge frozensets.  Public signatures are
unchanged; the frozenset reference implementation lives in
:mod:`repro.core.reference`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.hypergraph.bitset import iter_bits
from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex


def _bag_mask(hypergraph: Hypergraph, bag: FrozenSet[Vertex]) -> Optional[int]:
    """The bag as a mask, or ``None`` if it contains unknown vertices."""
    indexer = hypergraph.bitsets.indexer
    mask = 0
    for vertex in bag:
        if vertex not in indexer:
            return None
        mask |= 1 << indexer.bit(vertex)
    return mask


class _CoverTables:
    """Per-bag search tables: relevant edges and vertex→covering-edges masks."""

    __slots__ = ("edges", "edge_masks", "coverable", "covering_edges", "counts")

    def __init__(self, hypergraph: Hypergraph, bag_mask: int):
        bitsets = hypergraph.bitsets
        relevant = [
            (edge, edge_mask & bag_mask, edge_mask)
            for edge, edge_mask in zip(hypergraph.edges, bitsets.edge_masks)
            if edge_mask & bag_mask
        ]
        # Largest intersection first, names break ties (the seed's order).
        relevant.sort(key=lambda item: (-item[1].bit_count(), item[0].name))
        self.edges: Tuple[Edge, ...] = tuple(item[0] for item in relevant)
        self.edge_masks: Tuple[int, ...] = tuple(item[1] for item in relevant)
        coverable = 0
        for mask in self.edge_masks:
            coverable |= mask
        self.coverable: int = coverable
        # covering_edges[b]: mask over *relevant edge positions* of the edges
        # containing the bag vertex at bit b; counts[b] = its popcount.
        covering: dict = {}
        for position, mask in enumerate(self.edge_masks):
            position_bit = 1 << position
            for b in iter_bits(mask):
                covering[b] = covering.get(b, 0) | position_bit
        self.covering_edges = covering
        self.counts = {b: m.bit_count() for b, m in covering.items()}

    def pivot(self, remaining: int) -> int:
        """The remaining vertex bit with the fewest covering edges."""
        counts = self.counts
        best_bit = -1
        best_count = None
        for b in iter_bits(remaining):
            count = counts.get(b, 0)
            if best_count is None or count < best_count:
                best_bit, best_count = b, count
        return best_bit


def greedy_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex]
) -> Optional[List[Edge]]:
    """A greedy (not necessarily minimum) edge cover of ``bag``.

    Returns ``None`` if no cover exists (some bag vertex occurs in no edge).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return []
    remaining = _bag_mask(hypergraph, bag_set)
    if remaining is None:
        return None
    bitsets = hypergraph.bitsets
    edges = hypergraph.edges
    edge_masks = bitsets.edge_masks
    cover: List[Edge] = []
    while remaining:
        best = -1
        best_gain = 0
        for i, mask in enumerate(edge_masks):
            gain = (mask & remaining).bit_count()
            if gain > best_gain:
                best, best_gain = i, gain
        if best < 0:
            return None
        cover.append(edges[best])
        remaining &= ~edge_masks[best]
    return cover


def minimum_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex], upper_bound: Optional[int] = None
) -> Optional[List[Edge]]:
    """An exact minimum edge cover of ``bag`` (branch and bound).

    ``upper_bound`` restricts the search to covers of at most that size and
    makes the call cheap when only small covers are of interest (e.g. when
    verifying that a candidate bag has a cover of size ≤ k).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return []
    bag_mask = _bag_mask(hypergraph, bag_set)
    if bag_mask is None:
        return None
    tables = _CoverTables(hypergraph, bag_mask)
    if tables.coverable != bag_mask:
        return None
    greedy = greedy_edge_cover(hypergraph, bag_set)
    best: Optional[List[int]] = None
    limit = len(tables.edges)
    if greedy is not None:
        positions = {edge.name: i for i, edge in enumerate(tables.edges)}
        best = [positions[edge.name] for edge in greedy]
        limit = len(best)
    if upper_bound is not None:
        limit = min(limit, upper_bound)
        if best is not None and len(best) > upper_bound:
            best = None

    edge_masks = tables.edge_masks
    covering = tables.covering_edges

    def search(remaining: int, chosen: List[int]) -> None:
        nonlocal best, limit
        if not remaining:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
                limit = len(best)
            return
        if len(chosen) >= limit:
            return
        pivot = tables.pivot(remaining)
        for position in iter_bits(covering[pivot]):
            chosen.append(position)
            search(remaining & ~edge_masks[position], chosen)
            chosen.pop()

    search(bag_mask, [])
    if best is None:
        return None
    if upper_bound is not None and len(best) > upper_bound:
        return None
    return [tables.edges[position] for position in best]


def enumerate_covers(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> Iterator[Tuple[Edge, ...]]:
    """Enumerate the *minimal* edge covers of ``bag`` of size at most ``max_size``.

    A cover is minimal if no proper subset is also a cover.  Every cover of
    size ≤ ``max_size`` contains a minimal one, so minimal covers suffice for
    existence-style questions (ConCov asks for *some* connected cover; note
    that non-minimal covers are not enumerated, see
    :func:`has_connected_cover` for how connectivity is handled).
    """
    bag_set = frozenset(bag)
    if not bag_set:
        yield ()
        return
    bag_mask = _bag_mask(hypergraph, bag_set)
    if bag_mask is None:
        return
    tables = _CoverTables(hypergraph, bag_mask)
    edge_masks = tables.edge_masks
    edges = tables.edges
    covering = tables.covering_edges
    seen = set()

    def search(remaining: int, chosen: List[int], chosen_mask: int) -> Iterator[Tuple[Edge, ...]]:
        if not remaining:
            key = chosen_mask
            if key not in seen:
                seen.add(key)
                yield tuple(edges[position] for position in chosen)
            return
        if len(chosen) >= max_size:
            return
        pivot = tables.pivot(remaining)
        for position in iter_bits(covering.get(pivot, 0) & ~chosen_mask):
            chosen.append(position)
            yield from search(
                remaining & ~edge_masks[position], chosen, chosen_mask | (1 << position)
            )
            chosen.pop()

    yield from search(bag_mask, [], 0)


def connected_edge_set(edges: Sequence[Edge]) -> bool:
    """``True`` iff the given edges form a connected subhypergraph.

    Connectivity is via shared vertices: the intersection graph of the edges
    must be connected.  The empty set and singletons are connected.
    """
    edge_list = list(edges)
    if len(edge_list) <= 1:
        return True
    vertex_sets = [edge.vertices for edge in edge_list]
    visited = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        current_vertices = vertex_sets[current]
        for j, other in enumerate(vertex_sets):
            if j not in visited and current_vertices & other:
                visited.add(j)
                frontier.append(j)
    return len(visited) == len(edge_list)


def has_connected_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> bool:
    """``True`` iff ``bag`` has an edge cover of size ≤ ``max_size`` whose
    edges form a connected subhypergraph (the ConCov property of Section 6).

    We enumerate minimal covers first and, for each disconnected minimal
    cover with spare budget, try to reconnect it by adding up to the
    remaining number of edges (a bridging search).  The empty bag is
    trivially covered.
    """
    bag_set = frozenset(bag)
    if not bag_set:
        return True
    all_edges = list(hypergraph.edges)
    for cover in enumerate_covers(hypergraph, bag_set, max_size):
        if connected_edge_set(cover):
            return True
        budget = max_size - len(cover)
        if budget > 0 and _can_connect(list(cover), all_edges, budget):
            return True
    return False


def _can_connect(cover: List[Edge], all_edges: List[Edge], budget: int) -> bool:
    """Can the cover be made connected by adding at most ``budget`` edges?"""
    if connected_edge_set(cover):
        return True
    if budget == 0:
        return False
    chosen = set(e.name for e in cover)
    for edge in all_edges:
        if edge.name in chosen:
            continue
        if any(edge.vertices & c.vertices for c in cover):
            if _can_connect(cover + [edge], all_edges, budget - 1):
                return True
    return False


def connected_covers(
    hypergraph: Hypergraph, bag: Iterable[Vertex], max_size: int
) -> List[Tuple[Edge, ...]]:
    """All minimal covers of ``bag`` of size ≤ ``max_size`` that are connected."""
    return [
        cover
        for cover in enumerate_covers(hypergraph, bag, max_size)
        if connected_edge_set(cover)
    ]
