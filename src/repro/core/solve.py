"""The one solve front door: ``SolveRequest`` → :func:`execute` → ``SolveResult``.

Every way of asking the solver stack for decompositions — the CLI verbs,
the experiment harness, the supervised batch runtime — used to build its
own parameter bundle and call into :mod:`repro.core.ctd`,
:mod:`repro.core.constrained`, :mod:`repro.core.enumerate` or
:mod:`repro.core.soft` directly.  This module replaces those bundles with
a single frozen :class:`SolveRequest`:

* ``mode`` — ``decide`` (Algorithm 1 existence + witness), ``optimal``
  (Algorithm 2, the single best CTD under the constraint/preference),
  ``enumerate`` (exact any-k ranked enumeration, ``limit`` results), or
  ``soft-width`` (search ``k = 1.. width`` for the least width with a CTD);
* ``constraint`` / ``preference`` — *names*, not objects (``"concov"``;
  ``"nodecount"``, ``"cardinalities"``, ``"estimates"``), so a request is
  a plain JSON-able value with a deterministic canonical serialisation
  (:meth:`SolveRequest.to_payload`) and a stable fingerprint
  (:meth:`SolveRequest.fingerprint`, same idiom as the batch ledger's
  ``task_fingerprint``);
* ``data_key`` — cost preferences depend on database *data*, not just the
  query shape; a request carrying one is only cacheable when the caller
  names the data (e.g. ``"tpcds:1:7:q_ds:cardinalities"``), because two
  different databases rank the same CTDs differently.

:func:`execute` routes a request to the right solver and — when a
:class:`~repro.core.cache.DecompositionCache` is available and the request
is shape-pure (or data-keyed) — consults the persistent cache first, keyed
by the hypergraph's canonical fingerprint
(:func:`repro.hypergraph.canonical.canonical_form`).  Cached entries store
bags as canonical vertex indices; a hit is mapped back through the
caller's own permutation and **re-certified** with
:func:`repro.core.certify.certify_ctd` before being served, so a poisoned,
stale or fingerprint-colliding entry is quarantined and re-solved, never
trusted.  Negative answers and budget-truncated (anytime) results are
never cached — the former has no cheap certificate, the latter is not the
full answer.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.hypergraph.hypergraph import Edge, Hypergraph
from repro.decompositions.td import TreeDecomposition
from repro.core.cache import DecompositionCache, resolve_cache
from repro.core.certify import (
    certify_ctd,
    decomposition_from_payload,
    decomposition_to_payload,
)
from repro.core.constraints import SubtreeConstraint
from repro.runtime.budget import Budget, SolveOutcome, completed_outcome

__all__ = [
    "MODES",
    "CONSTRAINTS",
    "PREFERENCES",
    "DATA_PREFERENCES",
    "SolveRequest",
    "SolveResult",
    "execute",
    "lookup",
    "serve_canonical_record",
    "constraint_object",
    "preference_object",
]

MODES = ("decide", "optimal", "enumerate", "soft-width")
CONSTRAINTS = (None, "concov")
PREFERENCES = (None, "nodecount", "cardinalities", "estimates")

#: Preferences whose ranking depends on database contents, not just the
#: hypergraph shape.  Requests carrying one need ``database``/``query`` at
#: execution time and a ``data_key`` to be cacheable.
DATA_PREFERENCES = frozenset({"cardinalities", "estimates"})

#: Request fields that do not change the answer, only how long the solver
#: may spend finding it — excluded from the fingerprint and the cache
#: kind, mirroring ``NON_SEMANTIC_TASK_KEYS`` in the batch ledger.
NON_SEMANTIC_FIELDS = ("deadline", "max_work", "label")

_CACHE_STATUS = ("hit", "miss", "stored", "uncacheable", "off")


def _vertex_sort_key(vertex) -> Tuple[str, str]:
    return (str(type(vertex)), str(vertex))


@dataclass(frozen=True)
class SolveRequest:
    """One immutable, serialisable description of a solve.

    ``width`` is the bag-cover bound ``k`` (for ``soft-width`` it is the
    *upper* search bound; ``None`` there means the number of edges).
    ``iterations`` selects the iterated hierarchy ``shw_i``.  ``deadline``
    and ``max_work`` are the resource caps a governed execution applies;
    they are non-semantic (two requests differing only in caps have the
    same fingerprint), as is the display ``label``.
    """

    hypergraph: Hypergraph
    mode: str = "decide"
    width: Optional[int] = None
    iterations: int = 0
    constraint: Optional[str] = None
    preference: Optional[str] = None
    limit: int = 1
    data_key: Optional[str] = None
    deadline: Optional[float] = None
    max_work: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.constraint not in CONSTRAINTS:
            raise ValueError(
                f"unknown constraint {self.constraint!r}; expected one of {CONSTRAINTS}"
            )
        if self.preference not in PREFERENCES:
            raise ValueError(
                f"unknown preference {self.preference!r}; expected one of {PREFERENCES}"
            )
        if self.mode == "soft-width":
            if self.width is not None and self.width < 1:
                raise ValueError("soft-width bound must be >= 1 when given")
        elif self.width is None or self.width < 1:
            raise ValueError(f"mode {self.mode!r} needs a width >= 1")
        if self.mode == "decide" and (self.constraint or self.preference):
            raise ValueError(
                "mode 'decide' is the plain Algorithm 1 path; use mode "
                "'optimal' for constraints/preferences"
            )
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")
        if self.limit < 1:
            raise ValueError("limit must be >= 1")

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The request as a plain JSON-able dict (the wire format)."""
        vertices = sorted(self.hypergraph.vertices, key=_vertex_sort_key)
        edges = {
            edge.name: sorted(edge.vertices, key=_vertex_sort_key)
            for edge in self.hypergraph.edges
        }
        return {
            "hypergraph": {"vertices": vertices, "edges": edges},
            "mode": self.mode,
            "width": self.width,
            "iterations": self.iterations,
            "constraint": self.constraint,
            "preference": self.preference,
            "limit": self.limit,
            "data_key": self.data_key,
            "deadline": self.deadline,
            "max_work": self.max_work,
            "label": self.label,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "SolveRequest":
        """Reconstruct a request from its wire payload.

        Raises :class:`ValueError` on malformed payloads — a garbage task
        spec must become a structured failure, never an arbitrary crash.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"solve request payload is not a dict: {type(payload).__name__}"
            )
        raw = payload.get("hypergraph")
        if not isinstance(raw, dict) or not isinstance(raw.get("edges"), dict):
            raise ValueError("solve request payload misses its hypergraph")
        edges = [
            Edge(str(name), frozenset(vertices))
            for name, vertices in sorted(raw["edges"].items())
        ]
        try:
            hypergraph = Hypergraph(edges, vertices=raw.get("vertices"))
            return cls(
                hypergraph=hypergraph,
                mode=str(payload.get("mode", "decide")),
                width=payload.get("width"),
                iterations=int(payload.get("iterations") or 0),
                constraint=payload.get("constraint"),
                preference=payload.get("preference"),
                limit=int(payload.get("limit") or 1),
                data_key=payload.get("data_key"),
                deadline=payload.get("deadline"),
                max_work=payload.get("max_work"),
                label=payload.get("label"),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed solve request payload: {exc}") from exc

    def fingerprint(self) -> str:
        """A short stable hash of the request's semantic fields."""
        payload = self.to_payload()
        for key in NON_SEMANTIC_FIELDS:
            payload.pop(key, None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- caching -----------------------------------------------------------

    def cache_kind(self) -> Optional[str]:
        """The request-kind half of the cache key, or ``None`` if uncacheable.

        The kind covers everything semantic *except* the hypergraph (that
        is the canonical fingerprint's job).  ``None`` — no caching — for
        ``soft-width`` (its per-``k`` sub-requests cache individually, so
        the found width is always re-derived from certified witnesses) and
        for data-dependent preferences without a ``data_key``.
        """
        if self.mode == "soft-width":
            return None
        if self.preference in DATA_PREFERENCES and self.data_key is None:
            return None
        return json.dumps(
            {
                "mode": self.mode,
                "width": self.width,
                "iterations": self.iterations,
                "constraint": self.constraint,
                "preference": self.preference,
                "limit": self.limit if self.mode == "enumerate" else 1,
                "data_key": self.data_key,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    # -- derived requests --------------------------------------------------

    def degraded_to_decide(self) -> "SolveRequest":
        """The decide-only degradation of this request (ladder bottom rung)."""
        return replace(
            self,
            mode="decide",
            constraint=None,
            preference=None,
            limit=1,
            data_key=None,
        )

    def governed(
        self, deadline: Optional[float], max_work: Optional[int]
    ) -> "SolveRequest":
        """The same request under different (non-semantic) resource caps."""
        return replace(self, deadline=deadline, max_work=max_work)


@dataclass
class SolveResult:
    """What one :func:`execute` produced.

    ``decided`` is the mode's boolean answer (a decomposition exists / a
    width was found); when ``outcome.partial`` a ``False`` is
    *inconclusive*, not a proof.  ``width`` is the achieved width — the
    request's bound for the fixed-``k`` modes, the discovered least width
    for ``soft-width`` (``None`` when undetermined).  ``cache_status`` is
    ``hit`` / ``miss`` / ``stored`` / ``uncacheable`` / ``off`` and
    ``cache_stats`` snapshots the cache's counters after this call.
    """

    request: SolveRequest
    decided: bool
    decompositions: List[TreeDecomposition] = field(default_factory=list)
    width: Optional[int] = None
    outcome: SolveOutcome = field(default_factory=completed_outcome)
    cache_status: str = "off"
    cache_stats: Optional[Dict[str, int]] = None
    elapsed: float = 0.0

    @property
    def decomposition(self) -> Optional[TreeDecomposition]:
        return self.decompositions[0] if self.decompositions else None

    @property
    def complete(self) -> bool:
        return self.outcome.complete

    def to_payload(self) -> Dict[str, object]:
        """The result as a JSON-able wire dict (supervisor/worker format)."""
        return {
            "ok": True,
            "mode": self.request.mode,
            "width": self.width,
            "decided": self.decided,
            "decomposition": (
                decomposition_to_payload(self.decompositions[0])
                if self.decompositions
                else None
            ),
            "decompositions": [
                decomposition_to_payload(ctd) for ctd in self.decompositions
            ],
            "outcome": {
                "status": self.outcome.status,
                "work": self.outcome.work,
                "elapsed": round(self.outcome.elapsed, 6),
            },
            "cache": self.cache_status,
        }


# -- spec -> object resolution ------------------------------------------------


def constraint_object(
    spec: Optional[str], hypergraph: Hypergraph, width: int
) -> Optional[SubtreeConstraint]:
    """The constraint instance a spec names, bound to a hypergraph + width."""
    if spec is None:
        return None
    if spec == "concov":
        from repro.core.constraints import ConnectedCoverConstraint

        return ConnectedCoverConstraint(hypergraph, width)
    raise ValueError(f"unknown constraint {spec!r}")


def preference_object(spec: Optional[str], database=None, query=None):
    """The preference instance a spec names.

    Cost preferences (``cardinalities`` / ``estimates``) rank by database
    statistics and therefore need ``database`` and ``query``.
    """
    if spec is None:
        return None
    if spec == "nodecount":
        from repro.core.preferences import NodeCountPreference

        return NodeCountPreference()
    if spec in DATA_PREFERENCES:
        if database is None or query is None:
            raise ValueError(
                f"preference {spec!r} ranks by database statistics; "
                "execute() needs database= and query= for it"
            )
        from repro.db.cost import make_cost_preference
        from repro.db.stats import CardinalityEstimator

        return make_cost_preference(
            spec, query, database, CardinalityEstimator(database)
        )
    raise ValueError(f"unknown preference {spec!r}")


# -- execution ----------------------------------------------------------------


def _candidate_bags(
    request: SolveRequest,
    width: int,
    budget: Optional[Budget],
    shards: int = 1,
    pool=None,
):
    from repro.core.candidate_bags import SoftBagGenerator

    generator = SoftBagGenerator(
        request.hypergraph, width, budget=budget, shards=shards, pool=pool
    )
    return generator.candidate_bags(request.iterations)


def _solve_fixed_width(
    request: SolveRequest,
    database,
    query,
    budget: Optional[Budget],
    shards: int = 1,
    pool=None,
) -> List[TreeDecomposition]:
    """Run the decide/optimal/enumerate modes at the request's width."""
    hypergraph = request.hypergraph
    width = int(request.width)  # type: ignore[arg-type]
    bags = _candidate_bags(request, width, budget, shards=shards, pool=pool)
    constraint = constraint_object(request.constraint, hypergraph, width)
    preference = preference_object(request.preference, database, query)
    if request.mode == "enumerate":
        from repro.core.enumerate import enumerate_ctds

        return enumerate_ctds(
            hypergraph,
            bags,
            constraint=constraint,
            preference=preference,
            limit=request.limit,
            budget=budget,
            shards=shards,
            pool=pool,
        )
    if constraint is None and preference is None:
        from repro.core.ctd import candidate_td

        found = candidate_td(hypergraph, bags, budget=budget, shards=shards, pool=pool)
    else:
        from repro.core.constrained import constrained_candidate_td

        found = constrained_candidate_td(
            hypergraph,
            bags,
            constraint=constraint,
            preference=preference,
            budget=budget,
            shards=shards,
            pool=pool,
        )
    return [found] if found is not None else []


def _record_for(
    canonical, decompositions: List[TreeDecomposition], width: int
) -> Dict[str, object]:
    """A cache record: bags translated to canonical vertex indices."""
    stored = []
    for ctd in decompositions:
        payload = decomposition_to_payload(ctd)
        stored.append(
            {
                "bags": [canonical.to_canonical_bag(bag) for bag in payload["bags"]],
                "parents": payload["parents"],
            }
        )
    return {"width": width, "decompositions": stored}


def serve_canonical_record(
    request: SolveRequest,
    canonical,
    record: Dict[str, object],
    started: float,
    cache_status: str = "hit",
) -> SolveResult:
    """Map a canonical record to the caller's vertices and re-certify it.

    A *canonical record* stores bags as canonical vertex indices
    (:func:`_record_for`) — the storage format shared by the persistent
    decomposition cache and the batch scheduler's in-process hot memo.
    Every decomposition is translated through the caller's own
    permutation and certified with :func:`certify_ctd` before being
    served (the cache-is-never-an-authority trust model: a record is
    evidence, the certificate is the proof).  Raises :class:`ValueError`
    on any record that does not withstand certification.
    """
    hypergraph = request.hypergraph
    width = int(record["width"])  # type: ignore[index]
    stored = record["decompositions"]  # type: ignore[index]
    if not isinstance(stored, list) or not stored:
        raise ValueError("entry stores no decompositions")
    constraint = constraint_object(request.constraint, hypergraph, width)
    decompositions = []
    for item in stored:
        if not isinstance(item, dict):
            raise ValueError("entry decomposition is not a dict")
        mapped = {
            "bags": [
                sorted(canonical.from_canonical_bag(bag), key=str)
                for bag in item.get("bags", ())
            ],
            "parents": item.get("parents"),
        }
        ctd = decomposition_from_payload(hypergraph, mapped)
        certification = certify_ctd(
            hypergraph, ctd, constraint=constraint, width_claim=width
        )
        if not certification:
            raise ValueError(
                f"cached decomposition failed certification: "
                f"{certification.describe()}"
            )
        decompositions.append(ctd)
    return SolveResult(
        request=request,
        decided=True,
        decompositions=decompositions,
        width=width,
        outcome=completed_outcome(),
        cache_status=cache_status,
        elapsed=time.perf_counter() - started,
    )


def _serve_cached(
    request: SolveRequest,
    canonical,
    record: Dict[str, object],
    store: DecompositionCache,
    kind: str,
    started: float,
) -> Optional[SolveResult]:
    """Serve a persistent-cache record, quarantining entries that fail.

    Returns the servable result, or ``None`` after quarantining an entry
    that does not withstand certification — the caller then solves
    normally, so cache corruption degrades to a miss, never a wrong answer.
    """
    try:
        result = serve_canonical_record(request, canonical, record, started)
    except (KeyError, TypeError, ValueError) as exc:
        store.reject(canonical.fingerprint, kind, str(exc))
        return None
    result.cache_stats = store.stats.as_dict()
    return result


def execute(
    request: SolveRequest,
    database=None,
    query=None,
    cache: Union[str, DecompositionCache, None] = "auto",
    budget: Optional[Budget] = None,
    shards: int = 1,
    pool=None,
) -> SolveResult:
    """Execute one request: cache lookup, solve, cache store.

    ``cache`` is ``"auto"`` (the default directory, honoring
    ``REPRO_CTD_CACHE_OFF``), a :class:`DecompositionCache`, a directory
    path, or ``None``.  ``budget`` overrides the request's own
    ``deadline``/``max_work`` caps when given; either way a single budget
    governs candidate-bag generation and the solver fixpoint, and
    truncated (anytime) results are returned but never cached.

    ``shards > 1`` shards the pre-fixpoint stages (candidate-bag
    enumeration, probe tables) across a process pool
    (:mod:`repro.runtime.parallel`); results are byte-identical to a
    serial solve.  ``pool`` overrides the default cached pool — pass an
    explicit ``None``-pool path via ``shards=1`` to stay serial.
    """
    started = time.perf_counter()
    if budget is None and (request.deadline is not None or request.max_work is not None):
        budget = Budget(deadline=request.deadline, max_work=request.max_work)
    store = resolve_cache(cache)
    shards = max(1, int(shards))
    if shards > 1 and pool is None:
        import multiprocessing

        if not multiprocessing.current_process().daemon:
            from repro.runtime.parallel import get_pool

            pool = get_pool(shards)
        # else: daemonic pool workers cannot spawn children; the stripes
        # run inline (pool=None), which is still byte-identical to serial.

    if request.mode == "soft-width":
        return _execute_soft_width(
            request, database, query, store, budget, started, shards=shards, pool=pool
        )

    kind = request.cache_kind()
    canonical = None
    cache_status = "off" if store is None else ("uncacheable" if kind is None else "miss")
    if store is not None and kind is not None:
        from repro.hypergraph.canonical import canonical_form

        canonical = canonical_form(request.hypergraph)
        record = store.get(canonical.fingerprint, kind)
        if record is not None:
            served = _serve_cached(request, canonical, record, store, kind, started)
            if served is not None:
                return served

    decompositions = _solve_fixed_width(
        request, database, query, budget, shards=shards, pool=pool
    )
    outcome = budget.outcome() if budget is not None else completed_outcome()
    decided = bool(decompositions)
    width = int(request.width) if decided else None  # type: ignore[arg-type]

    if (
        store is not None
        and kind is not None
        and canonical is not None
        and decided
        and outcome.complete
    ):
        store.put(
            canonical.fingerprint,
            kind,
            _record_for(canonical, decompositions, int(request.width)),  # type: ignore[arg-type]
        )
        cache_status = "stored"

    return SolveResult(
        request=request,
        decided=decided,
        decompositions=decompositions,
        width=width,
        outcome=outcome,
        cache_status=cache_status,
        cache_stats=store.stats.as_dict() if store is not None else None,
        elapsed=time.perf_counter() - started,
    )


def lookup(
    request: SolveRequest,
    cache: Union[str, DecompositionCache, None] = "auto",
) -> Optional[SolveResult]:
    """A cache-only probe: the certified cached result on a hit, else ``None``.

    Never solves.  The batch supervisor uses this to satisfy a task without
    spawning a worker; the same trust rules as :func:`execute` apply — a
    hit is mapped back through the caller's permutation and re-certified,
    and an entry that fails certification is quarantined (the probe then
    reports a miss).
    """
    store = resolve_cache(cache)
    if store is None:
        return None
    kind = request.cache_kind()
    if kind is None:
        return None
    from repro.hypergraph.canonical import canonical_form

    started = time.perf_counter()
    canonical = canonical_form(request.hypergraph)
    record = store.get(canonical.fingerprint, kind)
    if record is None:
        return None
    return _serve_cached(request, canonical, record, store, kind, started)


def _execute_soft_width(
    request: SolveRequest,
    database,
    query,
    store: Optional[DecompositionCache],
    budget: Optional[Budget],
    started: float,
    shards: int = 1,
    pool=None,
) -> SolveResult:
    """``soft-width``: search ``k = 1..bound`` through cached sub-requests.

    Each level is a fixed-width sub-request executed through
    :func:`execute`, so positive witnesses cache and re-certify per level.
    Negative levels re-solve every time by design: "no CTD at width k" has
    no cheap certificate, so it must never be served from a cache.
    """
    hypergraph = request.hypergraph
    bound = (
        int(request.width)
        if request.width is not None
        else max(1, hypergraph.num_edges())
    )
    mode = "decide" if (request.constraint is None and request.preference is None) else "optimal"
    last: Optional[SolveResult] = None
    for k in range(1, bound + 1):
        if budget is not None and budget.exhausted:
            break
        sub = replace(request, mode=mode, width=k, limit=1)
        last = execute(
            sub,
            database=database,
            query=query,
            cache=store,
            budget=budget,
            shards=shards,
            pool=pool,
        )
        if last.decided:
            outcome = budget.outcome() if budget is not None else completed_outcome()
            return SolveResult(
                request=request,
                decided=True,
                decompositions=last.decompositions,
                width=k,
                outcome=outcome,
                cache_status=last.cache_status,
                cache_stats=store.stats.as_dict() if store is not None else None,
                elapsed=time.perf_counter() - started,
            )
    outcome = budget.outcome() if budget is not None else completed_outcome()
    return SolveResult(
        request=request,
        decided=False,
        decompositions=[],
        width=None,
        outcome=outcome,
        cache_status=last.cache_status if last is not None else "off",
        cache_stats=store.stats.as_dict() if store is not None else None,
        elapsed=time.perf_counter() - started,
    )
