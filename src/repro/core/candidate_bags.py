"""Candidate bag generation: ``Soft_{H,k}`` and the iterated ``Soft^i_{H,k}``.

Definition 3 of the paper: ``Soft_{H,k}`` contains every vertex set of the
form ``B = (⋃λ1) ∩ (⋃C)`` where ``λ1`` and ``λ2`` are sets of at most ``k``
edges of ``H`` and ``C`` is a [λ2]-component of ``H``.  (With ``λ2 = ∅`` the
only component is ``E(H)`` itself, so every union of ≤ k edges is a candidate
bag.)

Definition 6 iterates the construction: ``E^(0) = E(H)``,
``E^(i) = E^(i-1) ⋂× Soft^{i-1}_{H,k}`` (pairwise intersections), and
``Soft^i_{H,k}`` allows ``λ1`` to draw from ``E^(i)`` while ``λ2`` still
ranges over the original edges.

All enumeration runs on int masks (:mod:`repro.hypergraph.bitset`): unions
and intersections are single int operations, duplicates are collapsed in int
sets, λ2 separators are deduplicated by mask, and a λ2 edge that is already
contained in the union accumulated so far is pruned (it cannot change the
separator, so every union reachable through it is reachable without it at a
smaller size).  The public API keeps accepting and returning frozensets; the
frozenset reference implementation lives in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.bitset import pairwise_and_masks
from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex
from repro.hypergraph.components import component_vertices, edge_components
from repro.runtime.budget import Budget

Bag = FrozenSet[Vertex]


def _component_union_masks(
    hypergraph: Hypergraph, k: int, budget: Optional[Budget] = None
) -> Set[int]:
    """Masks of all ``⋃C`` where ``C`` is a [λ2]-component for some ``|λ2| ≤ k``.

    Includes ``λ2 = ∅`` (whose components are the connected components of the
    hypergraph).  Duplicate separators arising from different ``λ2`` are
    collapsed before any component is computed.

    An exhausted ``budget`` stops the enumeration early; the partial result
    is a sound under-approximation (every returned mask is a real component
    union).
    """
    bitsets = hypergraph.bitsets
    edge_masks = bitsets.edge_masks
    limit = min(k, len(edge_masks))
    result: Set[int] = set()
    separators_seen: Set[int] = {0}
    result.update(bitsets.component_unions(0))

    def extend(start: int, union: int, size: int) -> bool:
        for i in range(start, len(edge_masks)):
            if budget is not None and not budget.try_tick():
                return False
            mask = edge_masks[i]
            extended = union | mask
            if extended == union:
                # Edge i is inside the current union: any λ2 containing it
                # yields the same separator as the λ2 without it, which is
                # enumerated on another branch with one edge to spare.
                continue
            if extended not in separators_seen:
                separators_seen.add(extended)
                result.update(bitsets.component_unions(extended))
            if size + 1 < limit and not extend(i + 1, extended, size + 1):
                return False
        return True

    if limit >= 1:
        extend(0, 0, 0)
    return result


def _component_vertex_sets(hypergraph: Hypergraph, k: int) -> Set[Bag]:
    """All sets ``⋃C`` where ``C`` is a [λ2]-component for some ``|λ2| ≤ k``."""
    to_frozenset = hypergraph.bitsets.indexer.to_frozenset
    return {to_frozenset(mask) for mask in _component_union_masks(hypergraph, k)}


def _cover_union_masks(
    vertex_set_masks: Iterable[int], k: int, budget: Optional[Budget] = None
) -> Set[int]:
    """All distinct unions of between 1 and ``k`` of the given masks.

    An exhausted ``budget`` stops the enumeration early with a sound
    partial result (a subset of the full union set).
    """
    distinct = sorted(set(vertex_set_masks))
    result: Set[int] = set()

    def extend(start: int, union: int, size: int) -> bool:
        for i in range(start, len(distinct)):
            if budget is not None and not budget.try_tick():
                return False
            extended = union | distinct[i]
            if size and extended == union:
                # distinct[i] ⊆ union: the same union is produced without it.
                continue
            result.add(extended)
            if size + 1 < k and not extend(i + 1, extended, size + 1):
                return False
        return True

    if k >= 1:
        extend(0, 0, 0)
    return result


def _cover_unions(edge_sets: Sequence[FrozenSet[Vertex]], k: int) -> Set[Bag]:
    """All distinct unions of between 1 and ``k`` of the given vertex sets.

    Kept for API compatibility; builds a throwaway indexer over the union of
    the inputs so arbitrary vertex sets (not tied to a hypergraph) work.
    """
    from repro.hypergraph.bitset import VertexIndexer

    universe: Set[Vertex] = set()
    for vertex_set in edge_sets:
        universe.update(vertex_set)
    indexer = VertexIndexer(universe)
    masks = [indexer.to_mask(vertex_set) for vertex_set in edge_sets]
    return {indexer.to_frozenset(mask) for mask in _cover_union_masks(masks, k)}


def soft_candidate_bags(
    hypergraph: Hypergraph, k: int, budget: Optional[Budget] = None
) -> Set[Bag]:
    """The set ``Soft_{H,k}`` of Definition 3 (non-empty bags only)."""
    return iterated_soft_candidate_bags(hypergraph, k, iterations=0, budget=budget)


def soft_bag(
    hypergraph: Hypergraph,
    lambda1: Iterable[Edge],
    lambda2: Iterable[Edge],
    component_index: int = 0,
) -> Bag:
    """Construct a single candidate bag from explicit witnesses.

    ``B = (⋃λ1) ∩ (⋃C)`` where ``C`` is the ``component_index``-th
    [λ2]-component of the hypergraph.  Used in tests to verify membership
    claims from the paper's examples without enumerating the whole set.
    """
    union_lambda1 = hypergraph.vertices_of(lambda1)
    separator = hypergraph.vertices_of(lambda2)
    components = edge_components(hypergraph, separator)
    if not components:
        raise ValueError("λ2 leaves no component")
    component = components[component_index]
    return frozenset(union_lambda1 & component_vertices(component))


class SoftBagGenerator:
    """Generator for the iterated candidate-bag sets ``Soft^i_{H,k}``.

    The generator keeps the intermediate subedge sets ``E^(i)`` so that both
    the candidate bags and the subedges (needed e.g. to check the claims of
    Example 2) can be inspected.  ``max_subedges`` guards against the
    worst-case blow-up of Lemma 4 on larger hypergraphs; when the bound is
    hit, the computed sets are still sound under-approximations of
    ``Soft^i_{H,k}`` (the resulting width is an upper bound of ``shw_i``).

    Internally every level is a set of int masks; conversions to frozensets
    only happen in the public accessors.

    A ``budget`` (:class:`repro.runtime.Budget`) governs the enumeration
    loops cooperatively: when it exhausts, the generator stops enumerating,
    sets ``truncated`` (the same sound-under-approximation semantics as
    ``max_subedges``) and every returned bag set is a subset of the full
    one — any decomposition found over it is still a valid soft
    decomposition, only a "no" answer becomes inconclusive.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        max_subedges: Optional[int] = None,
        budget: Optional[Budget] = None,
        shards: int = 1,
        pool=None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.hypergraph = hypergraph
        self.k = k
        self.max_subedges = max_subedges
        self.budget = budget
        # ``shards > 1`` stripes the component/cover enumeration frontiers
        # (repro.runtime.parallel); ``pool`` is a ShardPool for real process
        # parallelism, ``None`` runs the stripes inline.  Either way the
        # merged sets are byte-identical to the serial enumeration.
        self.shards = max(1, int(shards))
        self._pool = pool
        self._indexer = hypergraph.bitsets.indexer
        if self.shards > 1:
            from repro.runtime.parallel import parallel_component_union_masks

            component_unions = parallel_component_union_masks(
                hypergraph, k, self.shards, pool=self._pool, budget=budget
            )
        else:
            component_unions = _component_union_masks(hypergraph, k, budget)
        self._component_masks: Tuple[int, ...] = tuple(sorted(component_unions))
        # E^(0) is the original edge set (as vertex masks).
        self._subedge_levels: List[Set[int]] = [set(hypergraph.bitsets.edge_masks)]
        self._soft_levels: List[Set[int]] = [
            self._soft_from_subedges(self._subedge_levels[0])
        ]
        self.truncated = budget is not None and budget.exhausted

    # -- internals -------------------------------------------------------------

    def _pre_charge(self, units: int) -> bool:
        """Charge a vectorised batch to the budget before running it.

        ``pairwise_and_masks`` is one numpy-ish bulk step; it cannot tick
        per element, so the batch is charged up front and skipped entirely
        when the budget cannot afford it.  The amortization window of the
        generator is therefore one batch.
        """
        budget = self.budget
        if budget is None:
            return True
        if not budget.try_tick(max(1, units)):
            self.truncated = True
            return False
        return True

    def _soft_from_subedges(self, subedge_masks: Set[int]) -> Set[int]:
        """``{ (⋃λ1) ∩ (⋃C) }`` for λ1 of ≤ k subedges and C over components."""
        if self.shards > 1:
            from repro.runtime.parallel import parallel_cover_union_masks

            unions = parallel_cover_union_masks(
                subedge_masks, self.k, self.shards, pool=self._pool, budget=self.budget
            )
        else:
            unions = _cover_union_masks(subedge_masks, self.k, self.budget)
        if self.budget is not None and self.budget.exhausted:
            self.truncated = True
        if not self._pre_charge(len(unions)):
            # Intersecting a subset of the unions would yield a sound
            # partial set too, but an exhausted budget should stop cheaply.
            return set()
        return pairwise_and_masks(list(unions), self._component_masks)

    def _next_subedges(self, level: int) -> Set[int]:
        """``E^(i+1) = E^(i) ⋂× Soft^i_{H,k}`` (non-empty intersections)."""
        current = self._subedge_levels[level]
        max_subedges = self.max_subedges
        if max_subedges is None:
            if not self._pre_charge(len(current)):
                return set(current)
            result = pairwise_and_masks(
                list(current), list(self._soft_levels[level])
            )
            result.update(current)
            return result
        # Sorted iteration makes the truncation cut-off deterministic.
        soft = sorted(self._soft_levels[level])
        result = set(current)
        add = result.add
        budget = self.budget
        for subedge in sorted(current):
            for bag in soft:
                if budget is not None and not budget.try_tick():
                    self.truncated = True
                    return result
                intersection = subedge & bag
                if intersection:
                    add(intersection)
                    if len(result) >= max_subedges:
                        self.truncated = True
                        return result
        return result

    def _ensure_level(self, level: int) -> None:
        while len(self._soft_levels) <= level:
            i = len(self._subedge_levels) - 1
            next_subedges = self._next_subedges(i)
            if next_subedges == self._subedge_levels[i]:
                # Fixpoint reached: all further levels coincide.
                self._subedge_levels.append(next_subedges)
                self._soft_levels.append(self._soft_levels[i])
                continue
            self._subedge_levels.append(next_subedges)
            self._soft_levels.append(self._soft_from_subedges(next_subedges))

    def _to_bags(self, masks: Iterable[int]) -> Set[Bag]:
        to_frozenset = self._indexer.to_frozenset
        return {to_frozenset(mask) for mask in masks}

    # -- public API -------------------------------------------------------------

    def subedges(self, level: int = 0) -> Set[Bag]:
        """The subedge set ``E^(level)`` (as vertex sets)."""
        if level > 0:
            self._ensure_level(level)
        return self._to_bags(
            self._subedge_levels[min(level, len(self._subedge_levels) - 1)]
        )

    def candidate_bags(self, level: int = 0) -> Set[Bag]:
        """The candidate-bag set ``Soft^level_{H,k}``."""
        self._ensure_level(level)
        return self._to_bags(self._soft_levels[level])

    def candidate_bag_masks(self, level: int = 0) -> Set[int]:
        """``Soft^level_{H,k}`` as masks over this hypergraph's indexer."""
        self._ensure_level(level)
        return set(self._soft_levels[level])

    def fixpoint_candidate_bags(self, max_level: int = 20) -> Set[Bag]:
        """``Soft^∞_{H,k}`` up to ``max_level`` iterations (Lemma 6 fixpoint)."""
        previous: Optional[Set[int]] = None
        for level in range(max_level + 1):
            self._ensure_level(level)
            current = self._soft_levels[level]
            if previous is not None and current == previous:
                return self._to_bags(current)
            previous = current
        return self._to_bags(previous) if previous is not None else set()


def iterated_soft_candidate_bags(
    hypergraph: Hypergraph,
    k: int,
    iterations: int = 0,
    max_subedges: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Set[Bag]:
    """``Soft^iterations_{H,k}`` — convenience wrapper over :class:`SoftBagGenerator`."""
    generator = SoftBagGenerator(hypergraph, k, max_subedges=max_subedges, budget=budget)
    return generator.candidate_bags(iterations)


def filter_bags_by_cover(
    hypergraph: Hypergraph, bags: Iterable[Bag], k: int, connected: bool = False
) -> Set[Bag]:
    """Keep only bags that have an edge cover of size ≤ k (optionally connected).

    Every bag of ``Soft_{H,k}`` has a cover of size ≤ k by construction; the
    connected filter implements the bag-level part of the ConCov constraint
    and is what the experiments use to report ``|ConCov-Soft_{H,k}|``.
    """
    from repro.core.covers import has_connected_cover, minimum_edge_cover

    result: Set[Bag] = set()
    for bag in bags:
        if connected:
            if has_connected_cover(hypergraph, bag, k):
                result.add(bag)
        else:
            if minimum_edge_cover(hypergraph, bag, upper_bound=k) is not None:
                result.add(bag)
    return result
