"""Candidate bag generation: ``Soft_{H,k}`` and the iterated ``Soft^i_{H,k}``.

Definition 3 of the paper: ``Soft_{H,k}`` contains every vertex set of the
form ``B = (⋃λ1) ∩ (⋃C)`` where ``λ1`` and ``λ2`` are sets of at most ``k``
edges of ``H`` and ``C`` is a [λ2]-component of ``H``.  (With ``λ2 = ∅`` the
only component is ``E(H)`` itself, so every union of ≤ k edges is a candidate
bag.)

Definition 6 iterates the construction: ``E^(0) = E(H)``,
``E^(i) = E^(i-1) ⋂× Soft^{i-1}_{H,k}`` (pairwise intersections), and
``Soft^i_{H,k}`` allows ``λ1`` to draw from ``E^(i)`` while ``λ2`` still
ranges over the original edges.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex
from repro.hypergraph.components import component_vertices, edge_components

Bag = FrozenSet[Vertex]


def _component_vertex_sets(hypergraph: Hypergraph, k: int) -> Set[Bag]:
    """All sets ``⋃C`` where ``C`` is a [λ2]-component for some ``|λ2| ≤ k``.

    Includes ``λ2 = ∅`` (whose components are the connected components of the
    hypergraph).  Duplicate vertex sets arising from different ``λ2`` are
    collapsed.
    """
    edges = list(hypergraph.edges)
    result: Set[Bag] = set()
    separators_seen: Set[Bag] = set()
    for size in range(0, min(k, len(edges)) + 1):
        for lambda2 in combinations(edges, size):
            separator = hypergraph.vertices_of(lambda2)
            if separator in separators_seen:
                continue
            separators_seen.add(separator)
            for component in edge_components(hypergraph, separator):
                result.add(component_vertices(component))
    return result


def _cover_unions(edge_sets: Sequence[FrozenSet[Vertex]], k: int) -> Set[Bag]:
    """All distinct unions of between 1 and ``k`` of the given vertex sets."""
    distinct = sorted(set(edge_sets), key=lambda s: sorted(map(str, s)))
    result: Set[Bag] = set()
    for size in range(1, min(k, len(distinct)) + 1):
        for subset in combinations(distinct, size):
            union: Set[Vertex] = set()
            for vertex_set in subset:
                union.update(vertex_set)
            result.add(frozenset(union))
    return result


def soft_candidate_bags(hypergraph: Hypergraph, k: int) -> Set[Bag]:
    """The set ``Soft_{H,k}`` of Definition 3 (non-empty bags only)."""
    return iterated_soft_candidate_bags(hypergraph, k, iterations=0)


def soft_bag(
    hypergraph: Hypergraph,
    lambda1: Iterable[Edge],
    lambda2: Iterable[Edge],
    component_index: int = 0,
) -> Bag:
    """Construct a single candidate bag from explicit witnesses.

    ``B = (⋃λ1) ∩ (⋃C)`` where ``C`` is the ``component_index``-th
    [λ2]-component of the hypergraph.  Used in tests to verify membership
    claims from the paper's examples without enumerating the whole set.
    """
    union_lambda1 = hypergraph.vertices_of(lambda1)
    separator = hypergraph.vertices_of(lambda2)
    components = edge_components(hypergraph, separator)
    if not components:
        raise ValueError("λ2 leaves no component")
    component = components[component_index]
    return frozenset(union_lambda1 & component_vertices(component))


class SoftBagGenerator:
    """Generator for the iterated candidate-bag sets ``Soft^i_{H,k}``.

    The generator keeps the intermediate subedge sets ``E^(i)`` so that both
    the candidate bags and the subedges (needed e.g. to check the claims of
    Example 2) can be inspected.  ``max_subedges`` guards against the
    worst-case blow-up of Lemma 4 on larger hypergraphs; when the bound is
    hit, the computed sets are still sound under-approximations of
    ``Soft^i_{H,k}`` (the resulting width is an upper bound of ``shw_i``).
    """

    def __init__(
        self, hypergraph: Hypergraph, k: int, max_subedges: Optional[int] = None
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.hypergraph = hypergraph
        self.k = k
        self.max_subedges = max_subedges
        self._component_sets = _component_vertex_sets(hypergraph, k)
        # E^(0) is the original edge set (as vertex sets).
        self._subedge_levels: List[Set[Bag]] = [
            {e.vertices for e in hypergraph.edges}
        ]
        self._soft_levels: List[Set[Bag]] = [self._soft_from_subedges(self._subedge_levels[0])]
        self.truncated = False

    # -- internals -------------------------------------------------------------

    def _soft_from_subedges(self, subedges: Set[Bag]) -> Set[Bag]:
        """``{ (⋃λ1) ∩ (⋃C) }`` for λ1 of ≤ k subedges and C over components."""
        unions = _cover_unions(sorted(subedges, key=lambda s: sorted(map(str, s))), self.k)
        bags: Set[Bag] = set()
        for union in unions:
            for component_set in self._component_sets:
                bag = union & component_set
                if bag:
                    bags.add(bag)
        return bags

    def _next_subedges(self, level: int) -> Set[Bag]:
        """``E^(i+1) = E^(i) ⋂× Soft^i_{H,k}`` (non-empty intersections)."""
        current = self._subedge_levels[level]
        soft = self._soft_levels[level]
        result: Set[Bag] = set(current)
        for subedge in current:
            for bag in soft:
                intersection = subedge & bag
                if intersection:
                    result.add(intersection)
                    if (
                        self.max_subedges is not None
                        and len(result) >= self.max_subedges
                    ):
                        self.truncated = True
                        return result
        return result

    def _ensure_level(self, level: int) -> None:
        while len(self._soft_levels) <= level:
            i = len(self._subedge_levels) - 1
            next_subedges = self._next_subedges(i)
            if next_subedges == self._subedge_levels[i]:
                # Fixpoint reached: all further levels coincide.
                self._subedge_levels.append(next_subedges)
                self._soft_levels.append(self._soft_levels[i])
                continue
            self._subedge_levels.append(next_subedges)
            self._soft_levels.append(self._soft_from_subedges(next_subedges))

    # -- public API -------------------------------------------------------------

    def subedges(self, level: int = 0) -> Set[Bag]:
        """The subedge set ``E^(level)`` (as vertex sets)."""
        if level > 0:
            self._ensure_level(level)
        return set(self._subedge_levels[min(level, len(self._subedge_levels) - 1)])

    def candidate_bags(self, level: int = 0) -> Set[Bag]:
        """The candidate-bag set ``Soft^level_{H,k}``."""
        self._ensure_level(level)
        return set(self._soft_levels[level])

    def fixpoint_candidate_bags(self, max_level: int = 20) -> Set[Bag]:
        """``Soft^∞_{H,k}`` up to ``max_level`` iterations (Lemma 6 fixpoint)."""
        previous: Optional[Set[Bag]] = None
        for level in range(max_level + 1):
            current = self.candidate_bags(level)
            if previous is not None and current == previous:
                return current
            previous = current
        return previous if previous is not None else set()


def iterated_soft_candidate_bags(
    hypergraph: Hypergraph,
    k: int,
    iterations: int = 0,
    max_subedges: Optional[int] = None,
) -> Set[Bag]:
    """``Soft^iterations_{H,k}`` — convenience wrapper over :class:`SoftBagGenerator`."""
    generator = SoftBagGenerator(hypergraph, k, max_subedges=max_subedges)
    return generator.candidate_bags(iterations)


def filter_bags_by_cover(
    hypergraph: Hypergraph, bags: Iterable[Bag], k: int, connected: bool = False
) -> Set[Bag]:
    """Keep only bags that have an edge cover of size ≤ k (optionally connected).

    Every bag of ``Soft_{H,k}`` has a cover of size ≤ k by construction; the
    connected filter implements the bag-level part of the ConCov constraint
    and is what the experiments use to report ``|ConCov-Soft_{H,k}|``.
    """
    from repro.core.covers import has_connected_cover, minimum_edge_cover

    result: Set[Bag] = set()
    for bag in bags:
        if connected:
            if has_connected_cover(hypergraph, bag, k):
                result.add(bag)
        else:
            if minimum_edge_cover(hypergraph, bag, upper_bound=k) is not None:
                result.add(bag)
    return result
