"""Soft hypertree width (Definition 4) and its iterated hierarchy (Definition 6).

``shw(H)`` is the least ``k`` such that a candidate tree decomposition exists
for ``Soft_{H,k}``; ``shw_i(H)`` uses the iterated candidate bags
``Soft^i_{H,k}``.  Deciding ``shw_i(H) ≤ k`` for fixed ``i`` and ``k`` is
polynomial (Theorems 1 and 5); the functions here combine candidate bag
generation with the CandidateTD solvers and, optionally, with constraints and
preferences (Section 6).

Both solver routes run event-driven worklist fixpoints on the bitset kernel:
the plain decision problem uses Algorithm 1 (:mod:`repro.core.ctd`), and any
constraint or preference switches to Algorithm 2
(:mod:`repro.core.constrained`), whose per-block best entries are memoised
decomposition fragments ranked by the preference key.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.ghd import GeneralizedHypertreeDecomposition
from repro.core.candidate_bags import SoftBagGenerator, soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver
from repro.core.constraints import SubtreeConstraint
from repro.core.ctd import CandidateTDSolver
from repro.core.preferences import Preference
from repro.runtime.budget import Budget


def shw_leq(
    hypergraph: Hypergraph,
    k: int,
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    budget: Optional[Budget] = None,
) -> Optional[TreeDecomposition]:
    """Decide ``shw(H) ≤ k`` (or the constrained variant ``𝒞-shw(H) ≤ k``).

    Returns a witnessing soft hypertree decomposition (a CompNF CTD over
    ``Soft_{H,k}``) or ``None``.  With a constraint and/or preference the
    constrained solver (Algorithm 2) is used instead of Algorithm 1.
    """
    return shw_i_leq(
        hypergraph,
        k,
        iterations=0,
        constraint=constraint,
        preference=preference,
        budget=budget,
    )


def shw_i_leq(
    hypergraph: Hypergraph,
    k: int,
    iterations: int,
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    max_subedges: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[TreeDecomposition]:
    """Decide ``shw_i(H) ≤ k`` and return a witnessing decomposition or ``None``.

    ``max_subedges`` caps the iterated subedge sets (see
    :class:`repro.core.candidate_bags.SoftBagGenerator`); when the cap kicks
    in the answer remains sound for "yes" instances (any returned
    decomposition is a valid width-k soft decomposition of order ``i``) but a
    ``None`` result no longer proves ``shw_i(H) > k``.

    A ``budget`` governs candidate-bag generation and the solver fixpoint
    with the same one-sided soundness: a decomposition returned by an
    exhausted run is still a valid witness, a ``None`` is inconclusive
    (``budget.status`` distinguishes the cases).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    generator = SoftBagGenerator(hypergraph, k, max_subedges=max_subedges, budget=budget)
    bags = generator.candidate_bags(iterations)
    if constraint is None and preference is None:
        return CandidateTDSolver(hypergraph, bags, budget=budget).solve()
    solver = ConstrainedCTDSolver(hypergraph, bags, constraint, preference, budget=budget)
    return solver.solve()


def soft_hypertree_width(
    hypergraph: Hypergraph,
    max_k: Optional[int] = None,
    iterations: int = 0,
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    budget: Optional[Budget] = None,
) -> Tuple[int, TreeDecomposition]:
    """``shw_i(H)`` (default ``i = 0``) together with a witnessing decomposition.

    Searches ``k = 1, 2, ...`` up to ``max_k`` (default: the number of edges,
    for which the single-bag decomposition always works on connected
    hypergraphs).  Raises ``ValueError`` if no decomposition is found within
    the bound — with a constraint this can genuinely happen.  One ``budget``
    spans the whole search; an exhausted budget ends it early with the same
    ``ValueError`` (no width proven), which the caller can tell apart via
    ``budget.status``.
    """
    limit = max_k if max_k is not None else max(1, hypergraph.num_edges())
    for k in range(1, limit + 1):
        if budget is not None and budget.exhausted:
            break
        decomposition = shw_i_leq(
            hypergraph,
            k,
            iterations,
            constraint=constraint,
            preference=preference,
            budget=budget,
        )
        if decomposition is not None:
            return k, decomposition
    raise ValueError(f"no soft decomposition of width <= {limit} found")


def soft_decomposition(
    hypergraph: Hypergraph,
    k: int,
    iterations: int = 0,
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    budget: Optional[Budget] = None,
) -> Optional[TreeDecomposition]:
    """Alias of :func:`shw_i_leq` with a decomposition-centric name."""
    return shw_i_leq(
        hypergraph,
        k,
        iterations,
        constraint=constraint,
        preference=preference,
        budget=budget,
    )


def soft_decomposition_to_ghd(
    decomposition: TreeDecomposition,
) -> GeneralizedHypertreeDecomposition:
    """Attach minimum edge covers to a soft decomposition's bags.

    Every bag of a width-``k`` soft decomposition is covered by at most ``k``
    hyperedges (Theorem 2), so the resulting GHD has width at most ``k``.
    """
    from repro.core.covers import minimum_edge_cover

    hypergraph = decomposition.hypergraph

    def transform(node):
        bag = node.data["bag"]
        cover = minimum_edge_cover(hypergraph, bag)
        if cover is None:
            raise ValueError(f"bag {sorted(map(str, bag))} has no edge cover")
        return {"bag": bag, "cover": tuple(cover)}

    return GeneralizedHypertreeDecomposition(
        hypergraph, decomposition.tree.map_tree(transform)
    )


def certify_soft_decomposition(
    hypergraph: Hypergraph, decomposition: TreeDecomposition, k: int, iterations: int = 0
) -> bool:
    """Check that ``decomposition`` witnesses ``shw_i(H) ≤ k``.

    The decomposition must be a valid tree decomposition of ``H`` and all its
    bags must belong to ``Soft^i_{H,k}``.
    """
    if decomposition.hypergraph != hypergraph:
        return False
    if not decomposition.is_valid():
        return False
    generator = SoftBagGenerator(hypergraph, k)
    bags = generator.candidate_bags(iterations)
    return decomposition.uses_bags_from(bags)
