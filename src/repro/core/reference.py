"""Frozenset reference implementations of the combinatorial hot paths.

These are the original (pre-bitset-kernel) implementations of the
[S]-component computation, candidate-bag generation (``Soft^i_{H,k}``),
minimum edge covers and the Algorithm 1 fixpoint, kept verbatim as an
executable specification.  The production code in
:mod:`repro.hypergraph.components`, :mod:`repro.core.candidate_bags`,
:mod:`repro.core.covers` and :mod:`repro.core.ctd` runs the same algorithms
on int masks (see :mod:`repro.hypergraph.bitset`); the equivalence property
tests assert that both paths produce byte-identical components, bags, cover
sizes and CandidateTD decisions, and the kernel benchmark times this module
as the baseline.

Nothing here is used on a hot path — do not "optimise" this module; its
value is being the simple, obviously-correct version.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex

Bag = FrozenSet[Vertex]


def _sorted_bags(bags: Iterable[Bag]) -> List[Bag]:
    return sorted(
        {frozenset(bag) for bag in bags if bag},
        key=lambda bag: (len(bag), sorted(map(str, bag))),
    )


# -- components (seed version of repro.hypergraph.components) -----------------


class _UnionFind:
    """Union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable):
        self._parent = {item: item for item in items}

    def find(self, item):
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def groups(self) -> Dict:
        result: Dict = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result


def reference_vertex_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[FrozenSet[Vertex]]:
    """Seed ``vertex_components``: union-find over the non-separator vertices."""
    sep = frozenset(separator)
    outside = [v for v in hypergraph.vertices if v not in sep]
    if not outside:
        return []
    uf = _UnionFind(outside)
    for edge in hypergraph.edges:
        free = [v for v in edge.vertices if v not in sep]
        for i in range(1, len(free)):
            uf.union(free[0], free[i])
    comps = [frozenset(group) for group in uf.groups().values()]
    return sorted(comps, key=lambda c: sorted(map(str, c)))


def reference_edge_components(
    hypergraph: Hypergraph, separator: Iterable[Vertex] = ()
) -> List[Tuple[Edge, ...]]:
    """Seed ``edge_components``: bucket edges by their vertex component."""
    sep = frozenset(separator)
    vcomps = reference_vertex_components(hypergraph, sep)
    index: Dict[Vertex, int] = {}
    for i, comp in enumerate(vcomps):
        for v in comp:
            index[v] = i
    buckets: List[List[Edge]] = [[] for _ in vcomps]
    for edge in hypergraph.edges:
        free = next((v for v in edge.vertices if v not in sep), None)
        if free is not None:
            buckets[index[free]].append(edge)
    return [tuple(bucket) for bucket in buckets if bucket]


def _component_vertices(component: Iterable[Edge]) -> FrozenSet[Vertex]:
    result = set()
    for edge in component:
        result.update(edge.vertices)
    return frozenset(result)


# -- candidate bags (seed version of repro.core.candidate_bags) ---------------


def reference_component_vertex_sets(hypergraph: Hypergraph, k: int) -> Set[Bag]:
    """Seed ``_component_vertex_sets``: all ``⋃C`` for [λ2]-components, |λ2| ≤ k."""
    edges = list(hypergraph.edges)
    result: Set[Bag] = set()
    separators_seen: Set[Bag] = set()
    for size in range(0, min(k, len(edges)) + 1):
        for lambda2 in combinations(edges, size):
            separator = hypergraph.vertices_of(lambda2)
            if separator in separators_seen:
                continue
            separators_seen.add(separator)
            for component in reference_edge_components(hypergraph, separator):
                result.add(_component_vertices(component))
    return result


def reference_cover_unions(edge_sets: Sequence[FrozenSet[Vertex]], k: int) -> Set[Bag]:
    """Seed ``_cover_unions``: all unions of 1..k of the given vertex sets."""
    distinct = sorted(set(edge_sets), key=lambda s: sorted(map(str, s)))
    result: Set[Bag] = set()
    for size in range(1, min(k, len(distinct)) + 1):
        for subset in combinations(distinct, size):
            union: Set[Vertex] = set()
            for vertex_set in subset:
                union.update(vertex_set)
            result.add(frozenset(union))
    return result


class ReferenceSoftBagGenerator:
    """Seed :class:`SoftBagGenerator`: iterated ``Soft^i_{H,k}`` on frozensets."""

    def __init__(
        self, hypergraph: Hypergraph, k: int, max_subedges: Optional[int] = None
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.hypergraph = hypergraph
        self.k = k
        self.max_subedges = max_subedges
        self._component_sets = reference_component_vertex_sets(hypergraph, k)
        self._subedge_levels: List[Set[Bag]] = [
            {e.vertices for e in hypergraph.edges}
        ]
        self._soft_levels: List[Set[Bag]] = [
            self._soft_from_subedges(self._subedge_levels[0])
        ]
        self.truncated = False

    def _soft_from_subedges(self, subedges: Set[Bag]) -> Set[Bag]:
        unions = reference_cover_unions(
            sorted(subedges, key=lambda s: sorted(map(str, s))), self.k
        )
        bags: Set[Bag] = set()
        for union in unions:
            for component_set in self._component_sets:
                bag = union & component_set
                if bag:
                    bags.add(bag)
        return bags

    def _next_subedges(self, level: int) -> Set[Bag]:
        current = self._subedge_levels[level]
        soft = self._soft_levels[level]
        result: Set[Bag] = set(current)
        for subedge in current:
            for bag in soft:
                intersection = subedge & bag
                if intersection:
                    result.add(intersection)
                    if (
                        self.max_subedges is not None
                        and len(result) >= self.max_subedges
                    ):
                        self.truncated = True
                        return result
        return result

    def _ensure_level(self, level: int) -> None:
        while len(self._soft_levels) <= level:
            i = len(self._subedge_levels) - 1
            next_subedges = self._next_subedges(i)
            if next_subedges == self._subedge_levels[i]:
                self._subedge_levels.append(next_subedges)
                self._soft_levels.append(self._soft_levels[i])
                continue
            self._subedge_levels.append(next_subedges)
            self._soft_levels.append(self._soft_from_subedges(next_subedges))

    def subedges(self, level: int = 0) -> Set[Bag]:
        if level > 0:
            self._ensure_level(level)
        return set(self._subedge_levels[min(level, len(self._subedge_levels) - 1)])

    def candidate_bags(self, level: int = 0) -> Set[Bag]:
        self._ensure_level(level)
        return set(self._soft_levels[level])

    def fixpoint_candidate_bags(self, max_level: int = 20) -> Set[Bag]:
        previous: Optional[Set[Bag]] = None
        for level in range(max_level + 1):
            current = self.candidate_bags(level)
            if previous is not None and current == previous:
                return current
            previous = current
        return previous if previous is not None else set()


def reference_soft_candidate_bags(hypergraph: Hypergraph, k: int) -> Set[Bag]:
    """Seed ``soft_candidate_bags``: ``Soft_{H,k}`` of Definition 3."""
    return ReferenceSoftBagGenerator(hypergraph, k).candidate_bags(0)


# -- covers (seed version of repro.core.covers) -------------------------------


def reference_greedy_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex]
) -> Optional[List[Edge]]:
    """Seed ``greedy_edge_cover``."""
    remaining = set(bag)
    cover: List[Edge] = []
    while remaining:
        best = None
        best_gain = 0
        for edge in hypergraph.edges:
            gain = len(edge.vertices & remaining)
            if gain > best_gain:
                best, best_gain = edge, gain
        if best is None:
            return None
        cover.append(best)
        remaining -= best.vertices
    return cover


def reference_minimum_edge_cover(
    hypergraph: Hypergraph, bag: Iterable[Vertex], upper_bound: Optional[int] = None
) -> Optional[List[Edge]]:
    """Seed ``minimum_edge_cover``: branch and bound on frozensets."""
    bag_set = frozenset(bag)
    if not bag_set:
        return []
    edges = [e for e in hypergraph.edges if e.vertices & bag_set]
    edges.sort(key=lambda e: (-len(e.vertices & bag_set), e.name))
    coverable = set()
    for edge in edges:
        coverable.update(edge.vertices & bag_set)
    if coverable != bag_set:
        return None
    greedy = reference_greedy_edge_cover(hypergraph, bag_set)
    best: Optional[List[Edge]] = greedy
    limit = len(greedy) if greedy is not None else len(edges)
    if upper_bound is not None:
        limit = min(limit, upper_bound)
        if best is not None and len(best) > upper_bound:
            best = None

    def search(remaining: FrozenSet[Vertex], chosen: List[Edge]) -> None:
        nonlocal best, limit
        if not remaining:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
                limit = len(best)
            return
        if len(chosen) >= limit:
            return
        pivot = min(
            remaining,
            key=lambda v: sum(1 for e in edges if v in e.vertices),
        )
        for edge in edges:
            if pivot in edge.vertices:
                chosen.append(edge)
                search(remaining - edge.vertices, chosen)
                chosen.pop()

    search(bag_set, [])
    if best is not None and upper_bound is not None and len(best) > upper_bound:
        return None
    return best


# -- Algorithm 1 (seed versions of repro.core.blocks / repro.core.ctd) --------


class _ReferenceBlock:
    __slots__ = ("head", "component")

    def __init__(self, head: Bag, component: Bag):
        self.head = head
        self.component = component

    @property
    def union(self) -> Bag:
        return self.head | self.component

    def leq(self, other: "_ReferenceBlock") -> bool:
        return self.union <= other.union and self.component <= other.component

    def __eq__(self, other):
        if not isinstance(other, _ReferenceBlock):
            return NotImplemented
        return self.head == other.head and self.component == other.component

    def __hash__(self):
        return hash((self.head, self.component))


def _reference_blocks(
    hypergraph: Hypergraph, bags: List[Bag]
) -> Tuple[Dict[Bag, List["_ReferenceBlock"]], List["_ReferenceBlock"], "_ReferenceBlock"]:
    """All blocks headed by the bags (plus the root block), seed-style.

    Returns ``(blocks_by_head, all_blocks, root_block)`` — the common
    preamble of the seed Algorithm 1 and Algorithm 2 fixpoints.
    """
    blocks_by_head: Dict[Bag, List[_ReferenceBlock]] = {}
    all_blocks: List[_ReferenceBlock] = []
    empty: Bag = frozenset()
    for head in bags + [empty]:
        blocks = [_ReferenceBlock(head, frozenset())]
        for component in reference_vertex_components(hypergraph, head):
            blocks.append(_ReferenceBlock(head, component))
        blocks_by_head[head] = blocks
        all_blocks.extend(blocks)
    root_block = _ReferenceBlock(empty, frozenset(hypergraph.vertices))
    if root_block not in blocks_by_head[empty]:
        blocks_by_head[empty].append(root_block)
        all_blocks.append(root_block)
    return blocks_by_head, all_blocks, root_block


def reference_candidate_td_decide(
    hypergraph: Hypergraph, candidate_bags: Iterable[Bag]
) -> bool:
    """Seed Algorithm 1 fixpoint: round-robin over all (block, candidate) pairs.

    Returns the CandidateTD decision (the root block is satisfied).
    """
    bags = _sorted_bags(candidate_bags)
    blocks_by_head, all_blocks, root_block = _reference_blocks(hypergraph, bags)

    def is_basis(candidate: Bag, block: _ReferenceBlock, satisfied) -> bool:
        if candidate == block.head:
            return False
        if not candidate <= block.union:
            return False
        subs = [b for b in blocks_by_head.get(candidate, []) if b.leq(block)]
        covered = set(candidate)
        for sub in subs:
            covered.update(sub.component)
        if not block.component <= covered:
            return False
        for edge in hypergraph.edges:
            if edge.vertices & block.component and not edge.vertices <= covered:
                return False
        return all(satisfied.get(sub, False) for sub in subs)

    ordered = sorted(
        all_blocks,
        key=lambda b: (len(b.union), len(b.component), sorted(map(str, b.head))),
    )
    basis: Dict[_ReferenceBlock, Optional[Bag]] = {}
    satisfied: Dict[_ReferenceBlock, bool] = {}
    for block in ordered:
        trivially = not block.component
        basis[block] = frozenset() if trivially else None
        satisfied[block] = trivially
    changed = True
    while changed:
        changed = False
        for block in ordered:
            if satisfied[block]:
                continue
            for candidate in bags:
                if is_basis(candidate, block, satisfied):
                    basis[block] = candidate
                    satisfied[block] = True
                    changed = True
                    break
    # The vertex-less hypergraph's root block (∅, ∅) is trivially satisfied
    # by the (empty, falsy) basis — the accept test is satisfaction alone.
    return satisfied.get(root_block, False)


# -- Algorithm 2 (seed version of repro.core.constrained) ----------------------


def reference_constrained_ctd(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[Bag],
    constraint=None,
    preference=None,
):
    """Seed Algorithm 2: round-robin DP over all (block, candidate) pairs.

    For every block the DP keeps the basis whose induced partial
    decomposition is constraint-compliant and preference-minimal, rebuilding
    the full :class:`TreeDecomposition` and re-running
    ``constraint.holds_recursively`` for every probe in every round — the
    pre-worklist behaviour the event-driven solver in
    :mod:`repro.core.constrained` is benchmarked and property-tested against.
    Returns the optimal compliant CTD or ``None``.
    """
    from repro.core.constraints import NoConstraint
    from repro.core.preferences import NoPreference
    from repro.decompositions.td import TreeDecomposition
    from repro.decompositions.tree import RootedTree

    constraint = constraint if constraint is not None else NoConstraint()
    preference = preference if preference is not None else NoPreference()
    bags = _sorted_bags(
        constraint.filter_bags({frozenset(bag) for bag in candidate_bags if bag})
    )
    blocks_by_head, all_blocks, root_block = _reference_blocks(hypergraph, bags)

    basis: Dict[_ReferenceBlock, Optional[Bag]] = {}
    satisfied: Dict[_ReferenceBlock, bool] = {}

    def sub_blocks(head: Bag, block: _ReferenceBlock) -> List[_ReferenceBlock]:
        return [b for b in blocks_by_head.get(head, []) if b.leq(block)]

    def is_basis(candidate: Bag, block: _ReferenceBlock) -> bool:
        if candidate == block.head:
            return False
        if not candidate <= block.union:
            return False
        subs = sub_blocks(candidate, block)
        covered = set(candidate)
        for sub in subs:
            covered.update(sub.component)
        if not block.component <= covered:
            return False
        for edge in hypergraph.edges:
            if edge.vertices & block.component and not edge.vertices <= covered:
                return False
        return all(satisfied.get(sub, False) for sub in subs)

    def attach(tree: RootedTree, parent, block: _ReferenceBlock) -> None:
        if not block.component:
            return
        block_basis = basis[block]
        assert block_basis is not None
        node = tree.new_node(parent, bag=block_basis)
        for sub in sub_blocks(block_basis, block):
            if sub.component:
                attach(tree, node, sub)

    def partial_decomposition(
        block: _ReferenceBlock, candidate: Bag
    ) -> TreeDecomposition:
        tree = RootedTree()
        node = tree.new_node(None, bag=candidate)
        for sub in sub_blocks(candidate, block):
            if sub.component:
                attach(tree, node, sub)
        return TreeDecomposition(hypergraph, tree)

    ordered = sorted(
        all_blocks,
        key=lambda b: (len(b.union), len(b.component), sorted(map(str, b.head))),
    )
    for block in ordered:
        trivially = not block.component
        basis[block] = frozenset() if trivially else None
        satisfied[block] = trivially
    max_rounds = len(ordered) * max(1, len(bags)) + 10
    for _ in range(max_rounds):
        changed = False
        for block in ordered:
            if not block.component:
                continue
            for candidate in bags:
                if not is_basis(candidate, block):
                    continue
                new_decomposition = partial_decomposition(block, candidate)
                if not constraint.holds_recursively(new_decomposition):
                    continue
                current_basis = basis[block]
                if current_basis is None or preference.is_strictly_better(
                    new_decomposition, partial_decomposition(block, current_basis)
                ):
                    basis[block] = candidate
                    satisfied[block] = True
                    changed = True
        if not changed:
            break
    if not satisfied.get(root_block, False):
        return None
    if not root_block.component:
        # Vertex-less hypergraph: the trivial single-empty-bag CTD.
        tree = RootedTree()
        tree.new_node(None, bag=frozenset())
        decomposition = TreeDecomposition(hypergraph, tree)
    else:
        root_basis = basis[root_block]
        assert root_basis is not None
        decomposition = partial_decomposition(root_block, root_basis)
    if not constraint.holds_recursively(decomposition):
        return None
    return decomposition


# -- exact ranked enumeration (spec for repro.core.enumerate) -------------------


def reference_enumerate_ctds(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[Bag],
    constraint=None,
    preference=None,
    limit: int = 10,
) -> List:
    """Brute-force exact ranked enumeration: exhaustive generation + sort.

    For every block (bottom-up) this builds the *complete* list of partial
    decompositions — every feasible basis candidate × every combination of
    the sub-blocks' options — rebuilding a full :class:`TreeDecomposition`
    and re-running ``constraint.holds_recursively`` for each one, then ranks
    the root block's options by ``(preference key, canonical fragment sort
    key)`` and returns the first ``limit`` distinct decompositions.  No
    beam, no combination caps, no laziness: exponential and obviously
    correct, which is exactly what the lazy any-k enumerator in
    :mod:`repro.core.enumerate` is property-tested against.
    """
    from repro.core.constraints import NoConstraint
    from repro.core.fragments import (
        fragment_sort_key,
        fragment_to_decomposition,
        make_fragment,
    )
    from repro.core.preferences import NoPreference
    from repro.decompositions.td import TreeDecomposition
    from repro.decompositions.tree import RootedTree

    constraint = constraint if constraint is not None else NoConstraint()
    preference = preference if preference is not None else NoPreference()
    if limit <= 0:
        return []
    bags = _sorted_bags(
        constraint.filter_bags({frozenset(bag) for bag in candidate_bags if bag})
    )
    blocks_by_head, all_blocks, root_block = _reference_blocks(hypergraph, bags)

    def ranking_key(fragment):
        decomposition = fragment_to_decomposition(hypergraph, fragment)
        return (preference.key(decomposition), fragment_sort_key(fragment))

    ordered = sorted(
        all_blocks,
        key=lambda b: (len(b.union), len(b.component), sorted(map(str, b.head))),
    )
    options: Dict[_ReferenceBlock, List] = {}
    for block in ordered:
        if not block.component:
            options[block] = []
            continue
        block_options = set()
        for candidate in bags:
            if candidate == block.head:
                continue
            if not candidate <= block.union:
                continue
            subs = [b for b in blocks_by_head.get(candidate, []) if b.leq(block)]
            covered = set(candidate)
            for sub in subs:
                covered.update(sub.component)
            if not block.component <= covered:
                continue
            if any(
                edge.vertices & block.component and not edge.vertices <= covered
                for edge in hypergraph.edges
            ):
                continue
            child_lists = [options[sub] for sub in subs if sub.component]
            if any(not child_list for child_list in child_lists):
                continue
            for combination in product(*child_lists):
                fragment = make_fragment(candidate, combination)
                decomposition = fragment_to_decomposition(hypergraph, fragment)
                if not constraint.holds_recursively(decomposition):
                    continue
                block_options.add(fragment)
        options[block] = sorted(block_options, key=ranking_key)

    if not root_block.component:
        # Vertex-less hypergraph: the single-empty-bag CTD is the only one.
        tree = RootedTree()
        tree.new_node(None, bag=frozenset())
        decomposition = TreeDecomposition(hypergraph, tree)
        if not constraint.holds_recursively(decomposition):
            return []
        return [decomposition]
    decompositions = []
    seen = set()
    for fragment in options[root_block]:
        decomposition = fragment_to_decomposition(hypergraph, fragment)
        canonical = decomposition.canonical_form()
        if canonical in seen:
            continue
        seen.add(canonical)
        decompositions.append(decomposition)
        if len(decompositions) >= limit:
            break
    return decompositions
