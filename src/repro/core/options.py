"""Shared solver core of the CandidateTD family (Algorithms 1, 2 and any-k).

Algorithm 1 (:mod:`repro.core.ctd`), the constrained/preference-optimised
Algorithm 2 (:mod:`repro.core.constrained`) and the exact ranked enumerator
(:mod:`repro.core.enumerate`) all run the same block dynamic program: filter
the candidate bags through the constraint, index the blocks
(:class:`repro.core.blocks.BlockIndex`), generate the statically feasible
``(candidate, live sub-blocks)`` probes per block, and evaluate immutable
``(bag, children)`` fragments (:mod:`repro.core.fragments`) against the
constraint and the preference.  This module holds that shared machinery so
the three solvers differ only in their control flow:

* :class:`FragmentEvaluator` memoises, per distinct fragment, the
  materialised :class:`TreeDecomposition`, the constraint verdict and the
  preference ``(key, state)`` — with the monotone bottom-up key composition
  of :class:`repro.core.preferences.Preference` as the fast path;
* :class:`SolverCore` owns the filtered candidate set, the block index, the
  evaluator, the per-block probe tables with their reverse
  (sub-block → dependent blocks) event-routing map, and the vertex-less
  hypergraph's trivial single-empty-bag decomposition.

The per-fragment memo tables rely on one invariant, shared by all three
consumers: *a fragment is only ever built from constraint-compliant child
fragments*, so compliance of the whole fragment reduces to ``𝒞.holds`` on
the fragment itself and a monotone preference key composes from the memoised
child states.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree
from repro.core.blocks import Bag, BlockIndex
from repro.core.constraints import NoConstraint, SubtreeConstraint
from repro.core.fragments import Fragment, fragment_to_decomposition
from repro.core.preferences import NoPreference, Preference
from repro.runtime.budget import Budget

#: Marks a fragment rejected by the constraint in the per-fragment memo.
_REJECTED = object()

#: Per-block probe table: ``(candidate id, live sub-block ids)`` pairs.
ProbeTable = Tuple[Tuple[int, Tuple[int, ...]], ...]


class FragmentEvaluator:
    """Memoised constraint/preference evaluation of decomposition fragments.

    All tables are keyed by the fragment value itself; fragments are
    canonical (children deterministically sorted), so structurally equal
    partial decompositions share one entry no matter which solver, probe or
    enumeration path built them.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        constraint: SubtreeConstraint,
        preference: Preference,
    ):
        self.hypergraph = hypergraph
        self.constraint = constraint
        self.preference = preference
        self._td: Dict[Fragment, TreeDecomposition] = {}
        self._compliant: Dict[Fragment, bool] = {}
        # fragment -> (key, state); see the invariant in the module docstring.
        self._state: Dict[Fragment, Tuple] = {}

    def materialise(self, fragment: Fragment) -> TreeDecomposition:
        """The fragment as a :class:`TreeDecomposition` (memoised)."""
        decomposition = self._td.get(fragment)
        if decomposition is None:
            decomposition = fragment_to_decomposition(self.hypergraph, fragment)
            self._td[fragment] = decomposition
        return decomposition

    def compliant(self, fragment: Fragment) -> bool:
        """``𝒞.holds`` on the fragment itself (children compliant by invariant)."""
        if self.constraint.trivial:
            return True
        verdict = self._compliant.get(fragment)
        if verdict is None:
            verdict = self.constraint.holds(self.materialise(fragment))
            self._compliant[fragment] = verdict
        return verdict

    def state_of(self, fragment: Fragment) -> Tuple:
        """``(key, state)`` of a fragment, independent of the constraint.

        Monotone preferences compose the state from the children's memoised
        states without materialising the fragment; the children's states are
        always present because every consumer evaluates fragments bottom-up.
        """
        cached = self._state.get(fragment)
        if cached is not None:
            return cached
        preference = self.preference
        if preference.monotone:
            bag, children = fragment
            child_states = [self._state[child][1] for child in children]
            state = preference.fragment_state(bag, child_states)
            result = (preference.state_key(state), state)
        else:
            result = (preference.key(self.materialise(fragment)), None)
        self._state[fragment] = result
        return result

    def evaluate(self, fragment: Fragment):
        """``(key, state)`` of a compliant fragment, or ``_REJECTED``.

        The constraint is consulted first so non-monotone preference keys are
        never computed for fragments the constraint discards.
        """
        if not self.compliant(fragment):
            return _REJECTED
        return self.state_of(fragment)


class SolverCore:
    """The common preamble and option tables of the CandidateTD solvers."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        constraint: Optional[SubtreeConstraint] = None,
        preference: Optional[Preference] = None,
        budget: Optional[Budget] = None,
        shards: int = 1,
        pool=None,
    ):
        self.hypergraph = hypergraph
        self.budget = budget
        # ``shards > 1`` stripes probe-table construction by block id
        # (repro.runtime.parallel); ``pool`` is the ShardPool to run the
        # stripes on (``None`` = inline).  The merged tables are
        # byte-identical to the serial loop.
        self.shards = max(1, int(shards))
        self.pool = pool
        self.constraint = constraint if constraint is not None else NoConstraint()
        self.preference = preference if preference is not None else NoPreference()
        filtered = self.constraint.filter_bags(
            {frozenset(bag) for bag in candidate_bags if bag}
        )
        self.index = BlockIndex(hypergraph, filtered)
        self.evaluator = FragmentEvaluator(
            hypergraph, self.constraint, self.preference
        )
        self._probe_tables: Optional[Tuple[List[ProbeTable], Dict[int, List[int]]]] = None

    def probe_tables(self) -> Tuple[List[ProbeTable], Dict[int, List[int]]]:
        """``(probes, parents)`` — the static probe structure of the block DP.

        ``probes[block_id]`` holds the statically feasible probes of a block
        with a component (:meth:`BlockIndex.candidate_probes`); ``parents``
        maps a sub-block id to the blocks whose probes use it, which is the
        reverse edge set the worklists route satisfaction/improvement events
        along.  Both are computed once per core.

        Construction is governed by the core's budget: one
        :meth:`~repro.runtime.Budget.tick` per block (each
        ``candidate_probes`` call is one memoised batch), so a
        :class:`~repro.runtime.BudgetExceeded` can surface here and is
        handled by the owning solver's anytime boundary.  The memo is only
        populated on full completion — a later retry recomputes.
        """
        if self._probe_tables is not None:
            return self._probe_tables
        budget = self.budget
        index = self.index
        if self.shards > 1:
            from repro.runtime.parallel import parallel_probe_tables

            self._probe_tables = parallel_probe_tables(
                index, self.shards, pool=self.pool, budget=budget
            )
            return self._probe_tables
        component_masks = index.mask_arrays()[1]
        block_count = index.block_count()
        probes: List[ProbeTable] = [()] * block_count
        parents: Dict[int, List[int]] = {}
        for block_id in range(block_count):
            if not component_masks[block_id]:
                continue
            if budget is not None:
                budget.tick()
            block_probes = index.candidate_probes(block_id)
            probes[block_id] = block_probes
            for _, live_subs in block_probes:
                for sub in live_subs:
                    dependents = parents.setdefault(sub, [])
                    if not dependents or dependents[-1] != block_id:
                        dependents.append(block_id)
        self._probe_tables = (probes, parents)
        return self._probe_tables

    def trivial_decomposition(self) -> Optional[TreeDecomposition]:
        """The vertex-less hypergraph's single-empty-bag CTD, if compliant.

        This decomposition never goes through a probe, so it is the one
        place the constraint must be consulted outside the fragment memo.
        """
        tree = RootedTree()
        tree.new_node(None, bag=frozenset())
        decomposition = TreeDecomposition(self.hypergraph, tree)
        if not self.constraint.holds_recursively(decomposition):
            return None
        return decomposition
