"""Persistent on-disk cache of candidate tree decompositions.

The solvers are pure functions of the query *shape*: two hypergraphs with
equal canonical fingerprints (:mod:`repro.hypergraph.canonical`) and the
same request kind have the same CTDs up to vertex renaming.  This module
stores solved decompositions on disk keyed by
``(canonical_fingerprint, request_kind)`` so repeated shapes — across
processes, batch runs and CLI invocations — become cache hits instead of
re-solves.

Trust model
-----------

The cache is an *accelerator*, never an authority.  Entries store bags as
canonical vertex indices; :func:`repro.core.solve.execute` maps them back
through the caller's own permutation and re-certifies the result with
:func:`repro.core.certify.certify_ctd` before serving it.  An entry that
fails certification is quarantined (renamed to ``*.corrupt``, same idiom
as the workload snapshot cache) and the request falls back to a normal
solve — a poisoned, stale or colliding entry can cost time, never
correctness.  Negative answers are deliberately **not** cached: a "no
decomposition exists" claim has no cheap certificate.

Layout and eviction
-------------------

One JSON file per entry, named ``<fingerprint-prefix>-<kind-hash>.json``,
written atomically (temp file + rename).  The directory is size-bounded:
after each store, least-recently-used entries (by mtime — reads touch the
file) are evicted until the directory fits ``max_bytes``.  Defaults:
``workloads/.ctd-cache`` under the cwd, 64 MiB; overridable with
``REPRO_CTD_CACHE`` (directory), ``REPRO_CTD_CACHE_MAX_BYTES``, and
``REPRO_CTD_CACHE_OFF`` (disable entirely).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.runtime.faults import maybe_fail

logger = logging.getLogger(__name__)

__all__ = [
    "CACHE_VERSION",
    "CACHE_ENV_VAR",
    "CACHE_OFF_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "QUARANTINE_SUFFIX",
    "CacheStats",
    "CacheEntryInfo",
    "CorruptCacheEntry",
    "DecompositionCache",
    "default_cache_dir",
    "cache_disabled",
    "resolve_cache",
]

#: On-disk format version; bump on layout changes so old entries are
#: treated as corrupt (quarantined) rather than misread.
CACHE_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_ENV_VAR = "REPRO_CTD_CACHE"

#: Set (to anything non-empty) to disable the cache for ``"auto"`` callers.
CACHE_OFF_ENV_VAR = "REPRO_CTD_CACHE_OFF"

#: Environment variable overriding the size bound in bytes.
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CTD_CACHE_MAX_BYTES"

#: Default size bound: far beyond any realistic query-shape working set
#: (entries are a few KiB), small enough to never matter on disk.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Same quarantine idiom as the workload snapshot cache.
QUARANTINE_SUFFIX = ".corrupt"

_ENTRY_SUFFIX = ".json"


class CorruptCacheEntry(RuntimeError):
    """An entry file exists but cannot be trusted: unreadable JSON, wrong
    format version, or key fields that do not match its filename's key."""


def default_cache_dir() -> str:
    """``$REPRO_CTD_CACHE`` or ``workloads/.ctd-cache`` under the cwd."""
    return os.environ.get(CACHE_ENV_VAR) or os.path.join("workloads", ".ctd-cache")


def cache_disabled() -> bool:
    """Whether ``REPRO_CTD_CACHE_OFF`` disables the default cache."""
    return bool(os.environ.get(CACHE_OFF_ENV_VAR))


def _default_max_bytes() -> int:
    raw = os.environ.get(CACHE_MAX_BYTES_ENV_VAR)
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", CACHE_MAX_BYTES_ENV_VAR, raw
            )
    return DEFAULT_MAX_BYTES


def kind_hash(kind: str) -> str:
    """A short stable hash of a request-kind string (part of the filename)."""
    return hashlib.sha256(kind.encode("utf-8")).hexdigest()[:12]


@dataclass
class CacheStats:
    """Counters surfaced in :class:`~repro.core.solve.SolveResult` payloads.

    ``hits`` counts entries read back successfully (before certification);
    ``rejected`` counts hits that subsequently failed re-certification and
    were quarantined — the difference is what was actually served.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    quarantined: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "rejected": self.rejected,
        }


@dataclass
class CacheEntryInfo:
    """One entry file as reported by :meth:`DecompositionCache.entries`."""

    path: str
    fingerprint: str
    kind: str
    width: Optional[int]
    decompositions: int
    size_bytes: int
    version: int
    readable: bool = True

    @property
    def stale(self) -> bool:
        return not self.readable or self.version != CACHE_VERSION


@dataclass
class DecompositionCache:
    """A directory of solved decompositions keyed by canonical form."""

    directory: str = ""
    max_bytes: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = self.directory or default_cache_dir()
        if self.max_bytes is None:
            self.max_bytes = _default_max_bytes()

    # -- keying ------------------------------------------------------------

    def entry_path(self, fingerprint: str, kind: str) -> str:
        return os.path.join(
            self.directory, f"{fingerprint[:24]}-{kind_hash(kind)}{_ENTRY_SUFFIX}"
        )

    # -- read side ---------------------------------------------------------

    def _read(self, path: str, fingerprint: str, kind: str) -> dict:
        try:
            maybe_fail("ctdcache.read")
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except Exception as exc:  # JSONDecodeError, OSError, injected fault
            raise CorruptCacheEntry(f"cache entry {path!r} is unreadable: {exc}") from exc
        if not isinstance(record, dict):
            raise CorruptCacheEntry(f"cache entry {path!r} is not a record")
        if record.get("version") != CACHE_VERSION:
            raise CorruptCacheEntry(
                f"cache entry {path!r} has version {record.get('version')}, "
                f"this code reads version {CACHE_VERSION}"
            )
        if record.get("fingerprint") != fingerprint or record.get("kind") != kind:
            # A filename-hash collision or a copied-in foreign file: the
            # entry is about some other request, so it is no answer here.
            raise CorruptCacheEntry(
                f"cache entry {path!r} does not match its key"
            )
        return record

    def get(self, fingerprint: str, kind: str) -> Optional[dict]:
        """The stored record for a key, or ``None`` on a miss.

        Corrupt entries are quarantined and count as misses.  Successful
        reads touch the file's mtime, which is what the eviction policy
        ranks by.
        """
        path = self.entry_path(fingerprint, kind)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            record = self._read(path, fingerprint, kind)
        except CorruptCacheEntry as exc:
            self.quarantine(path, str(exc))
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return record

    def reject(self, fingerprint: str, kind: str, reason: str) -> None:
        """Quarantine an entry whose payload failed re-certification."""
        self.stats.rejected += 1
        self.quarantine(self.entry_path(fingerprint, kind), reason)

    # -- write side --------------------------------------------------------

    def put(self, fingerprint: str, kind: str, record: dict) -> str:
        """Atomically store ``record`` under a key, then enforce the size bound."""
        path = self.entry_path(fingerprint, kind)
        payload = dict(record)
        payload["version"] = CACHE_VERSION
        payload["fingerprint"] = fingerprint
        payload["kind"] = kind
        payload.setdefault("created", time.time())
        os.makedirs(self.directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=_ENTRY_SUFFIX + ".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                maybe_fail("ctdcache.write")
                json.dump(payload, stream, sort_keys=True, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self.stats.stores += 1
        self._evict(keep=path)
        return path

    def _evict(self, keep: Optional[str] = None) -> None:
        """Drop least-recently-used entries until the directory fits.

        The just-written entry is exempt, so a single oversized store does
        not evict itself into a permanently cold cache.
        """
        assert self.max_bytes is not None
        files = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for mtime, size, path in sorted(files):
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            self.stats.evictions += 1
            total -= size
            if total <= self.max_bytes:
                return

    # -- maintenance -------------------------------------------------------

    def quarantine(self, path: str, reason: str) -> Optional[str]:
        """Move an untrustworthy entry aside as ``<path>.corrupt``."""
        if not os.path.exists(path):
            return None
        quarantined = path + QUARANTINE_SUFFIX
        os.replace(path, quarantined)
        self.stats.quarantined += 1
        logger.warning(
            "quarantined cache entry %s -> %s: %s", path, quarantined, reason
        )
        return quarantined

    def _entry_paths(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        return [
            os.path.join(self.directory, filename)
            for filename in sorted(os.listdir(self.directory))
            if filename.endswith(_ENTRY_SUFFIX)
        ]

    def entries(self) -> List[CacheEntryInfo]:
        """All entry files, unreadable ones included (as stale placeholders)."""
        infos = []
        for path in self._entry_paths():
            size = os.path.getsize(path)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                if not isinstance(record, dict):
                    raise ValueError("not a record")
            except Exception:
                infos.append(
                    CacheEntryInfo(path, "?", "?", None, 0, size, -1, readable=False)
                )
                continue
            infos.append(
                CacheEntryInfo(
                    path=path,
                    fingerprint=str(record.get("fingerprint", "?")),
                    kind=str(record.get("kind", "?")),
                    width=record.get("width"),
                    decompositions=len(record.get("decompositions") or ()),
                    size_bytes=size,
                    version=int(record.get("version", -1)),
                )
            )
        return infos

    def quarantined(self) -> List[str]:
        """Paths of quarantined (``*.corrupt``) files in the cache directory."""
        if not os.path.isdir(self.directory):
            return []
        return [
            os.path.join(self.directory, filename)
            for filename in sorted(os.listdir(self.directory))
            if filename.endswith(QUARANTINE_SUFFIX)
        ]

    def size_bytes(self) -> int:
        return sum(os.path.getsize(path) for path in self._entry_paths())

    def clean(self) -> int:
        """Delete every entry, quarantine file and stray temp file."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for filename in sorted(os.listdir(self.directory)):
            if (
                filename.endswith(_ENTRY_SUFFIX)
                or filename.endswith(QUARANTINE_SUFFIX)
                or _ENTRY_SUFFIX + ".tmp" in filename
            ):
                os.unlink(os.path.join(self.directory, filename))
                removed += 1
        return removed


def resolve_cache(
    cache: Union[str, DecompositionCache, None] = "auto",
) -> Optional[DecompositionCache]:
    """Normalise a caller's cache argument to a cache instance or ``None``.

    ``"auto"`` means the default directory, honoring ``REPRO_CTD_CACHE_OFF``
    (the common entry-point setting); an explicit :class:`DecompositionCache`
    or directory path is always honored (tests point these at temp dirs
    regardless of the ambient environment); ``None`` disables caching.
    """
    if cache is None:
        return None
    if isinstance(cache, DecompositionCache):
        return cache
    if cache == "auto":
        if cache_disabled():
            return None
        return DecompositionCache()
    return DecompositionCache(str(cache))
