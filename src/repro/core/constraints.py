"""Subtree constraints on (partial) tree decompositions (Section 6).

A *subtree constraint* is a Boolean property of partial tree decompositions.
A full tree decomposition satisfies the constraint if the property holds for
the partial decomposition induced by every subtree.  The three constraints
proposed in the paper are implemented here:

* :class:`ConnectedCoverConstraint` (``ConCov``) — every bag has an edge
  cover of size ≤ k whose edges form a connected subhypergraph (rules out
  Cartesian products when the decomposition drives query evaluation);
* :class:`ShallowCyclicityConstraint` (``ShallowCyc_d``) — every bag at depth
  greater than ``d`` is covered by a single edge (a cyclic "core" with
  acyclic parts attached);
* :class:`PartitionClusteringConstraint` (``PartClust``) — in a distributed
  setting with partitioned relations, each partition's nodes must form a
  connected subtree disjoint from the other partitions' subtrees.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import TreeNode
from repro.core.covers import connected_edge_set, enumerate_covers, has_connected_cover

Bag = FrozenSet[Vertex]


class SubtreeConstraint:
    """Base class of subtree constraints.

    ``holds`` receives a partial tree decomposition (a TD of an induced
    subhypergraph, with bags drawn from the original hypergraph's vertices)
    and must be a pure function of it.  ``holds_recursively`` additionally
    checks every subtree, which is what "a TD satisfies 𝒞" means.
    """

    #: Trivial constraints hold for every decomposition; the solvers skip
    #: materialising partial decompositions for them entirely.
    trivial = False

    def holds(self, partial_td: TreeDecomposition) -> bool:
        raise NotImplementedError

    def holds_recursively(self, td: TreeDecomposition) -> bool:
        for node in td.tree.nodes():
            sub = _subtree_decomposition(td, node)
            if not self.holds(sub):
                return False
        return True

    def filter_bags(self, bags: Iterable[Bag]) -> Set[Bag]:
        """Bags that could possibly appear in a satisfying decomposition.

        The default keeps everything; bag-level constraints (ConCov) override
        this to prune the candidate set before the solver runs.
        """
        return set(bags)

    def __and__(self, other: "SubtreeConstraint") -> "AndConstraint":
        return AndConstraint([self, other])


def _subtree_decomposition(td: TreeDecomposition, node: TreeNode) -> TreeDecomposition:
    """The partial tree decomposition induced by the subtree rooted at ``node``."""
    from repro.decompositions.tree import RootedTree

    tree = RootedTree()

    def copy(source: TreeNode, parent: Optional[TreeNode]) -> None:
        new_node = tree.new_node(parent, **dict(source.data))
        for child in source.children:
            copy(child, new_node)

    copy(node, None)
    return TreeDecomposition(td.hypergraph, tree)


class NoConstraint(SubtreeConstraint):
    """The trivial constraint satisfied by every decomposition."""

    trivial = True

    def holds(self, partial_td: TreeDecomposition) -> bool:
        return True


class AndConstraint(SubtreeConstraint):
    """Conjunction of several subtree constraints."""

    def __init__(self, constraints: Sequence[SubtreeConstraint]):
        self.constraints = list(constraints)
        self.trivial = all(c.trivial for c in self.constraints)

    def holds(self, partial_td: TreeDecomposition) -> bool:
        return all(c.holds(partial_td) for c in self.constraints)

    def filter_bags(self, bags: Iterable[Bag]) -> Set[Bag]:
        result = set(bags)
        for constraint in self.constraints:
            result = constraint.filter_bags(result)
        return result


class ConnectedCoverConstraint(SubtreeConstraint):
    """``ConCov``: every bag has a connected edge cover of size ≤ k."""

    def __init__(self, hypergraph: Hypergraph, k: int):
        self.hypergraph = hypergraph
        self.k = k
        self._cache: Dict[Bag, bool] = {}

    def _bag_ok(self, bag: Bag) -> bool:
        if bag not in self._cache:
            self._cache[bag] = has_connected_cover(self.hypergraph, bag, self.k)
        return self._cache[bag]

    def holds(self, partial_td: TreeDecomposition) -> bool:
        return all(self._bag_ok(bag) for bag in partial_td.bags())

    def filter_bags(self, bags: Iterable[Bag]) -> Set[Bag]:
        return {bag for bag in bags if self._bag_ok(bag)}


class ShallowCyclicityConstraint(SubtreeConstraint):
    """``ShallowCyc_d``: cyclicity depth of the decomposition is at most ``d``."""

    def __init__(self, hypergraph: Hypergraph, depth: int):
        self.hypergraph = hypergraph
        self.depth = depth
        self._single_cover_cache: Dict[Bag, bool] = {}

    def single_edge_coverable(self, bag: Bag) -> bool:
        """Whether some single edge covers the bag (memoised per bag)."""
        if bag not in self._single_cover_cache:
            self._single_cover_cache[bag] = any(
                bag <= edge.vertices for edge in self.hypergraph.edges
            )
        return self._single_cover_cache[bag]

    def cyclicity_depth(self, partial_td: TreeDecomposition) -> int:
        """The least ``d`` such that all bags at depth > d are single-edge covered."""
        depth = 0
        for node in partial_td.tree.nodes():
            if not self.single_edge_coverable(partial_td.bag(node)):
                depth = max(depth, partial_td.tree.depth(node))
        return depth

    def holds(self, partial_td: TreeDecomposition) -> bool:
        return self.cyclicity_depth(partial_td) <= self.depth


class PartitionClusteringConstraint(SubtreeConstraint):
    """``PartClust``: partitions of the relations induce disjoint subtrees.

    ``partition_of`` maps every edge name of the hypergraph to a partition
    label.  The constraint holds for a (partial) decomposition if there is a
    node labelling ``f`` such that every bag is covered (with ≤ k edges) by
    edges of its node's partition and, for every partition, the nodes with
    that label form a connected subtree disjoint from the others.
    """

    def __init__(self, hypergraph: Hypergraph, partition_of: Mapping[str, str], k: int):
        self.hypergraph = hypergraph
        self.partition_of = dict(partition_of)
        self.k = k
        self.partitions = sorted(set(self.partition_of.values()))
        self._options_cache: Dict[Bag, FrozenSet[str]] = {}

    def _partition_options(self, bag: Bag) -> FrozenSet[str]:
        """Partitions whose edges alone can cover the bag with ≤ k edges."""
        if bag in self._options_cache:
            return self._options_cache[bag]
        if not bag:
            self._options_cache[bag] = frozenset(self.partitions)
            return self._options_cache[bag]
        options = set()
        for partition in self.partitions:
            names = [
                name
                for name, label in self.partition_of.items()
                if label == partition and name in self.hypergraph.edge_names
            ]
            if not names:
                continue
            restricted = self.hypergraph.restrict_edges(names)
            if not bag <= restricted.vertices:
                continue
            covers = list(enumerate_covers(restricted, bag, self.k))
            if covers:
                options.add(partition)
        self._options_cache[bag] = frozenset(options)
        return self._options_cache[bag]

    def holds(self, partial_td: TreeDecomposition) -> bool:
        nodes = partial_td.tree.nodes()
        options: List[FrozenSet[str]] = []
        for node in nodes:
            opts = self._partition_options(partial_td.bag(node))
            if not opts:
                return False
            options.append(opts)
        # Small trees: search for an assignment whose partition classes are
        # connected subtrees.  Backtracking over the pre-order node list.
        parent_index = {}
        index_of = {node.node_id: i for i, node in enumerate(nodes)}
        for i, node in enumerate(nodes):
            parent_index[i] = (
                index_of[node.parent.node_id] if node.parent is not None else None
            )
        assignment: List[Optional[str]] = [None] * len(nodes)

        def classes_connected() -> bool:
            for partition in set(assignment):
                members = [i for i, p in enumerate(assignment) if p == partition]
                roots = [
                    i
                    for i in members
                    if parent_index[i] is None or assignment[parent_index[i]] != partition
                ]
                if len(roots) > 1:
                    return False
            return True

        def backtrack(position: int) -> bool:
            if position == len(nodes):
                return classes_connected()
            for partition in options[position]:
                assignment[position] = partition
                parent = parent_index[position]
                # Prune: if this node starts a new occurrence of a partition
                # that already has a class root elsewhere, the classes cannot
                # all be connected subtrees.
                if parent is None or assignment[parent] != partition:
                    other_roots = sum(
                        1
                        for i in range(position)
                        if assignment[i] == partition
                        and (
                            parent_index[i] is None
                            or assignment[parent_index[i]] != partition
                        )
                    )
                    if other_roots >= 1:
                        assignment[position] = None
                        continue
                if backtrack(position + 1):
                    return True
                assignment[position] = None
            return False

        return backtrack(0)

    def filter_bags(self, bags: Iterable[Bag]) -> Set[Bag]:
        return {bag for bag in bags if self._partition_options(bag)}
