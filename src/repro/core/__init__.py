"""The paper's primary contribution.

* candidate bags ``Soft_{H,k}`` and their iterated refinement ``Soft^i_{H,k}``
  (Definitions 3 and 6),
* the CandidateTD solver (Algorithm 1) and its constrained / preference-aware
  variant (Algorithm 2),
* soft hypertree width ``shw`` and the hierarchy ``shw_i``,
* subtree constraints (ConCov, ShallowCyc_d, PartClust) and preference
  orders (toptds),
* exact lazy any-k (top-k) enumeration of candidate tree decompositions
  ranked by a preference, on the same shared solver core as Algorithms 1
  and 2,
* the canonical solve front door (``SolveRequest`` → ``execute`` →
  ``SolveResult``) and the persistent decomposition cache behind it,
* the (Institutional) Robber and Marshals games of Appendix A.1.
"""

from repro.core.covers import (
    connected_edge_set,
    enumerate_covers,
    greedy_edge_cover,
    has_connected_cover,
    minimum_edge_cover,
)
from repro.core.candidate_bags import (
    SoftBagGenerator,
    iterated_soft_candidate_bags,
    soft_bag,
    soft_candidate_bags,
)
from repro.core.blocks import Block, BlockIndex
from repro.core.options import FragmentEvaluator, SolverCore
from repro.core.ctd import CandidateTDSolver, candidate_td
from repro.core.constraints import (
    AndConstraint,
    ConnectedCoverConstraint,
    NoConstraint,
    PartitionClusteringConstraint,
    ShallowCyclicityConstraint,
    SubtreeConstraint,
)
from repro.core.preferences import (
    CostPreference,
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
    NoPreference,
    Preference,
    ShallowCyclicityPreference,
)
from repro.core.constrained import ConstrainedCTDSolver, constrained_candidate_td
from repro.core.enumerate import CTDEnumerator, enumerate_ctds
from repro.core.soft import (
    soft_decomposition,
    soft_decomposition_to_ghd,
    soft_hypertree_width,
    shw_i_leq,
    shw_leq,
)
from repro.core.solve import SolveRequest, SolveResult, execute, lookup
from repro.core.cache import DecompositionCache, resolve_cache
from repro.core.games import (
    irmg_width,
    marshals_width,
    marshals_have_winning_strategy,
    irmg_have_winning_strategy,
)

__all__ = [
    "connected_edge_set",
    "enumerate_covers",
    "greedy_edge_cover",
    "has_connected_cover",
    "minimum_edge_cover",
    "SoftBagGenerator",
    "soft_candidate_bags",
    "iterated_soft_candidate_bags",
    "soft_bag",
    "Block",
    "BlockIndex",
    "FragmentEvaluator",
    "SolverCore",
    "CandidateTDSolver",
    "candidate_td",
    "SubtreeConstraint",
    "NoConstraint",
    "AndConstraint",
    "ConnectedCoverConstraint",
    "ShallowCyclicityConstraint",
    "PartitionClusteringConstraint",
    "Preference",
    "CostPreference",
    "MonotoneCostPreference",
    "NoPreference",
    "NodeCountPreference",
    "MaxBagSizePreference",
    "ShallowCyclicityPreference",
    "LexicographicPreference",
    "ConstrainedCTDSolver",
    "constrained_candidate_td",
    "CTDEnumerator",
    "enumerate_ctds",
    "SolveRequest",
    "SolveResult",
    "execute",
    "lookup",
    "DecompositionCache",
    "resolve_cache",
    "soft_hypertree_width",
    "soft_decomposition",
    "soft_decomposition_to_ghd",
    "shw_leq",
    "shw_i_leq",
    "marshals_width",
    "marshals_have_winning_strategy",
    "irmg_width",
    "irmg_have_winning_strategy",
]
