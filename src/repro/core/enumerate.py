"""Ranked enumeration of candidate tree decompositions.

The experiments of Section 7 need more than a single optimal decomposition:
they evaluate the top-10 cheapest CTDs per query, and compare random CTDs
with and without the ConCov constraint.  This module enumerates CompNF CTDs
over a candidate bag set bottom-up over blocks (the same dynamic-programming
structure as Algorithms 1 and 2), keeping a beam of the best partial
decompositions per block, and returns the cheapest ``limit`` distinct
decompositions according to a preference order.

Real-world candidate bag sets are tiny (Table 1 of the paper reports 9–25
bags), so with the default beam this enumeration is exact for the instances
the benchmarks use.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.core.blocks import Bag, Block, BlockIndex
from repro.core.constraints import NoConstraint, SubtreeConstraint
from repro.core.fragments import (
    Fragment,
    fragment_to_decomposition,
    make_fragment,
)
from repro.core.preferences import NoPreference, Preference


class CTDEnumerator:
    """Enumerate CompNF CTDs over a candidate bag set, ranked by a preference."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        constraint: Optional[SubtreeConstraint] = None,
        preference: Optional[Preference] = None,
        beam: int = 32,
        combinations_per_basis: int = 64,
    ):
        self.hypergraph = hypergraph
        self.constraint = constraint if constraint is not None else NoConstraint()
        self.preference = preference if preference is not None else NoPreference()
        filtered = self.constraint.filter_bags(
            {frozenset(bag) for bag in candidate_bags if bag}
        )
        self.index = BlockIndex(hypergraph, filtered)
        self.beam = beam
        self.combinations_per_basis = combinations_per_basis
        self._options: Dict[Block, List[Tuple[object, Fragment]]] = {}

    # -- enumeration over blocks ----------------------------------------------------

    def _key(self, fragment: Fragment):
        # Partial decompositions are the subtrees rooted at the basis node;
        # the block head (the parent's bag) is evaluated at the parent level.
        decomposition = fragment_to_decomposition(self.hypergraph, fragment)
        return self.preference.key(decomposition)

    def _satisfies_constraint(self, fragment: Fragment) -> bool:
        decomposition = fragment_to_decomposition(self.hypergraph, fragment)
        return self.constraint.holds_recursively(decomposition)

    def _enumerate_block(self, block: Block) -> List[Tuple[object, Fragment]]:
        """Options (ranked fragments rooted at a basis bag) for a block."""
        if block in self._options:
            return self._options[block]
        options: Dict[Fragment, object] = {}
        for candidate in self.index.candidate_bags:
            if candidate == block.head:
                continue
            if not candidate <= block.union:
                continue
            subs = self.index.sub_blocks(candidate, block)
            non_trivial = [sub for sub in subs if sub.component]
            # Mirror of the basis conditions 1 and 2.
            covered = set(candidate)
            for sub in subs:
                covered.update(sub.component)
            if not block.component <= covered:
                continue
            if any(
                edge.vertices & block.component and not edge.vertices <= covered
                for edge in self.hypergraph.edges
            ):
                continue
            sub_option_lists = [self._options.get(sub, []) for sub in non_trivial]
            if any(not opts for opts in sub_option_lists):
                continue
            child_lists = [
                [fragment for _, fragment in opts] for opts in sub_option_lists
            ]
            for combination in islice(
                product(*child_lists), self.combinations_per_basis
            ):
                fragment = make_fragment(candidate, tuple(combination))
                if fragment in options:
                    continue
                if not self._satisfies_constraint(fragment):
                    continue
                options[fragment] = self._key(fragment)
        ranked = sorted(options.items(), key=lambda item: (item[1], repr(item[0])))
        result = [(key, fragment) for fragment, key in ranked[: self.beam]]
        self._options[block] = result
        return result

    def enumerate(self, limit: int = 10) -> List[TreeDecomposition]:
        """The ``limit`` best distinct CTDs (may be fewer if fewer exist)."""
        for block in self.index.topological_order():
            if block.component:
                self._enumerate_block(block)
            else:
                self._options[block] = [(0, None)]
        root_options = self._options.get(self.index.root_block, [])
        decompositions = []
        seen = set()
        for _, fragment in root_options:
            if fragment is None:
                continue
            decomposition = fragment_to_decomposition(self.hypergraph, fragment)
            canonical = decomposition.canonical_form()
            if canonical in seen:
                continue
            seen.add(canonical)
            decompositions.append(decomposition)
            if len(decompositions) >= limit:
                break
        return decompositions


def enumerate_ctds(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[FrozenSet[Vertex]],
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    limit: int = 10,
    beam: int = 32,
) -> List[TreeDecomposition]:
    """Enumerate up to ``limit`` CompNF CTDs ranked by ``preference``."""
    enumerator = CTDEnumerator(
        hypergraph,
        candidate_bags,
        constraint=constraint,
        preference=preference,
        beam=max(beam, limit),
    )
    return enumerator.enumerate(limit=limit)
