"""Exact lazy any-k ranked enumeration of candidate tree decompositions.

The experiments of Section 7 need more than a single optimal decomposition:
they evaluate the top-10 cheapest CTDs per query, and compare random CTDs
with and without the ConCov constraint.  This module enumerates CompNF CTDs
over a candidate bag set in *exact* preference order: ``enumerate(limit=k)``
returns the true ``k`` best distinct decompositions, however large the
option space is.  (The pre-PR-4 eager beam and its truncation knobs are
gone entirely; ``enumerate_ctds`` has no approximation parameters.)

The enumeration runs over the same block dynamic program as Algorithms 1
and 2, via the shared :class:`repro.core.options.SolverCore`:

* every block with a component has one *option stream* per statically
  feasible probe ``(candidate, live sub-blocks)``
  (:meth:`repro.core.blocks.BlockIndex.candidate_probes`): the fragments
  rooted at the candidate, in ``(preference key, canonical tie key)`` order;
* a probe stream is produced Lawler-style: a heap of *configurations*
  (one option index per live sub-block) seeded with ``(0, …, 0)``; popping
  the best configuration emits its fragment and pushes the one-step
  *deviations* (one index advanced).  Constraint-rejected fragments are
  skipped but still expanded, so their successors are never lost;
* a probe's child slot does not consume the sub-block's options in the
  sub-block's own key order but in *parent-contribution* order — the
  sub-block's probe streams merged by
  :meth:`repro.core.preferences.Preference.child_rank_key` under the
  parent's bag.  This is what keeps Equation (6) costs exact: two subtrees
  with equal cost but different root bags contribute differently to the
  parent through the parent→child edge term;
* the root block's merged stream (ranked by the fragments' own keys) yields
  the final decompositions, deduplicated by canonical form.

Keys compose bottom-up through the shared fragment memo tables
(:class:`repro.core.options.FragmentEvaluator`) for monotone preferences —
a candidate fragment is never materialised as a :class:`TreeDecomposition`
unless a non-trivial constraint needs to inspect it.

Laziness requires the preference to certify the ``order_monotone`` contract
(see :mod:`repro.core.preferences`).  Preferences that cannot — arbitrary
non-monotone cost callables, shallow cyclicity, unsafe lexicographic
combinations — take the exhaustive path instead: every block's full option
list is built bottom-up (no beam, no caps) and sorted by the same composite
order, which is equally exact, merely not lazy.  Ties are always broken by
:func:`repro.core.fragments.fragment_sort_key` — canonical sorted-vertex
tuples, never ``repr`` — so the ranking is reproducible across processes
and hash seeds.  The brute-force specification this module is
property-tested against is
:func:`repro.core.reference.reference_enumerate_ctds`.
"""

from __future__ import annotations


from heapq import heappop, heappush
from itertools import islice, product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.core.blocks import Bag
from repro.core.constraints import SubtreeConstraint
from repro.core.fragments import (
    Fragment,
    fragment_sort_key,
    fragment_to_decomposition,
    make_fragment,
)
from repro.core.options import SolverCore
from repro.core.preferences import Preference
from repro.runtime.budget import Budget, BudgetExceeded, SolveOutcome, completed_outcome

__all__ = ["CTDEnumerator", "enumerate_ctds", "fragment_to_decomposition"]

#: A ranked option: ``(key, tie, state, fragment)``.  ``tie`` is the
#: canonical fragment sort key, so ``(key, tie)`` is a total order.
_Entry = Tuple


class _ProbeStream:
    """One block probe's fragments in exact ``(key, tie)`` order.

    Lawler-style successor enumeration: a configuration assigns each live
    sub-block an index into its merged (parent-contribution ordered) option
    list; the heap pops configurations by the composed fragment's exact
    ``(key, tie)`` and pushes the one-step deviations of whatever it pops.
    The ``order_monotone`` contract guarantees a deviation never composes a
    fragment that sorts before its origin, so emission order is exact.
    """

    def __init__(self, enumerator: "CTDEnumerator", cand_id: int, live_subs):
        self._enumerator = enumerator
        self._bag = enumerator.core.index.candidate_bags[cand_id]
        self._merges = [
            enumerator._merged_stream(sub, self._bag) for sub in live_subs
        ]
        self._heap: List[Tuple] = []
        self._emitted: List[_Entry] = []
        self._seen_configs = set()
        self._push((0,) * len(self._merges))

    def _push(self, config: Tuple[int, ...]) -> None:
        if config in self._seen_configs:
            return
        self._seen_configs.add(config)
        children = []
        for merge, position in zip(self._merges, config):
            entry = merge.get(position)
            if entry is None:
                # This slot's stream is exhausted; every deviation of the
                # config shares the index, so the whole config is dead.
                return
            children.append(entry[3])
        fragment = make_fragment(self._bag, children)
        key, state = self._enumerator.core.evaluator.state_of(fragment)
        heappush(
            self._heap, (key, fragment_sort_key(fragment), config, state, fragment)
        )

    def get(self, i: int) -> Optional[_Entry]:
        """The ``i``-th compliant option, or ``None`` if fewer exist."""
        emitted = self._emitted
        budget = self._enumerator.core.budget
        while len(emitted) <= i and self._heap:
            if budget is not None:
                budget.tick()
            key, tie, config, state, fragment = heappop(self._heap)
            for slot in range(len(config)):
                deviation = (
                    config[:slot] + (config[slot] + 1,) + config[slot + 1 :]
                )
                self._push(deviation)
            if self._enumerator.core.evaluator.compliant(fragment):
                emitted.append((key, tie, state, fragment))
        return emitted[i] if i < len(emitted) else None


class _MergedStream:
    """A block's options across all its probes, in parent-contribution order.

    ``parent_bag`` identifies the consumer: options are ranked by
    ``preference.child_rank_key(parent_bag, state)`` (the fragments' own
    keys when ``parent_bag`` is ``None``, i.e. at the root).  Each probe
    stream is already sorted consistently with any parent's contribution
    order (rank is a strictly monotone function of the key for a fixed root
    bag), so a heap of per-probe cursors yields the exact merged order.
    """

    def __init__(self, enumerator: "CTDEnumerator", block_id: int, parent_bag):
        self._enumerator = enumerator
        self._block_id = block_id
        self._parent_bag = parent_bag
        self._heap: Optional[List[Tuple]] = None
        self._entries: List[_Entry] = []

    def _rank(self, entry: _Entry):
        return self._enumerator.core.preference.child_rank_key(
            self._parent_bag, entry[2]
        )

    def _initialise(self) -> None:
        self._heap = []
        probes = self._enumerator._probes[self._block_id]
        for probe_idx in range(len(probes)):
            stream = self._enumerator._probe_stream(self._block_id, probe_idx)
            entry = stream.get(0)
            if entry is not None:
                heappush(self._heap, (self._rank(entry), entry[1], probe_idx, 0))

    def get(self, i: int) -> Optional[_Entry]:
        """The ``i``-th option over all probes, or ``None`` if fewer exist."""
        if self._heap is None:
            self._initialise()
        entries = self._entries
        while len(entries) <= i and self._heap:
            _, _, probe_idx, position = heappop(self._heap)
            stream = self._enumerator._probe_stream(self._block_id, probe_idx)
            entries.append(stream.get(position))
            advanced = stream.get(position + 1)
            if advanced is not None:
                heappush(
                    self._heap,
                    (self._rank(advanced), advanced[1], probe_idx, position + 1),
                )
        return entries[i] if i < len(entries) else None


class CTDEnumerator:
    """Enumerate CompNF CTDs over a candidate bag set, ranked by a preference."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        candidate_bags: Iterable[Bag],
        constraint: Optional[SubtreeConstraint] = None,
        preference: Optional[Preference] = None,
        budget: Optional[Budget] = None,
        shards: int = 1,
        pool=None,
    ):
        self.core = SolverCore(
            hypergraph,
            candidate_bags,
            constraint,
            preference,
            budget=budget,
            shards=shards,
            pool=pool,
        )
        self.budget = budget
        self.hypergraph = hypergraph
        self.constraint = self.core.constraint
        self.preference = self.core.preference
        self.index = self.core.index
        self._lazy = self.preference.monotone and self.preference.order_monotone
        self._probe_streams: Dict[Tuple[int, int], _ProbeStream] = {}
        self._merged_streams: Dict[Tuple[int, Bag], _MergedStream] = {}
        self._exhaustive: Optional[List[List[_Entry]]] = None
        self._probes_cache: Optional[List] = None

    @property
    def _probes(self):
        # Lazy: probe-table construction is budget-governed, so it must run
        # inside iter_decompositions' anytime boundary, not the constructor.
        if self._probes_cache is None:
            self._probes_cache = self.core.probe_tables()[0]
        return self._probes_cache

    @property
    def outcome(self) -> SolveOutcome:
        """How the last enumeration ended (``complete`` without a budget)."""
        budget = self.budget
        return budget.outcome() if budget is not None else completed_outcome()

    # -- lazy streams ----------------------------------------------------------

    def _probe_stream(self, block_id: int, probe_idx: int) -> _ProbeStream:
        key = (block_id, probe_idx)
        stream = self._probe_streams.get(key)
        if stream is None:
            cand_id, live_subs = self._probes[block_id][probe_idx]
            stream = _ProbeStream(self, cand_id, live_subs)
            self._probe_streams[key] = stream
        return stream

    def _merged_stream(self, block_id: int, parent_bag) -> _MergedStream:
        key = (block_id, parent_bag)
        stream = self._merged_streams.get(key)
        if stream is None:
            stream = _MergedStream(self, block_id, parent_bag)
            self._merged_streams[key] = stream
        return stream

    # -- exhaustive fallback ---------------------------------------------------

    def _exhaustive_options(self) -> List[List[_Entry]]:
        """Full sorted option tables, bottom-up — exact without laziness.

        Used when the preference cannot certify ``order_monotone``.  Keys
        still compose through the shared fragment memo (or the memoised
        materialisation for non-monotone preferences); nothing is truncated.
        """
        if self._exhaustive is not None:
            return self._exhaustive
        index = self.index
        budget = self.budget
        evaluator = self.core.evaluator
        component_masks = index.mask_arrays()[1]
        candidate_bags = index.candidate_bags
        options: List[List[_Entry]] = [[] for _ in range(index.block_count())]
        for block_id in index.topological_order_ids():
            if not component_masks[block_id]:
                continue
            block_options: List[_Entry] = []
            for cand_id, live_subs in self._probes[block_id]:
                child_lists = [options[sub] for sub in live_subs]
                if any(not child_list for child_list in child_lists):
                    continue
                bag = candidate_bags[cand_id]
                for combination in product(*child_lists):
                    if budget is not None:
                        budget.tick()
                    fragment = make_fragment(
                        bag, [entry[3] for entry in combination]
                    )
                    if not evaluator.compliant(fragment):
                        continue
                    key, state = evaluator.state_of(fragment)
                    block_options.append(
                        (key, fragment_sort_key(fragment), state, fragment)
                    )
            block_options.sort(key=lambda entry: (entry[0], entry[1]))
            options[block_id] = block_options
        self._exhaustive = options
        return options

    # -- enumeration -----------------------------------------------------------

    def _root_entries(self, root_id: int) -> Iterator[_Entry]:
        if self._lazy:
            stream = self._merged_stream(root_id, None)
            position = 0
            while True:
                entry = stream.get(position)
                if entry is None:
                    return
                yield entry
                position += 1
        else:
            yield from self._exhaustive_options()[root_id]

    def iter_decompositions(self) -> Iterator[TreeDecomposition]:
        """All distinct CTDs in exact ``(preference, canonical tie)`` order.

        Under a budget the generator is *anytime*: when the budget exhausts
        (or Ctrl-C arrives) it stops cleanly, and everything already
        yielded is an exact prefix of the unbudgeted enumeration order —
        check :attr:`outcome` for how the run ended.
        """
        index = self.index
        budget = self.budget
        root_id = index.block_id(index.root_block)
        assert root_id is not None
        if not index.mask_arrays()[1][root_id]:
            # Vertex-less hypergraph: the single-empty-bag CTD is the only
            # candidate, and the one decomposition not reachable via probes.
            trivial = self.core.trivial_decomposition()
            if trivial is not None:
                yield trivial
            return
        seen = set()
        try:
            for entry in self._root_entries(root_id):
                decomposition = self.core.evaluator.materialise(entry[3])
                canonical = decomposition.canonical_form()
                if canonical in seen:
                    continue
                seen.add(canonical)
                yield decomposition
        except BudgetExceeded:
            return  # anytime: everything yielded so far is an exact prefix
        except KeyboardInterrupt:
            if budget is None:
                raise
            budget.mark_interrupted()
            return

    def enumerate(self, limit: int = 10) -> List[TreeDecomposition]:
        """The ``limit`` best distinct CTDs (may be fewer if fewer exist)."""
        if limit <= 0:
            return []
        return list(islice(self.iter_decompositions(), limit))


def enumerate_ctds(
    hypergraph: Hypergraph,
    candidate_bags: Iterable[FrozenSet[Vertex]],
    constraint: Optional[SubtreeConstraint] = None,
    preference: Optional[Preference] = None,
    limit: int = 10,
    budget: Optional[Budget] = None,
    shards: int = 1,
    pool=None,
) -> List[TreeDecomposition]:
    """The exact ``limit`` best CompNF CTDs ranked by ``preference``.

    With a ``budget`` the call may return fewer than ``limit``
    decompositions: what it returns is always an exact prefix of the
    unbudgeted ranking, and ``budget.status`` / ``budget.outcome()`` say
    why it stopped.
    """
    enumerator = CTDEnumerator(
        hypergraph,
        candidate_bags,
        constraint=constraint,
        preference=preference,
        budget=budget,
        shards=shards,
        pool=pool,
    )
    return enumerator.enumerate(limit=limit)
