"""Immutable decomposition fragments shared by the solvers and the enumerator.

A *fragment* encodes the subtree of a partial decomposition as a nested pair
``(bag, (child fragments...))``.  Fragments are plain tuples of frozensets:
hashable, comparable for equality, and cheap to share structurally — the
event-driven Algorithm 2 (:mod:`repro.core.constrained`) and the exact lazy
enumerator (:mod:`repro.core.enumerate`) both build larger fragments out of
already-evaluated child fragments, so constraint checks and preference keys
are memoised per fragment (in the shared
:class:`repro.core.options.FragmentEvaluator`) instead of being recomputed
for every probe of the dynamic program.

Children are kept in a canonical (deterministically sorted) order so that two
structurally equal partial decompositions are represented by the *same*
fragment value and hit the same memo entries.  The same
:func:`fragment_sort_key` doubles as the enumerator's ranking tie-break: it
is built from sorted vertex strings, so the ranked order is reproducible
across processes and hash seeds.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode

Bag = FrozenSet[Vertex]

# A fragment is an immutable encoding of a decomposition subtree:
# (bag, (child fragments...)).
Fragment = Tuple


# fragment -> sort key.  Sort keys are recomputed on every probe of the
# solvers' worklists while fragments are immutable and shared, so the
# recursion is memoised (a fragment's key embeds its children's keys, which
# are therefore already cached when the parent is first sorted).  The cache
# outlives individual solvers, so it is cleared when it exceeds the bound —
# correctness never depends on a hit.
_sort_key_cache: dict = {}
_SORT_KEY_CACHE_BOUND = 1 << 16


def fragment_sort_key(fragment: Fragment) -> Tuple:
    """A deterministic total order on fragments (used to canonicalise children).

    ``repr`` of a frozenset depends on hash-table layout, so the key is built
    from sorted vertex strings instead — equal fragments always compare equal
    and sort identically, which keeps the per-fragment memo tables effective.
    """
    key = _sort_key_cache.get(fragment)
    if key is None:
        bag, children = fragment
        key = (
            tuple(sorted(map(str, bag))),
            tuple(fragment_sort_key(child) for child in children),
        )
        if len(_sort_key_cache) >= _SORT_KEY_CACHE_BOUND:
            _sort_key_cache.clear()
        _sort_key_cache[fragment] = key
    return key


def make_fragment(bag: Bag, children: Iterable[Fragment]) -> Fragment:
    """Build the canonical fragment with root ``bag`` and the given children."""
    return (bag, tuple(sorted(children, key=fragment_sort_key)))


def fragment_to_decomposition(
    hypergraph: Hypergraph, fragment: Fragment, head: Optional[Bag] = None
) -> TreeDecomposition:
    """Materialise a fragment (optionally below a head bag) as a decomposition."""
    tree = RootedTree()

    def build(node_fragment: Fragment, parent: Optional[TreeNode]) -> None:
        bag, children = node_fragment
        node = tree.new_node(parent, bag=bag)
        for child in children:
            build(child, node)

    if head is not None:
        root = tree.new_node(None, bag=head)
        build(fragment, root)
    else:
        build(fragment, None)
    return TreeDecomposition(hypergraph, tree)
