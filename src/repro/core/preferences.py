"""Preference orders (toptds) over partial tree decompositions (Section 6.1).

A *total quasiordering of partial tree decompositions* (toptd) ranks partial
decompositions; the constrained CandidateTD algorithm keeps, per block, a
globally minimal decomposition with respect to the toptd.  We model a toptd
by a key function: ``a ≤ b`` iff ``key(a) ≤ key(b)``, which covers cost
functions (the paper's main use case), shallow-cyclicity preferences and
lexicographic combinations.

Monotone preferences
--------------------

The paper's strongly monotone cost functions (Section 6.1) share a structural
property the event-driven Algorithm 2 exploits: the key of a partial
decomposition is determined by its root bag and the keys of the child
subtrees, so keys compose bottom-up without re-walking the subtree.  Such a
preference sets ``monotone = True`` and implements :meth:`fragment_state` /
:meth:`state_key`:

* ``fragment_state(bag, child_states)`` folds the root bag and the already
  computed child states into the state of the combined partial decomposition
  (states are opaque to the solver — a scalar for simple preferences, a
  ``(bag, cost)`` pair when edge terms need the child's root bag);
* ``state_key(state)`` projects a state to the comparable key, and must agree
  with ``key`` on the materialised decomposition.

Non-monotone preferences keep ``monotone = False`` and are evaluated by
materialising each (memoised) fragment — correct for arbitrary key functions,
just without the incremental fast path.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition


class Preference:
    """Base class: a total quasiorder given by a comparable key."""

    #: Whether keys compose bottom-up from child states (see module docstring).
    monotone = False

    def key(self, partial_td: TreeDecomposition):
        raise NotImplementedError

    def is_strictly_better(self, a: TreeDecomposition, b: TreeDecomposition) -> bool:
        """``a < b`` in the quasiorder."""
        return self.key(a) < self.key(b)

    # -- monotone composition (only for ``monotone = True``) -------------------

    def fragment_state(self, bag, child_states: Sequence):
        """State of the partial decomposition with root ``bag`` over the children."""
        raise NotImplementedError(f"{type(self).__name__} is not monotone")

    def state_key(self, state):
        """The comparable key of a composed state (defaults to the state itself)."""
        return state


class NoPreference(Preference):
    """All decompositions are equally preferred."""

    monotone = True

    def key(self, partial_td: TreeDecomposition):
        return 0

    def fragment_state(self, bag, child_states: Sequence):
        return 0


class CostPreference(Preference):
    """Order partial decompositions by an arbitrary cost function.

    The cost function receives the partial tree decomposition and returns a
    number; lower is better.  The paper's evaluation uses the two cost
    functions of Appendix C.2 (see :mod:`repro.db.cost`).  An arbitrary
    callable cannot be decomposed, so this class is evaluated on materialised
    decompositions; cost functions of the Equation (6) shape (per-node costs
    plus parent/child edge terms) should use :class:`MonotoneCostPreference`
    to unlock Algorithm 2's incremental fast path.
    """

    def __init__(self, cost_function: Callable[[TreeDecomposition], float]):
        self.cost_function = cost_function

    def key(self, partial_td: TreeDecomposition) -> float:
        return self.cost_function(partial_td)


class MonotoneCostPreference(CostPreference):
    """A strongly monotone cost: node costs plus parent→child edge costs.

    ``cost(T_u) = node_cost(B(u)) + Σ_c [cost(T_c) + edge_cost(B(u), B(c))]``
    — exactly the recursive shape of the paper's Equation (6), so the key of
    a fragment composes from its children's ``(bag, cost)`` states without
    revisiting the subtree.
    """

    monotone = True

    def __init__(
        self,
        node_cost: Callable[[frozenset], float],
        edge_cost: Callable[[frozenset, frozenset], float],
    ):
        self.node_cost = node_cost
        self.edge_cost = edge_cost
        super().__init__(self._decomposition_cost)

    def _decomposition_cost(self, partial_td: TreeDecomposition) -> float:
        def walk(node) -> float:
            bag = partial_td.bag(node)
            total = self.node_cost(bag)
            for child in node.children:
                total += walk(child)
                total += self.edge_cost(bag, partial_td.bag(child))
            return total

        return walk(partial_td.tree.root)

    def fragment_state(self, bag, child_states: Sequence) -> Tuple:
        total = self.node_cost(bag)
        for child_bag, child_cost in child_states:
            total += child_cost
            total += self.edge_cost(bag, child_bag)
        return (bag, total)

    def state_key(self, state) -> float:
        return state[1]


class NodeCountPreference(Preference):
    """Prefer decompositions with fewer nodes (a simple tie-breaker)."""

    monotone = True

    def key(self, partial_td: TreeDecomposition) -> int:
        return partial_td.tree.num_nodes()

    def fragment_state(self, bag, child_states: Sequence) -> int:
        return 1 + sum(child_states)


class MaxBagSizePreference(Preference):
    """Prefer decompositions whose largest bag is small (treewidth-style)."""

    monotone = True

    def key(self, partial_td: TreeDecomposition) -> int:
        # A bag-less partial decomposition (e.g. the placeholder option of a
        # trivially satisfied block) has no bags to measure.
        return max((len(bag) for bag in partial_td.bags()), default=0)

    def fragment_state(self, bag, child_states: Sequence) -> int:
        return max([len(bag), *child_states])


class ShallowCyclicityPreference(Preference):
    """Prefer decompositions of lower cyclicity depth (Example 5).

    This toptd is preference complete for ``ShallowCyc_d``: if any CTD of the
    hypergraph has cyclicity depth ≤ d then every globally minimal CTD under
    this order does, because all globally minimal CTDs share the least
    achievable cyclicity depth.
    """

    monotone = True

    def __init__(self, hypergraph: Hypergraph):
        from repro.core.constraints import ShallowCyclicityConstraint

        self._measure = ShallowCyclicityConstraint(hypergraph, depth=0)

    def key(self, partial_td: TreeDecomposition) -> int:
        return self._measure.cyclicity_depth(partial_td)

    # The composed state is the depth of the deepest bag *not* covered by a
    # single edge, or ``None`` when every bag is — ``cyclicity_depth``
    # reports 0 in both the "root is the deepest offender" and the "no
    # offender at all" case, so the key alone would not compose.
    def fragment_state(self, bag, child_states: Sequence):
        deepest = None
        for child_state in child_states:
            if child_state is not None and (deepest is None or child_state + 1 > deepest):
                deepest = child_state + 1
        if deepest is None and not self._measure.single_edge_coverable(bag):
            deepest = 0
        return deepest

    def state_key(self, state) -> int:
        return 0 if state is None else state


class LexicographicPreference(Preference):
    """Combine several preferences lexicographically (first is most important)."""

    def __init__(self, preferences: Sequence[Preference]):
        self.preferences = list(preferences)
        self.monotone = all(p.monotone for p in self.preferences)

    def key(self, partial_td: TreeDecomposition) -> Tuple:
        return tuple(p.key(partial_td) for p in self.preferences)

    def fragment_state(self, bag, child_states: Sequence) -> Tuple:
        return tuple(
            p.fragment_state(bag, [child[i] for child in child_states])
            for i, p in enumerate(self.preferences)
        )

    def state_key(self, state) -> Tuple:
        return tuple(p.state_key(s) for p, s in zip(self.preferences, state))
