"""Preference orders (toptds) over partial tree decompositions (Section 6.1).

A *total quasiordering of partial tree decompositions* (toptd) ranks partial
decompositions; the constrained CandidateTD algorithm keeps, per block, a
globally minimal decomposition with respect to the toptd.  We model a toptd
by a key function: ``a ≤ b`` iff ``key(a) ≤ key(b)``, which covers cost
functions (the paper's main use case), shallow-cyclicity preferences and
lexicographic combinations.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition


class Preference:
    """Base class: a total quasiorder given by a comparable key."""

    def key(self, partial_td: TreeDecomposition):
        raise NotImplementedError

    def is_strictly_better(self, a: TreeDecomposition, b: TreeDecomposition) -> bool:
        """``a < b`` in the quasiorder."""
        return self.key(a) < self.key(b)


class NoPreference(Preference):
    """All decompositions are equally preferred."""

    def key(self, partial_td: TreeDecomposition):
        return 0


class CostPreference(Preference):
    """Order partial decompositions by an arbitrary cost function.

    The cost function receives the partial tree decomposition and returns a
    number; lower is better.  The paper's evaluation uses the two cost
    functions of Appendix C.2 (see :mod:`repro.db.cost`), both of which are
    strongly monotone in the sense of Section 6.1.
    """

    def __init__(self, cost_function: Callable[[TreeDecomposition], float]):
        self.cost_function = cost_function

    def key(self, partial_td: TreeDecomposition) -> float:
        return self.cost_function(partial_td)


class NodeCountPreference(Preference):
    """Prefer decompositions with fewer nodes (a simple tie-breaker)."""

    def key(self, partial_td: TreeDecomposition) -> int:
        return partial_td.tree.num_nodes()


class MaxBagSizePreference(Preference):
    """Prefer decompositions whose largest bag is small (treewidth-style)."""

    def key(self, partial_td: TreeDecomposition) -> int:
        return max(len(bag) for bag in partial_td.bags())


class ShallowCyclicityPreference(Preference):
    """Prefer decompositions of lower cyclicity depth (Example 5).

    This toptd is preference complete for ``ShallowCyc_d``: if any CTD of the
    hypergraph has cyclicity depth ≤ d then every globally minimal CTD under
    this order does, because all globally minimal CTDs share the least
    achievable cyclicity depth.
    """

    def __init__(self, hypergraph: Hypergraph):
        from repro.core.constraints import ShallowCyclicityConstraint

        self._measure = ShallowCyclicityConstraint(hypergraph, depth=0)

    def key(self, partial_td: TreeDecomposition) -> int:
        return self._measure.cyclicity_depth(partial_td)


class LexicographicPreference(Preference):
    """Combine several preferences lexicographically (first is most important)."""

    def __init__(self, preferences: Sequence[Preference]):
        self.preferences = list(preferences)

    def key(self, partial_td: TreeDecomposition) -> Tuple:
        return tuple(p.key(partial_td) for p in self.preferences)
