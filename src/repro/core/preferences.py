"""Preference orders (toptds) over partial tree decompositions (Section 6.1).

A *total quasiordering of partial tree decompositions* (toptd) ranks partial
decompositions; the constrained CandidateTD algorithm keeps, per block, a
globally minimal decomposition with respect to the toptd.  We model a toptd
by a key function: ``a ≤ b`` iff ``key(a) ≤ key(b)``, which covers cost
functions (the paper's main use case), shallow-cyclicity preferences and
lexicographic combinations.

Monotone preferences
--------------------

The paper's strongly monotone cost functions (Section 6.1) share a structural
property the event-driven Algorithm 2 exploits: the key of a partial
decomposition is determined by its root bag and the keys of the child
subtrees, so keys compose bottom-up without re-walking the subtree.  Such a
preference sets ``monotone = True`` and implements :meth:`fragment_state` /
:meth:`state_key`:

* ``fragment_state(bag, child_states)`` folds the root bag and the already
  computed child states into the state of the combined partial decomposition
  (states are opaque to the solver — a scalar for simple preferences, a
  ``(bag, cost)`` pair when edge terms need the child's root bag);
* ``state_key(state)`` projects a state to the comparable key, and must agree
  with ``key`` on the materialised decomposition.

Non-monotone preferences keep ``monotone = False`` and are evaluated by
materialising each (memoised) fragment — correct for arbitrary key functions,
just without the incremental fast path.

Order-monotone preferences
--------------------------

The exact lazy any-k enumerator (:mod:`repro.core.enumerate`) streams each
block's options best-first and composes parent options out of ranked child
streams (Lawler-style deviations).  The enumeration order is the composite
``(key, canonical structural tie)``, so laziness is only sound when
replacing a child option with a later-ranked one can never make the parent
sort earlier — *including on ties*.  A preference certifies this with
``order_monotone = True``, which promises, for partial decompositions with
the **same root bag**:

* ``child_rank_key(P, ·)`` is a strictly monotone function of ``state_key``
  for every parent bag ``P``: equal keys get equal ranks, strictly larger
  keys strictly larger ranks, and
* a parent's key depends on each child slot only through the child's
  ``child_rank_key`` under the parent's bag, *strictly* increasing in it:
  equal ranks compose equal parent keys, a strictly larger rank a strictly
  larger parent key.  (Constant keys satisfy this vacuously — no two ranks
  ever differ.)

Strictness is what protects the tie component: under a non-strict (max-type)
key such as :class:`MaxBagSizePreference`, a deviation can raise a child's
key yet be absorbed into an *equal* parent key while the structural
tie-break moves backwards, so parents would be emitted out of order.  Such
preferences — max bag size, shallow cyclicity (whose composition state the
key does not even determine), arbitrary cost callables, lexicographic
combinations with a non-strict component — keep ``order_monotone = False``
and the enumerator falls back to its exhaustive (but still
fragment-memoised) exact path.

``child_rank_key(parent_bag, state)`` defaults to ``state_key(state)``; the
Equation (6) cost overrides it to fold the parent→child edge term in, which
is what makes its per-root child streams parent-sortable.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition


class Preference:
    """Base class: a total quasiorder given by a comparable key.

    Subclasses must implement :meth:`key`.  Two optional capability flags
    unlock solver fast paths — each is a *promise* about the key function,
    and claiming one falsely silently produces wrong optima/orders (the
    equivalence property tests are the safety net):

    * ``monotone = True`` additionally requires :meth:`fragment_state` (and
      :meth:`state_key` when the state is not itself the key) —
      Algorithm 2 and the enumerator then compose keys bottom-up without
      re-walking or materialising subtrees;
    * ``order_monotone = True`` (requires ``monotone``) certifies the
      strictness contract below — the any-k enumerator may then stream
      options lazily best-first instead of building full option tables.
    """

    #: Contract (``monotone = True``): for partial decompositions rooted at
    #: bag ``B`` with child subtrees ``T_1..T_n``,
    #: ``key(td) == state_key(fragment_state(B, [state(T_1)..state(T_n)]))``
    #: — the key is fully determined by the root bag and the child *states*,
    #: never by deeper structure.  Keeping ``False`` is always sound: the
    #: solvers fall back to evaluating ``key`` on memoised materialised
    #: decompositions.
    monotone = False

    #: Contract (``order_monotone = True``, requires ``monotone``): for
    #: same-rooted partial decompositions, (a) ``child_rank_key(P, ·)`` is a
    #: strictly monotone function of ``state_key`` for every parent bag
    #: ``P``, and (b) a parent's key depends on each child slot only through
    #: that child's ``child_rank_key`` under the parent's bag, *strictly*
    #: increasing in it (equal ranks ⇒ equal parent keys, larger rank ⇒
    #: strictly larger parent key; constant keys qualify vacuously).
    #: Strictness protects the canonical tie-break: a non-strict (max-type)
    #: key can absorb a worse child into an equal parent key while the tie
    #: regresses, emitting results out of order.  Keeping ``False`` is
    #: always sound — the enumerator uses its exhaustive (still exact,
    #: still memoised) path.
    order_monotone = False

    def key(self, partial_td: TreeDecomposition):
        """The comparable key of a (partial) decomposition; lower is better.

        Keys of one preference must be mutually comparable (the solvers
        sort and heap-merge them); ties are broken by the solver's
        canonical structural key, never by ``repr`` or id.
        """
        raise NotImplementedError

    def is_strictly_better(self, a: TreeDecomposition, b: TreeDecomposition) -> bool:
        """``a < b`` in the quasiorder."""
        return self.key(a) < self.key(b)

    # -- monotone composition (only for ``monotone = True``) -------------------

    def fragment_state(self, bag, child_states: Sequence):
        """State of the partial decomposition with root ``bag`` over the children.

        States are opaque to the solver (a scalar for simple preferences, a
        ``(bag, cost)`` pair when parent→child edge terms need the child's
        root bag) and are memoised per fragment; together with
        :meth:`state_key` this must reproduce :meth:`key` exactly (see the
        ``monotone`` contract).  Only called when ``monotone`` is true.
        """
        raise NotImplementedError(f"{type(self).__name__} is not monotone")

    def state_key(self, state):
        """Project a composed state to its comparable key.

        Defaults to the identity (state *is* the key); override when
        :meth:`fragment_state` must carry more than the key (e.g. the root
        bag for edge costs, or composition data the key alone cannot
        provide, as in :class:`ShallowCyclicityPreference`).
        """
        return state

    # -- lazy enumeration (only for ``order_monotone = True``) -----------------

    def child_rank_key(self, parent_bag, state):
        """Rank of a child option when streamed below ``parent_bag``.

        The enumerator feeds each child slot's options to its parent in
        increasing ``child_rank_key`` order (``parent_bag is None`` at the
        root).  Defaults to ``state_key(state)``; preferences whose parent
        keys see more than the child's own key override it — the
        Equation (6) cost folds the parent→child edge term in, which is
        what makes equal-cost subtrees with different root bags rank
        correctly.  Subject to the strictness contract on
        ``order_monotone``.
        """
        return self.state_key(state)


class NoPreference(Preference):
    """All decompositions are equally preferred."""

    monotone = True
    # All ranks are equal, so the strictness requirement holds vacuously.
    order_monotone = True

    def key(self, partial_td: TreeDecomposition):
        return 0

    def fragment_state(self, bag, child_states: Sequence):
        return 0


class CostPreference(Preference):
    """Order partial decompositions by an arbitrary cost function.

    The cost function receives the partial tree decomposition and returns a
    number; lower is better.  The paper's evaluation uses the two cost
    functions of Appendix C.2 (see :mod:`repro.db.cost`).  An arbitrary
    callable cannot be decomposed, so this class is evaluated on materialised
    decompositions; cost functions of the Equation (6) shape (per-node costs
    plus parent/child edge terms) should use :class:`MonotoneCostPreference`
    to unlock Algorithm 2's incremental fast path.
    """

    def __init__(self, cost_function: Callable[[TreeDecomposition], float]):
        self.cost_function = cost_function

    def key(self, partial_td: TreeDecomposition) -> float:
        return self.cost_function(partial_td)


class MonotoneCostPreference(CostPreference):
    """A strongly monotone cost: node costs plus parent→child edge costs.

    ``cost(T_u) = node_cost(B(u)) + Σ_c [cost(T_c) + edge_cost(B(u), B(c))]``
    — exactly the recursive shape of the paper's Equation (6), so the key of
    a fragment composes from its children's ``(bag, cost)`` states without
    revisiting the subtree.  The cost is also order monotone: under a parent
    bag ``P`` a child option of state ``(bag, cost)`` contributes exactly
    ``cost + edge_cost(P, bag)``, and the parent's total is the sum of those
    contributions plus terms the children do not touch, so
    :meth:`child_rank_key` folds the edge term in and same-rooted options
    rank consistently (equal subtree costs give equal contributions).
    """

    monotone = True
    order_monotone = True

    def __init__(
        self,
        node_cost: Callable[[frozenset], float],
        edge_cost: Callable[[frozenset, frozenset], float],
    ):
        self.node_cost = node_cost
        self.edge_cost = edge_cost
        super().__init__(self._decomposition_cost)

    def _decomposition_cost(self, partial_td: TreeDecomposition) -> float:
        def walk(node) -> float:
            bag = partial_td.bag(node)
            total = self.node_cost(bag)
            for child in node.children:
                total += walk(child)
                total += self.edge_cost(bag, partial_td.bag(child))
            return total

        return walk(partial_td.tree.root)

    def fragment_state(self, bag, child_states: Sequence) -> Tuple:
        total = self.node_cost(bag)
        for child_bag, child_cost in child_states:
            total += child_cost
            total += self.edge_cost(bag, child_bag)
        return (bag, total)

    def state_key(self, state) -> float:
        return state[1]

    def child_rank_key(self, parent_bag, state) -> float:
        child_bag, child_cost = state
        if parent_bag is None:
            return child_cost
        return child_cost + self.edge_cost(parent_bag, child_bag)


class NodeCountPreference(Preference):
    """Prefer decompositions with fewer nodes (a simple tie-breaker)."""

    monotone = True
    order_monotone = True

    def key(self, partial_td: TreeDecomposition) -> int:
        return partial_td.tree.num_nodes()

    def fragment_state(self, bag, child_states: Sequence) -> int:
        return 1 + sum(child_states)


class MaxBagSizePreference(Preference):
    """Prefer decompositions whose largest bag is small (treewidth-style).

    Not order monotone: the max-type key is not strict — a worse child can
    be absorbed by a larger sibling or the parent's own bag into an equal
    key while the structural tie-break regresses — so the exact enumerator
    uses its exhaustive path for this preference.
    """

    monotone = True

    def key(self, partial_td: TreeDecomposition) -> int:
        # A bag-less partial decomposition (e.g. the placeholder option of a
        # trivially satisfied block) has no bags to measure.
        return max((len(bag) for bag in partial_td.bags()), default=0)

    def fragment_state(self, bag, child_states: Sequence) -> int:
        return max([len(bag), *child_states])


class ShallowCyclicityPreference(Preference):
    """Prefer decompositions of lower cyclicity depth (Example 5).

    This toptd is preference complete for ``ShallowCyc_d``: if any CTD of the
    hypergraph has cyclicity depth ≤ d then every globally minimal CTD under
    this order does, because all globally minimal CTDs share the least
    achievable cyclicity depth.
    """

    monotone = True

    def __init__(self, hypergraph: Hypergraph):
        from repro.core.constraints import ShallowCyclicityConstraint

        self._measure = ShallowCyclicityConstraint(hypergraph, depth=0)

    def key(self, partial_td: TreeDecomposition) -> int:
        return self._measure.cyclicity_depth(partial_td)

    # The composed state is the depth of the deepest bag *not* covered by a
    # single edge, or ``None`` when every bag is — ``cyclicity_depth``
    # reports 0 in both the "root is the deepest offender" and the "no
    # offender at all" case, so the key alone would not compose.
    def fragment_state(self, bag, child_states: Sequence):
        deepest = None
        for child_state in child_states:
            if child_state is not None and (deepest is None or child_state + 1 > deepest):
                deepest = child_state + 1
        if deepest is None and not self._measure.single_edge_coverable(bag):
            deepest = 0
        return deepest

    def state_key(self, state) -> int:
        return 0 if state is None else state


class LexicographicPreference(Preference):
    """Combine several preferences lexicographically (first is most important)."""

    def __init__(self, preferences: Sequence[Preference]):
        self.preferences = list(preferences)
        self.monotone = all(p.monotone for p in self.preferences)
        # Strictness composes componentwise: if every component's parent key
        # strictly tracks its rank, the first component whose rank moves
        # decides the tuple.  One non-strict component (e.g. max bag size)
        # poisons the whole combination — it can absorb a rank increase into
        # an equal tuple prefix while later components regress.
        self.order_monotone = all(p.order_monotone for p in self.preferences)

    def key(self, partial_td: TreeDecomposition) -> Tuple:
        return tuple(p.key(partial_td) for p in self.preferences)

    def fragment_state(self, bag, child_states: Sequence) -> Tuple:
        return tuple(
            p.fragment_state(bag, [child[i] for child in child_states])
            for i, p in enumerate(self.preferences)
        )

    def state_key(self, state) -> Tuple:
        return tuple(p.state_key(s) for p, s in zip(self.preferences, state))

    def child_rank_key(self, parent_bag, state) -> Tuple:
        return tuple(
            p.child_rank_key(parent_bag, s)
            for p, s in zip(self.preferences, state)
        )
