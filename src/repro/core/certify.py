"""Independent certification of candidate tree decompositions.

A decomposition that crosses a trust boundary — produced by a worker
process, read back from a batch ledger, returned by a budget-degraded
anytime solve — must not be believed on the solver's say-so.
:func:`certify_ctd` is an independent checker, deliberately *not* built on
:meth:`TreeDecomposition.is_valid`: it re-derives every property over the
hypergraph's bitset kernel in its own loops, in time linear in the size of
the result (``O(#nodes · #edges)`` mask operations), so a bug in the
solver stack and a bug in the checker would have to coincide for a wrong
decomposition to be accepted.

Checked properties:

1. **shape** — every node carries a bag of known vertices;
2. **edge cover** — every hyperedge is contained in some bag;
3. **connectedness** (running intersection) — for every vertex, the nodes
   whose bags contain it form one non-empty connected subtree;
4. **constraint satisfaction** — ``constraint.holds_recursively`` when a
   constraint is claimed;
5. **claimed width** — every bag has an edge cover of size at most
   ``width_claim``.  For soft decompositions this is the Theorem 2
   necessary condition (every bag of a width-``k`` soft decomposition is
   covered by ≤ k edges); full ``Soft_{H,k}`` membership would require
   regenerating the candidate-bag set and is a solve, not a check.

The module also owns the process-boundary wire format for decompositions
(:func:`decomposition_to_payload` / :func:`decomposition_from_payload`):
plain JSON-able dicts of bags in pre-order plus parent indices, so a
worker's result can be shipped through a pipe or a JSONL ledger and
reconstructed — then certified — on the trusted side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition
from repro.core.constraints import SubtreeConstraint

__all__ = [
    "Certification",
    "certify_ctd",
    "decomposition_to_payload",
    "decomposition_from_payload",
]


@dataclass(frozen=True)
class Certification:
    """The checker's verdict: ``ok`` plus every violation found.

    All checks run even after the first failure, so a quarantined result's
    ledger record names everything wrong with it, not just the first thing.
    """

    ok: bool
    violations: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return "certified"
        return "; ".join(self.violations)


def certify_ctd(
    hypergraph: Hypergraph,
    ctd: TreeDecomposition,
    constraint: Optional[SubtreeConstraint] = None,
    width_claim: Optional[int] = None,
) -> Certification:
    """Independently check that ``ctd`` is a valid decomposition of ``hypergraph``.

    Returns a :class:`Certification`; never raises on a malformed
    decomposition — malformation is exactly what it exists to report.
    """
    violations: List[str] = []
    indexer = hypergraph.bitsets.indexer

    # 1. Shape: a rooted tree whose every node carries a bag of known
    # vertices.  A mask is only built from vertices the indexer knows, so
    # everything downstream works on trusted masks.
    if not ctd.tree.has_root():
        return Certification(False, ("decomposition tree has no root",))
    nodes = ctd.tree.nodes()
    bag_masks: Dict[int, int] = {}
    for node in nodes:
        bag = node.data.get("bag")
        if bag is None:
            violations.append(f"node {node.node_id} has no bag")
            bag_masks[node.node_id] = 0
            continue
        mask = 0
        for vertex in bag:
            if vertex not in indexer:
                violations.append(
                    f"node {node.node_id} bag contains unknown vertex {vertex!r}"
                )
            else:
                mask |= 1 << indexer.bit(vertex)
        bag_masks[node.node_id] = mask

    # 2. Edge cover: every hyperedge fits inside some bag.
    masks = list(bag_masks.values())
    for edge, edge_mask in zip(hypergraph.edges, hypergraph.bitsets.edge_masks):
        if not any(edge_mask & ~mask == 0 for mask in masks):
            violations.append(f"edge {edge.name} is covered by no bag")

    # 3. Connectedness: the holders of each vertex form one non-empty
    # connected subtree.  With a rooted tree that is equivalent to: every
    # holder except the unique shallowest one has a holding parent.
    # Pre-order lists parents before children, so one pass computes depths.
    depth: Dict[int, int] = {}
    for node in nodes:
        depth[node.node_id] = (
            depth[node.parent.node_id] + 1 if node.parent is not None else 0
        )
    for bit, vertex in enumerate(indexer):
        vertex_bit = 1 << bit
        holders = [node for node in nodes if bag_masks[node.node_id] & vertex_bit]
        if not holders:
            violations.append(f"vertex {vertex!r} appears in no bag")
            continue
        top = min(holders, key=lambda node: depth[node.node_id])
        for node in holders:
            if node is top:
                continue
            parent = node.parent
            if parent is None or not bag_masks.get(parent.node_id, 0) & vertex_bit:
                violations.append(
                    f"vertex {vertex!r} induces a disconnected subtree "
                    f"(node {node.node_id} holds it, its parent does not)"
                )
                break

    # 4. Constraint satisfaction, when one is claimed.  A constraint that
    # blows up on a malformed decomposition counts as a violation, not as
    # a checker crash.
    if constraint is not None and not constraint.trivial:
        try:
            if not constraint.holds_recursively(ctd):
                violations.append("claimed constraint does not hold")
        except Exception as exc:
            violations.append(f"constraint check failed: {exc}")

    # 5. Claimed width: every bag has an edge cover of size <= width_claim
    # (Theorem 2's necessary condition for soft width-k).
    if width_claim is not None:
        from repro.core.covers import enumerate_covers

        for node in nodes:
            bag = node.data.get("bag")
            if not bag:
                continue
            if next(enumerate_covers(hypergraph, frozenset(bag), width_claim), None) is None:
                violations.append(
                    f"bag {sorted(map(str, bag))} has no edge cover of size "
                    f"<= {width_claim}"
                )

    return Certification(not violations, tuple(violations))


# -- process-boundary wire format -------------------------------------------


def decomposition_to_payload(ctd: TreeDecomposition) -> Dict[str, object]:
    """Serialise a decomposition as a JSON-able dict.

    Bags are listed in pre-order with string-sorted vertices and
    ``parents[i]`` is the pre-order index of bag ``i``'s parent (``None``
    for the root), so the payload is deterministic for a given tree and
    feeds straight into :meth:`TreeDecomposition.from_bags`.
    """
    nodes = ctd.tree.nodes()
    index = {node.node_id: i for i, node in enumerate(nodes)}
    return {
        "bags": [sorted(ctd.bag(node), key=str) for node in nodes],
        "parents": [
            index[node.parent.node_id] if node.parent is not None else None
            for node in nodes
        ],
    }


def decomposition_from_payload(
    hypergraph: Hypergraph, payload: object
) -> TreeDecomposition:
    """Reconstruct a decomposition from its wire payload.

    Raises :class:`ValueError` on any malformed payload — wrong types,
    mismatched lengths, a parent index pointing forward or out of range —
    because a garbage payload from an untrusted worker must become a
    structured ``invalid_result``, never an arbitrary crash.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"decomposition payload is not a dict: {type(payload).__name__}")
    bags = payload.get("bags")
    parents = payload.get("parents")
    if not isinstance(bags, list) or not isinstance(parents, list):
        raise ValueError("decomposition payload misses 'bags'/'parents' lists")
    if len(bags) != len(parents) or not bags:
        raise ValueError(
            f"decomposition payload has {len(bags)} bags but {len(parents)} parents"
        )
    for i, (bag, parent) in enumerate(zip(bags, parents)):
        if not isinstance(bag, (list, tuple, set, frozenset)):
            raise ValueError(f"bag {i} is not a vertex list")
        if i == 0:
            if parent is not None:
                raise ValueError("first bag must be the root (parent None)")
        elif not isinstance(parent, int) or not 0 <= parent < i:
            raise ValueError(f"bag {i} has invalid parent {parent!r}")
    return TreeDecomposition.from_bags(hypergraph, bags, parents)
