"""Row/series generators for every table and figure of the paper's evaluation.

Each function returns plain data (lists of dictionaries) so that the
benchmark harness, the examples and the tests can all consume the same
computation; the ``render_*`` helpers turn them into the text "figures" the
bench targets print.

Experiment index (see DESIGN.md):

* :func:`figure5_rows` — Figure 5: `q_ds`, ConCov-shw 2, all enumerated CTDs
  with both cost functions and the baseline.
* :func:`figure6_rows` — Figure 6 (left/middle): the 10 cheapest width-2
  ConCov CTDs for the two Hetionet queries, plus the baseline.
* :func:`figure6_constraint_ablation` — Figure 6 (right): average execution
  effort of random width-2 CTDs with and without ConCov.
* :func:`table1_rows` — Table 1: per-query candidate-bag statistics and
  top-10 enumeration time.
* :func:`appendix_figure_rows` — Figures 12–17: per-query cost-vs-effort
  series for both cost functions.
* :func:`width_hierarchy_rows` — the width facts of Examples 1 and 2 and
  Appendix A.2 (``H2``, ``H3``, ``H3'``, ``C5`` with ConCov).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import DecompositionEvaluation, QueryExperiment
from repro.experiments.report import format_figure_rows
from repro.workloads.registry import BenchmarkQuery, benchmark_queries, benchmark_query


def _experiment(entry: BenchmarkQuery, scale: float = 1.0) -> QueryExperiment:
    # Data flows through the workload layer: large scales hit the snapshot
    # cache automatically, so regenerating a figure at scale >= 2 only pays
    # generation once per (workload, scale, seed).
    return QueryExperiment.from_benchmark(entry, scale=scale)


def _evaluation_rows(
    experiment: QueryExperiment, evaluations: Sequence[DecompositionEvaluation]
) -> List[Dict[str, object]]:
    return [
        {
            "rank": evaluation.rank,
            "cost_cardinalities": evaluation.cardinality_cost,
            "cost_estimates": evaluation.estimate_cost,
            "work": evaluation.work,
            "max_intermediate": evaluation.metrics.max_intermediate,
            "wall_time_s": evaluation.wall_time,
            "result": evaluation.metrics.result,
        }
        for evaluation in evaluations
    ]


# -- Figure 5 -------------------------------------------------------------------------


def figure5_rows(
    scale: float = 1.0, limit: int = 8
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Figure 5: the TPC-DS query under ConCov-shw 2.

    Returns the per-decomposition rows (ordered by measured effort, like the
    paper's right-hand chart) and a baseline record.
    """
    experiment = _experiment(benchmark_query("q_ds"), scale=scale)
    decompositions, _ = experiment.ranked_decompositions(
        cost="cardinalities", limit=limit, constrained=True
    )
    evaluations = experiment.evaluate(decompositions)
    evaluations.sort(key=lambda evaluation: evaluation.work)
    for rank, evaluation in enumerate(evaluations, start=1):
        evaluation.rank = rank
    baseline = experiment.baseline()
    baseline_row = {
        "work": baseline.work,
        "max_intermediate": baseline.max_intermediate,
        "wall_time_s": baseline.wall_time,
        "result": baseline.result,
    }
    return _evaluation_rows(experiment, evaluations), baseline_row


# -- Figure 6 -------------------------------------------------------------------------


def figure6_rows(
    scale: float = 1.0, limit: int = 10
) -> Dict[str, Tuple[List[Dict[str, object]], Dict[str, object]]]:
    """Figure 6 (left and middle): the 10 cheapest ConCov CTDs per Hetionet query."""
    result = {}
    for name in ("q_hto", "q_hto2"):
        experiment = _experiment(benchmark_query(name), scale=scale)
        decompositions, _ = experiment.ranked_decompositions(
            cost="estimates", limit=limit, constrained=True
        )
        evaluations = experiment.evaluate(decompositions)
        baseline = experiment.baseline()
        baseline_row = {
            "work": baseline.work,
            "max_intermediate": baseline.max_intermediate,
            "wall_time_s": baseline.wall_time,
            "result": baseline.result,
        }
        result[name] = (_evaluation_rows(experiment, evaluations), baseline_row)
    return result


def figure6_constraint_ablation(
    scale: float = 1.0, sample_size: int = 10
) -> List[Dict[str, object]]:
    """Figure 6 (right): average effort of random CTDs with vs without ConCov."""
    rows = []
    for name in ("q_hto", "q_hto2"):
        experiment = _experiment(benchmark_query(name), scale=scale)
        with_constraint = experiment.random_decompositions(
            sample_size, constrained=True, seed=1
        )
        without_constraint = experiment.random_decompositions(
            sample_size, constrained=False, seed=1
        )
        concov_work = [e.work for e in experiment.evaluate(with_constraint)]
        all_work = [e.work for e in experiment.evaluate(without_constraint)]
        rows.append(
            {
                "query": name,
                "concov_avg_work": sum(concov_work) / max(1, len(concov_work)),
                "all_avg_work": sum(all_work) / max(1, len(all_work)),
                "concov_samples": len(concov_work),
                "all_samples": len(all_work),
            }
        )
    return rows


# -- Table 1 -----------------------------------------------------------------------------


def table1_rows(scale: float = 1.0, top_n: int = 10) -> List[Dict[str, object]]:
    """Table 1: per-query candidate-bag statistics and top-10 enumeration time."""
    rows = []
    for entry in benchmark_queries():
        experiment = _experiment(entry, scale=scale)
        rows.append(experiment.table1_row(top_n=top_n))
    return rows


# -- Figures 12–17 -----------------------------------------------------------------------


APPENDIX_FIGURES = {
    "figure12": "q_ds",
    "figure13": "q_hto",
    "figure14": "q_hto2",
    "figure15": "q_hto3",
    "figure16": "q_hto4",
    "figure17": "q_lb",
}


def appendix_figure_rows(
    figure: str, scale: float = 1.0, limit: int = 10
) -> Tuple[List[Dict[str, object]], Optional[Dict[str, object]]]:
    """Figures 12–17: cost-vs-effort series for one benchmark query.

    The baseline is reported for the queries whose appendix figure mentions
    it (the Hetionet queries and `q_ds`).
    """
    if figure not in APPENDIX_FIGURES:
        raise KeyError(f"unknown appendix figure {figure!r}")
    name = APPENDIX_FIGURES[figure]
    experiment = _experiment(benchmark_query(name), scale=scale)
    decompositions, _ = experiment.ranked_decompositions(
        cost="cardinalities", limit=limit, constrained=True
    )
    evaluations = experiment.evaluate(decompositions)
    baseline_row: Optional[Dict[str, object]] = None
    baseline = experiment.baseline()
    baseline_row = {
        "work": baseline.work,
        "max_intermediate": baseline.max_intermediate,
        "wall_time_s": baseline.wall_time,
        "result": baseline.result,
    }
    return _evaluation_rows(experiment, evaluations), baseline_row


# -- width hierarchy (Examples 1, 2 and Appendix A.2) ---------------------------------------


def width_hierarchy_rows(include_h3: bool = False) -> List[Dict[str, object]]:
    """The width facts the paper proves for its example hypergraphs.

    ``include_h3`` also runs the (much larger) ``H3``/``H3'`` checks; these
    take noticeably longer and are therefore opt-in for the bench target.
    """
    from repro.baselines.detkdecomp import hypertree_width
    from repro.baselines.ghw import generalized_hypertree_width
    from repro.core.constraints import ConnectedCoverConstraint
    from repro.core.soft import shw_leq, soft_hypertree_width
    from repro.hypergraph.library import cycle_hypergraph, hypergraph_h2

    rows: List[Dict[str, object]] = []
    h2 = hypergraph_h2()
    rows.append(
        {
            "hypergraph": "H2 (Example 1)",
            "ghw": generalized_hypertree_width(h2)[0],
            "shw": soft_hypertree_width(h2)[0],
            "hw": hypertree_width(h2),
            "paper": "ghw = shw = 2, hw = 3",
        }
    )
    c5 = cycle_hypergraph(5)
    concov_shw = None
    for k in range(1, 6):
        constraint = ConnectedCoverConstraint(c5, k)
        if shw_leq(c5, k, constraint=constraint) is not None:
            concov_shw = k
            break
    rows.append(
        {
            "hypergraph": "C5 (Section 6)",
            "ghw": generalized_hypertree_width(c5)[0],
            "shw": soft_hypertree_width(c5)[0],
            "hw": hypertree_width(c5),
            "concov_shw": concov_shw,
            "paper": "hw = 2, ConCov-hw = ConCov-shw = ConCov-ghw = 3",
        }
    )
    if include_h3:
        from repro.hypergraph.library import hypergraph_h3, hypergraph_h3_prime
        from repro.core.soft import certify_soft_decomposition
        from repro.experiments.paper_witnesses import h3_soft_decomposition

        h3 = hypergraph_h3()
        witness = h3_soft_decomposition(h3)
        rows.append(
            {
                "hypergraph": "H3 (Appendix A.2)",
                "shw_leq_3_witness_valid": certify_soft_decomposition(h3, witness, 3),
                "paper": "ghw = shw = 3, hw = 4",
            }
        )
    return rows


# -- rendering -------------------------------------------------------------------------------


def render_figure5(scale: float = 1.0, limit: int = 8) -> str:
    rows, baseline = figure5_rows(scale=scale, limit=limit)
    footer = [
        "",
        f"Baseline (greedy DBMS-style plan): work={baseline['work']}, "
        f"max_intermediate={baseline['max_intermediate']}, result={baseline['result']}",
    ]
    return format_figure_rows(
        "Figure 5 — q_ds, ConCov-shw 2 decompositions (TPC-DS-like data)",
        rows,
        ["rank", "cost_cardinalities", "cost_estimates", "work", "max_intermediate", "result"],
        footer,
    )


def render_figure6(scale: float = 1.0, limit: int = 10) -> str:
    parts = []
    for name, (rows, baseline) in figure6_rows(scale=scale, limit=limit).items():
        footer = [
            "",
            f"Baseline: work={baseline['work']}, result={baseline['result']}",
            "",
        ]
        parts.append(
            format_figure_rows(
                f"Figure 6 — {name}, 10 cheapest ConCov-shw 2 decompositions",
                rows,
                ["rank", "cost_estimates", "cost_cardinalities", "work", "result"],
                footer,
            )
        )
    ablation = figure6_constraint_ablation(scale=scale)
    parts.append(
        format_figure_rows(
            "Figure 6 (right) — random width-2 CTDs, with vs without ConCov",
            ablation,
            ["query", "concov_avg_work", "all_avg_work", "concov_samples", "all_samples"],
        )
    )
    return "\n".join(parts)


def render_table1(scale: float = 1.0) -> str:
    return format_figure_rows(
        "Table 1 — per-query candidate-bag statistics",
        table1_rows(scale=scale),
        [
            "query",
            "concov_shw",
            "hypergraph_size",
            "soft_bags",
            "concov_soft_bags",
            "top10_seconds",
        ],
    )


def render_appendix_figure(figure: str, scale: float = 1.0, limit: int = 10) -> str:
    rows, baseline = appendix_figure_rows(figure, scale=scale, limit=limit)
    footer = []
    if baseline is not None:
        footer = ["", f"Baseline: work={baseline['work']}, result={baseline['result']}"]
    return format_figure_rows(
        f"{figure} — {APPENDIX_FIGURES[figure]}: cost vs measured effort",
        rows,
        ["rank", "cost_cardinalities", "cost_estimates", "work", "wall_time_s", "result"],
        footer,
    )
