"""Explicit witness decompositions transcribed from the paper's figures.

These are the concrete decompositions the paper exhibits:

* Figure 1b — a width-2 soft hypertree decomposition of ``H2``;
* Figure 9 — a width-3 soft hypertree decomposition of ``H3``;
* Figure 2b — a width-3 GHD of ``H3'`` whose bags lie in ``Soft^1``.

Having them as code lets the tests verify the paper's width claims without
running the (for ``H3`` expensive) full candidate-bag search: validity of the
tree decomposition, bag cover numbers, and membership of selected bags in
``Soft_{H,k}`` via the λ-witnesses spelled out in the paper's text.
"""

from __future__ import annotations

from typing import List

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition

_G = ["g11", "g12", "g21", "g22"]
_H = ["h11", "h12", "h21", "h22"]


def h2_soft_decomposition(hypergraph: Hypergraph) -> TreeDecomposition:
    """The width-2 soft hypertree decomposition of ``H2`` from Figure 1b."""
    bags = [
        {"2", "6", "7", "a", "b"},
        {"2", "5", "6", "a", "b"},
        {"2", "3", "4", "5", "a", "b"},
        {"1", "2", "7", "8", "a", "b"},
    ]
    parent_of = [None, 0, 1, 0]
    return TreeDecomposition.from_bags(hypergraph, bags, parent_of)


def h3_soft_decomposition(hypergraph: Hypergraph) -> TreeDecomposition:
    """The width-3 soft hypertree decomposition of ``H3`` from Figure 9.

    Every bag is ``G ∪ H`` plus a few of the cycle vertices; primed vertices
    use the ``p`` suffix of :func:`repro.hypergraph.library.hypergraph_h3`.
    """
    gh = _G + _H
    bags = [
        set(gh + ["3", "0p", "0"]),
        set(gh + ["3", "0", "1"]),
        set(gh + ["3", "1", "2"]),
        set(gh + ["4", "2"]),
        set(gh + ["3p", "0p", "1p"]),
        set(gh + ["3p", "1p", "2p"]),
        set(gh + ["3p", "2p", "4p"]),
    ]
    parent_of = [None, 0, 1, 2, 0, 4, 5]
    return TreeDecomposition.from_bags(hypergraph, bags, parent_of)


def h3_prime_order1_decomposition(hypergraph: Hypergraph) -> TreeDecomposition:
    """The width-3 GHD of ``H3'`` from Figure 2b (bags lie in ``Soft^1``)."""
    gh = _G + _H
    bags = [
        set(gh + ["3", "0p", "0"]),
        set(gh + ["3", "0", "1"]),
        set(gh + ["3", "1", "2"]),
        set(gh + ["4", "2"]),
        set(gh + ["3p", "0p", "1p"]),
        set(gh + ["3p", "1p", "2p"]),
        set(gh + ["3p", "2p", "4p"]),
    ]
    parent_of = [None, 0, 1, 2, 0, 4, 5]
    return TreeDecomposition.from_bags(hypergraph, bags, parent_of)


def h2_bag_witnesses() -> List[dict]:
    """The λ-witnesses of Example 1 for the non-trivial bags of Figure 1b.

    Each entry gives a bag of the decomposition together with ``λ1``/``λ2``
    (edge names of :func:`repro.hypergraph.library.hypergraph_h2`) such that
    the bag equals ``(⋃λ1) ∩ (⋃C)`` for the single [λ2]-component ``C``.
    """
    return [
        {
            "bag": frozenset({"2", "6", "7", "a", "b"}),
            "lambda1": ("e23b", "e67a"),
            "lambda2": ("e34", "e23b"),
        },
        {
            "bag": frozenset({"2", "5", "6", "a", "b"}),
            "lambda1": ("e12a", "e56b"),
            "lambda2": ("e18", "e12a"),
        },
    ]


def h3_bag_witnesses() -> List[dict]:
    """The λ-witnesses spelled out in Appendix A.2 for two bags of Figure 9."""
    gh = frozenset(_G + _H)
    return [
        {
            # Root bag G ∪ H ∪ {3, 0', 0}: cover by the two horizontal edges
            # plus {0,0'}; separate 4' with the same two edges plus {4',2'}.
            "bag": gh | {"3", "0p", "0"},
            "lambda1": ("hor1", "hor2", "e00p"),
            "lambda2": ("hor1", "hor2", "e2p4p"),
        },
        {
            # Bag G ∪ H ∪ {2, 4}: cover by the two vertical edges plus {2,4};
            # λ2 = the two horizontal edges plus {0',1'} splits H3 into two
            # components, and the one containing 0 yields the bag.
            "bag": gh | {"2", "4"},
            "lambda1": ("vert1", "vert2", "e24"),
            "lambda2": ("hor1", "hor2", "e0p1p"),
        },
    ]
