"""Plain-text rendering of experiment results (the "figures" of this repo).

The original paper presents its evaluation as scatter/bar charts; in an
offline, dependency-free reproduction we print the underlying series as
aligned text tables so the benchmark output can be compared to the paper's
figures directly (who wins, by what factor, how costs correlate with
measured effort).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    header = list(columns)
    rendered: List[List[str]] = [header]
    for row in rows:
        rendered.append([_format_value(row.get(column)) for column in header])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(header))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def format_figure_rows(
    title: str,
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
    footer_lines: Iterable[str] = (),
) -> str:
    """A titled table plus optional footer lines (e.g. the baseline)."""
    parts = [title, "=" * len(title), format_table(rows, columns)]
    parts.extend(footer_lines)
    return "\n".join(parts)
