"""Experiment harness reproducing the paper's evaluation (Section 7 + Appendix D)."""

from repro.experiments.harness import (
    DecompositionEvaluation,
    QueryExperiment,
)
from repro.experiments.report import (
    format_figure_rows,
    format_table,
)

__all__ = [
    "QueryExperiment",
    "DecompositionEvaluation",
    "format_figure_rows",
    "format_table",
]
