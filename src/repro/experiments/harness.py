"""The per-query experiment harness behind every figure and table.

For a benchmark query the harness mirrors the paper's pipeline
(Appendix C.1):

1. extract the query hypergraph,
2. compute the candidate bags ``Soft_{H,k}`` and the ConCov-filtered subset,
3. enumerate the top-n candidate tree decompositions ranked by a cost
   function (Algorithm 2 / the ranked enumerator),
4. execute each decomposition through the Yannakakis executor,
5. execute the baseline (estimate-driven greedy join plan), and
6. report, per decomposition, the cost under both cost functions and the
   measured execution effort.

The numbers of interest are the *relationships* — which decompositions are
cheap, how they compare to the baseline, how well each cost function
correlates with measured effort — matching how the paper presents Figures 5,
6 and 12–17.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decompositions.td import TreeDecomposition
from repro.core.candidate_bags import filter_bags_by_cover, soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.solve import DATA_PREFERENCES, SolveRequest, execute
from repro.db.cost import CardinalityCostModel, EstimateCostModel
from repro.db.database import Database
from repro.db.executor import BaselineExecutor, DecompositionExecutor, ExecutionMetrics
from repro.db.query import ConjunctiveQuery
from repro.db.stats import CardinalityEstimator
from repro.runtime.budget import Budget


@dataclass
class DecompositionEvaluation:
    """One evaluated decomposition: its costs and its measured execution."""

    rank: int
    decomposition: TreeDecomposition
    cardinality_cost: float
    estimate_cost: float
    metrics: ExecutionMetrics

    @property
    def work(self) -> int:
        return self.metrics.work

    @property
    def wall_time(self) -> float:
        return self.metrics.wall_time


class QueryExperiment:
    """All per-query measurements the figures and tables need."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        width: int,
        name: Optional[str] = None,
        budget: Optional[Budget] = None,
        data_key: Optional[str] = None,
    ):
        self.database = database
        self.query = query
        self.width = width
        self.name = name or query.name
        # One budget governs the whole experiment pipeline: candidate-bag
        # generation, ranked enumeration and decomposition execution all
        # draw from it; exhausted stages degrade to their anytime results.
        self.budget = budget
        # Names the database behind cost-ranked solves; without it those
        # solves stay uncacheable (two databases rank the same CTDs
        # differently).  ``from_benchmark`` derives one from the workload
        # coordinates; ad-hoc databases have none.
        self.data_key = data_key
        self.hypergraph = query.hypergraph()
        self.estimator = CardinalityEstimator(database)
        self._soft_bags = None
        self._concov_bags = None
        self._cardinality_model = CardinalityCostModel(query, database)
        self._estimate_model = EstimateCostModel(query, database, estimator=self.estimator)
        self._executor = DecompositionExecutor(database, query)

    @classmethod
    def from_benchmark(
        cls,
        entry,
        scale: float = 1.0,
        seed: Optional[int] = None,
        cache="auto",
        dump_path: Optional[str] = None,
        budget: Optional[Budget] = None,
    ) -> "QueryExperiment":
        """Build the experiment for a registry entry (or query name).

        Data comes through the workload layer: deterministic seeded
        generation with snapshot caching per ``cache`` (see
        :meth:`repro.workloads.registry.WorkloadEntry.load`), or real dump
        files when ``dump_path`` is given.
        """
        from repro.workloads.registry import benchmark_query

        if isinstance(entry, str):
            entry = benchmark_query(entry)
        database, query = entry.load(
            scale=scale, seed=seed, cache=cache, dump_path=dump_path
        )
        # Dump files are external data with no deterministic coordinates,
        # so they get no data key (cost-ranked solves stay uncacheable).
        data_key = None
        if dump_path is None:
            data_key = benchmark_data_key(entry, scale, seed)
        return cls(
            database,
            query,
            entry.width,
            name=entry.name,
            budget=budget,
            data_key=data_key,
        )

    @classmethod
    def from_sql(
        cls,
        database: Database,
        sql: str,
        width: Optional[int] = None,
        name: Optional[str] = None,
        budget: Optional[Budget] = None,
        data_key: Optional[str] = None,
        cache="auto",
    ) -> "QueryExperiment":
        """Build the experiment from raw SQL through the query front door.

        Parses ``sql`` against ``database`` and, when ``width`` is not
        given, derives it with the front door's least-width search (a
        cache-served soft-width solve), so batch/throughput callers can
        schedule ad-hoc SQL without knowing the query's width up front.
        """
        from repro.db.frontdoor import plan_query

        plan = plan_query(sql, database, width=width, name=name, cache=cache, budget=budget)
        if plan.width is None:
            from repro.runtime.errors import UserError

            raise UserError(
                f"could not determine a decomposition width for query "
                f"{plan.query.name!r} (search stopped early)"
            )
        return cls(
            database,
            plan.query,
            plan.width,
            name=name,
            budget=budget,
            data_key=data_key,
        )

    # -- candidate bags -----------------------------------------------------------

    @property
    def soft_bags(self):
        if self._soft_bags is None:
            self._soft_bags = soft_candidate_bags(
                self.hypergraph, self.width, budget=self.budget
            )
        return self._soft_bags

    @property
    def concov_bags(self):
        if self._concov_bags is None:
            self._concov_bags = filter_bags_by_cover(
                self.hypergraph, self.soft_bags, self.width, connected=True
            )
        return self._concov_bags

    def concov_constraint(self) -> ConnectedCoverConstraint:
        return ConnectedCoverConstraint(self.hypergraph, self.width)

    # -- decomposition enumeration ------------------------------------------------------

    def _request(
        self,
        constrained: bool,
        preference: Optional[str],
        limit: int,
    ) -> SolveRequest:
        """The experiment's parameters as a canonical ``SolveRequest``."""
        return SolveRequest(
            hypergraph=self.hypergraph,
            mode="enumerate",
            width=self.width,
            constraint="concov" if constrained else None,
            preference=preference,
            limit=limit,
            data_key=self.data_key if preference in DATA_PREFERENCES else None,
            label=self.name,
        )

    def ranked_decompositions(
        self,
        cost: str = "cardinalities",
        limit: int = 10,
        constrained: bool = True,
    ) -> Tuple[List[TreeDecomposition], float]:
        """Top-``limit`` CTDs ranked by a cost function, plus the time taken.

        ``cost`` is ``"cardinalities"`` (Appendix C.2.2), ``"estimates"``
        (Appendix C.2.1) or ``"none"`` (arbitrary order).  ``constrained``
        enforces ConCov, matching the paper's experiments.  The enumeration
        is exact — the true ``limit`` cheapest CTDs — and routed through
        the solve front door (:func:`repro.core.solve.execute`), so
        benchmark-backed experiments reuse the persistent decomposition
        cache across runs.
        """
        request = self._request(
            constrained, None if cost == "none" else cost, limit
        )
        result = execute(
            request,
            database=self.database,
            query=self.query,
            budget=self.budget,
        )
        return result.decompositions, result.elapsed

    def random_decompositions(
        self, count: int, constrained: bool, seed: int = 0
    ) -> List[TreeDecomposition]:
        """``count`` decompositions sampled from a wide enumeration.

        Used for the right-hand chart of Figure 6 (average runtime of random
        width-k decompositions with and without ConCov).  The pool is the
        exact head of the canonical enumeration order (no preference, so the
        deterministic structural tie-break), which makes the sample
        reproducible across processes for a fixed seed.
        """
        request = self._request(constrained, None, max(4 * count, 20))
        pool = execute(
            request,
            database=self.database,
            query=self.query,
            budget=self.budget,
        ).decompositions
        if not pool:
            return []
        rng = random.Random(seed)
        if len(pool) <= count:
            return pool
        return rng.sample(pool, count)

    # -- evaluation --------------------------------------------------------------------------

    def evaluate(self, decompositions: Sequence[TreeDecomposition]) -> List[DecompositionEvaluation]:
        """Execute each decomposition and attach both cost-function values."""
        evaluations = []
        for rank, decomposition in enumerate(decompositions, start=1):
            metrics = self._executor.execute(decomposition, budget=self.budget)
            evaluations.append(
                DecompositionEvaluation(
                    rank=rank,
                    decomposition=decomposition,
                    cardinality_cost=self._cardinality_model.decomposition_cost(decomposition),
                    estimate_cost=self._estimate_model.decomposition_cost(decomposition),
                    metrics=metrics,
                )
            )
        return evaluations

    def baseline(self) -> ExecutionMetrics:
        """The DBMS-style baseline execution of the query."""
        return BaselineExecutor(self.database, self.query, self.estimator).execute()

    # -- Table 1 -----------------------------------------------------------------------------

    def concov_shw(self, max_k: Optional[int] = None) -> int:
        """``ConCov-shw`` of the query hypergraph: least k with a ConCov CTD."""
        limit = max_k if max_k is not None else max(self.width, self.hypergraph.num_edges())
        result = execute(
            SolveRequest(
                hypergraph=self.hypergraph,
                mode="soft-width",
                width=limit,
                constraint="concov",
                label=self.name,
            ),
            budget=self.budget,
        )
        if not result.decided:
            raise ValueError(f"ConCov-shw exceeds {limit}")
        return int(result.width)  # type: ignore[arg-type]

    def table1_row(self, top_n: int = 10) -> Dict[str, object]:
        """The row of Table 1 for this query."""
        concov_decompositions, elapsed = self.ranked_decompositions(
            cost="cardinalities", limit=top_n, constrained=True
        )
        return {
            "query": self.name,
            "concov_shw": self.concov_shw(max_k=self.width + 2),
            "hypergraph_size": self.hypergraph.num_edges(),
            "soft_bags": len(self.soft_bags),
            "concov_soft_bags": len(self.concov_bags),
            "top10_seconds": elapsed,
            "num_decompositions": len(concov_decompositions),
        }


# -- batch runtime integration -----------------------------------------------
#
# The supervised batch runtime (repro.runtime.supervisor) is deliberately
# agnostic about what a task computes; these pieces bind it to the
# paper's pipeline:
#
# * batch_task_specs  — a workload's query set as plain task dicts, each
#   embedding its canonical SolveRequest wire payload,
# * execute_batch_task — the worker-side runner (resolved by dotted path
#   inside the spawned process), a thin shell around core.solve.execute,
# * BatchCertifier    — the parent-side certifier that rebuilds every
#   query hypergraph *itself* and never trusts worker-supplied structure,
# * BatchSolveCache   — the supervisor's pre-spawn cache probe against the
#   persistent decomposition cache.


#: Module-level memo of workload rebuilds, shared by every consumer that
#: needs a benchmark's (database, query, width) for the same deterministic
#: coordinates — the batch certifier's trusted hypergraphs, the
#: supervisor's cache probe and task-spec construction, the worker-side
#: runner.  Generation is deterministic per ``(name, scale, seed)``, so
#: one rebuild serves every task of a batch instead of one per task.
_WORKLOAD_MEMO: Dict[Tuple[str, float, object], Tuple[object, object, int]] = {}


def load_benchmark_workload(
    name: str, scale: float = 1.0, seed=None, cache="auto"
) -> Tuple[object, object, int]:
    """Memoised ``(database, query, width)`` for one benchmark query.

    Only the default snapshot-cache configuration is memoised — a custom
    ``cache`` argument changes where snapshots come from, so those loads
    stay un-memoised rather than risk serving data from the wrong source.
    """
    from repro.workloads.registry import benchmark_query

    key = (str(name), float(scale), seed)
    if cache != "auto":
        entry = benchmark_query(name)
        database, query = entry.load(scale=scale, seed=seed, cache=cache)
        return database, query, entry.width
    if key not in _WORKLOAD_MEMO:
        entry = benchmark_query(name)
        database, query = entry.load(scale=scale, seed=seed)
        _WORKLOAD_MEMO[key] = (database, query, entry.width)
    return _WORKLOAD_MEMO[key]


def clear_workload_memo() -> None:
    """Drop all memoised workload rebuilds (tests, memory pressure)."""
    _WORKLOAD_MEMO.clear()


def benchmark_data_key(entry, scale: float, seed: Optional[int]) -> str:
    """The data identity behind a benchmark solve, for cache keying.

    Cost-ranked solves depend on the generated rows, so the key pins the
    full deterministic generator coordinates — workload, scale and the
    *effective* seed (the workload default when none is given) — plus the
    query name.
    """
    effective_seed = entry.workload._seed(seed)
    return f"{entry.dataset}:scale={scale:g}:seed={effective_seed}:{entry.name}"


def batch_task_specs(
    queries: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
    max_work: Optional[int] = None,
    shards: int = 1,
) -> List[Dict[str, object]]:
    """One task spec per benchmark query (all six when ``queries`` is None).

    A spec is a plain JSON-able dict — exactly what the supervisor
    fingerprints for the checkpoint ledger and ships to the worker.  The
    solve itself lives in the embedded ``request`` payload (a canonical
    :class:`repro.core.solve.SolveRequest`: the ConCov + cardinality-ranked
    enumeration the figures use); the workload coordinates stay top-level
    so the worker can rebuild the database and the certifier its trusted
    hypergraph.  ``deadline``/``max_work`` are the *full-solve* caps; the
    degradation ladder scales them down for the tighter levels.
    ``shards > 1`` asks each worker to shard its solve's pre-fixpoint
    stages inline; like the caps it is non-semantic (it changes how fast
    the answer arrives, not the answer) and stays out of the ledger
    fingerprint.
    """
    from repro.workloads.registry import benchmark_queries, benchmark_query

    if queries is None:
        entries = benchmark_queries()
    else:
        entries = [benchmark_query(name) for name in queries]
    specs = []
    for entry in entries:
        _, query, _ = load_benchmark_workload(entry.name, scale=scale, seed=seed)
        request = SolveRequest(
            hypergraph=query.hypergraph(),
            mode="enumerate",
            width=entry.width,
            constraint="concov",
            preference="cardinalities",
            limit=1,
            data_key=benchmark_data_key(entry, scale, seed),
            label=entry.name,
        )
        specs.append(
            {
                "kind": "solve",
                "query": entry.name,
                "workload": entry.dataset,
                "width": entry.width,
                "scale": scale,
                "seed": seed,
                "request": request.to_payload(),
                "deadline": deadline,
                "max_work": max_work,
                "shards": shards,
                "label": entry.name,
            }
        )
    return specs


def _batch_result_wire(result, request, mode: str, payload: Dict[str, object]):
    """The worker result dict: SolveResult wire format + batch envelope."""
    wire = result.to_payload()
    wire["query"] = payload.get("query")
    wire["mode"] = mode
    wire["level"] = payload.get("level")
    wire["width"] = request.width
    return wire


def execute_batch_task(payload: Dict[str, object]) -> Dict[str, object]:
    """The worker-side runner of one supervised batch task.

    ``payload`` is a task spec plus the supervisor's per-attempt fields:
    ``mode`` (``ranked`` — the embedded request as-is — or ``decide`` —
    its :meth:`~repro.core.solve.SolveRequest.degraded_to_decide`
    degradation, the ladder's bottom rung) and the level-scaled
    ``deadline``/``max_work`` caps, which become the in-worker
    :class:`Budget` (the cooperative layer under the parent's SIGKILL
    backstop).

    The solve itself is one :func:`repro.core.solve.execute` call: the
    worker reconstructs the embedded :class:`SolveRequest`, loads the
    database only when the request's preference needs data, and emits the
    :class:`SolveResult` wire dict (decomposition payload to be
    re-certified by the parent, claimed width, governed outcome counters).
    An exhausted budget with no anytime decomposition is reported as
    ``{"ok": False, "reason": <status>}`` so the supervisor can degrade
    instead of trusting an inconclusive answer.  A ``shards`` field > 1
    shards the solve's pre-fixpoint stages; inside a daemonic pool worker
    the stripes run inline (no nested pools), still byte-identical.
    """
    try:
        request = SolveRequest.from_payload(payload.get("request"))
    except ValueError as exc:
        return {"ok": False, "reason": "malformed-request", "error": str(exc)}
    mode = str(payload.get("mode", "ranked"))
    if mode == "decide":
        request = request.degraded_to_decide()
    budget = None
    if payload.get("deadline") is not None or payload.get("max_work") is not None:
        budget = Budget(
            deadline=payload.get("deadline"), max_work=payload.get("max_work")
        )
    database = query = None
    if request.preference in DATA_PREFERENCES:
        # Memoised per worker process: a worker that runs several tasks of
        # the same (name, scale, seed) rebuilds the database once.
        database, query, _ = load_benchmark_workload(
            str(payload["query"]),
            scale=float(payload.get("scale") or 1.0),
            seed=payload.get("seed"),
        )
    shards = max(1, int(payload.get("shards") or 1))
    result = execute(
        request,
        database=database,
        query=query,
        budget=budget,
        shards=shards,
        # The batch scheduler sets cache_off on cache-less plans so worker
        # solves mirror the parent's cache decision.
        cache=None if payload.get("cache_off") else "auto",
    )
    if result.decomposition is None and result.outcome.partial:
        return {
            "ok": False,
            "reason": result.outcome.status,
            "error": "budget exhausted before any decomposition was found "
            f"({result.outcome.describe()})",
        }
    return _batch_result_wire(result, request, mode, payload)


class BatchSolveCache:
    """The supervisor's pre-spawn probe into the decomposition cache.

    ``lookup(task)`` reconstructs the task's embedded
    :class:`~repro.core.solve.SolveRequest` and asks the persistent cache
    for a certified hit (:func:`repro.core.solve.lookup` — probe only,
    never solves); on a hit the supervisor records the worker-format
    result without spawning a process.  Storing needs no seam: the workers
    themselves persist every complete cacheable solve through
    :func:`repro.core.solve.execute`.
    """

    def __init__(self, cache="auto"):
        from repro.core.cache import resolve_cache

        self.cache = resolve_cache(cache)

    def lookup(self, task: Dict[str, object]) -> Optional[Dict[str, object]]:
        from repro.core.solve import lookup

        if self.cache is None or not isinstance(task, dict):
            return None
        if task.get("kind") != "solve" or "request" not in task:
            return None
        try:
            request = SolveRequest.from_payload(task.get("request"))
        except ValueError:
            return None
        result = lookup(request, cache=self.cache)
        if result is None:
            return None
        mode = "decide" if request.mode == "decide" else "ranked"
        return _batch_result_wire(
            result, request, mode, {**task, "level": "cache"}
        )


class BatchCertifier:
    """Parent-side certification of supervised batch results.

    The certifier rebuilds each query hypergraph from the deterministic
    workload generator (cached per ``(query, scale, seed)``) — the trusted
    reference a worker's claims are checked against.  A result's
    decomposition payload is reconstructed with
    :func:`repro.core.certify.decomposition_from_payload` (malformed →
    rejected, not crashed) and then certified with the ConCov constraint
    (``ranked`` mode only — ``decide`` results never claimed it) and the
    task's width claim.
    """

    def __init__(self, cache="auto"):
        self.cache = cache
        self._hypergraphs: Dict[Tuple[str, float, object], Tuple[object, int]] = {}

    def _trusted_hypergraph(self, name: str, scale: float, seed):
        key = (name, scale, seed)
        if key not in self._hypergraphs:
            # The rebuild itself goes through the module-level workload
            # memo, so certifier, cache probe and spec construction share
            # one deterministic generation per (name, scale, seed).
            _, query, width = load_benchmark_workload(
                name, scale=scale, seed=seed, cache=self.cache
            )
            self._hypergraphs[key] = (query.hypergraph(), width)
        return self._hypergraphs[key]

    def __call__(self, task: Dict[str, object], result: Dict[str, object]):
        from repro.core.certify import (
            Certification,
            certify_ctd,
            decomposition_from_payload,
        )

        hypergraph, default_width = self._trusted_hypergraph(
            str(task["query"]), float(task.get("scale") or 1.0), task.get("seed")
        )
        width = int(task.get("width") or default_width)
        if "request" in task:
            # The embedded request must describe the *trusted* hypergraph:
            # a spec whose shape drifted from the generator (ledger bit
            # rot, a forged task) must not certify against it.
            try:
                request = SolveRequest.from_payload(task.get("request"))
            except ValueError as exc:
                return Certification(False, (f"malformed task request: {exc}",))
            if request.hypergraph != hypergraph:
                return Certification(
                    False,
                    ("task request hypergraph does not match the trusted "
                     "workload hypergraph",),
                )
        payload = result.get("decomposition") if isinstance(result, dict) else None
        if payload is None:
            # "No decomposition of width <= k" cannot be certified in
            # O(result) time; accept it only from a *complete* search —
            # a partial one must have reported {"ok": False} instead.
            outcome = result.get("outcome") or {}
            if result.get("decided") is False and outcome.get("status") == "complete":
                return Certification(True)
            return Certification(False, ("result carries no decomposition",))
        try:
            ctd = decomposition_from_payload(hypergraph, payload)
        except ValueError as exc:
            return Certification(False, (f"malformed decomposition payload: {exc}",))
        constraint = None
        if result.get("mode", "ranked") == "ranked":
            constraint = ConnectedCoverConstraint(hypergraph, width)
        return certify_ctd(hypergraph, ctd, constraint=constraint, width_claim=width)
