"""The per-query experiment harness behind every figure and table.

For a benchmark query the harness mirrors the paper's pipeline
(Appendix C.1):

1. extract the query hypergraph,
2. compute the candidate bags ``Soft_{H,k}`` and the ConCov-filtered subset,
3. enumerate the top-n candidate tree decompositions ranked by a cost
   function (Algorithm 2 / the ranked enumerator),
4. execute each decomposition through the Yannakakis executor,
5. execute the baseline (estimate-driven greedy join plan), and
6. report, per decomposition, the cost under both cost functions and the
   measured execution effort.

The numbers of interest are the *relationships* — which decompositions are
cheap, how they compare to the baseline, how well each cost function
correlates with measured effort — matching how the paper presents Figures 5,
6 and 12–17.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decompositions.td import TreeDecomposition
from repro.core.candidate_bags import filter_bags_by_cover, soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint, NoConstraint, SubtreeConstraint
from repro.core.enumerate import enumerate_ctds
from repro.db.cost import CardinalityCostModel, EstimateCostModel
from repro.db.database import Database
from repro.db.executor import BaselineExecutor, DecompositionExecutor, ExecutionMetrics
from repro.db.query import ConjunctiveQuery
from repro.db.stats import CardinalityEstimator
from repro.runtime.budget import Budget


@dataclass
class DecompositionEvaluation:
    """One evaluated decomposition: its costs and its measured execution."""

    rank: int
    decomposition: TreeDecomposition
    cardinality_cost: float
    estimate_cost: float
    metrics: ExecutionMetrics

    @property
    def work(self) -> int:
        return self.metrics.work

    @property
    def wall_time(self) -> float:
        return self.metrics.wall_time


class QueryExperiment:
    """All per-query measurements the figures and tables need."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        width: int,
        name: Optional[str] = None,
        budget: Optional[Budget] = None,
    ):
        self.database = database
        self.query = query
        self.width = width
        self.name = name or query.name
        # One budget governs the whole experiment pipeline: candidate-bag
        # generation, ranked enumeration and decomposition execution all
        # draw from it; exhausted stages degrade to their anytime results.
        self.budget = budget
        self.hypergraph = query.hypergraph()
        self.estimator = CardinalityEstimator(database)
        self._soft_bags = None
        self._concov_bags = None
        self._cardinality_model = CardinalityCostModel(query, database)
        self._estimate_model = EstimateCostModel(query, database, estimator=self.estimator)
        self._executor = DecompositionExecutor(database, query)

    @classmethod
    def from_benchmark(
        cls,
        entry,
        scale: float = 1.0,
        seed: Optional[int] = None,
        cache="auto",
        dump_path: Optional[str] = None,
        budget: Optional[Budget] = None,
    ) -> "QueryExperiment":
        """Build the experiment for a registry entry (or query name).

        Data comes through the workload layer: deterministic seeded
        generation with snapshot caching per ``cache`` (see
        :meth:`repro.workloads.registry.WorkloadEntry.load`), or real dump
        files when ``dump_path`` is given.
        """
        from repro.workloads.registry import benchmark_query

        if isinstance(entry, str):
            entry = benchmark_query(entry)
        database, query = entry.load(
            scale=scale, seed=seed, cache=cache, dump_path=dump_path
        )
        return cls(database, query, entry.width, name=entry.name, budget=budget)

    # -- candidate bags -----------------------------------------------------------

    @property
    def soft_bags(self):
        if self._soft_bags is None:
            self._soft_bags = soft_candidate_bags(
                self.hypergraph, self.width, budget=self.budget
            )
        return self._soft_bags

    @property
    def concov_bags(self):
        if self._concov_bags is None:
            self._concov_bags = filter_bags_by_cover(
                self.hypergraph, self.soft_bags, self.width, connected=True
            )
        return self._concov_bags

    def concov_constraint(self) -> ConnectedCoverConstraint:
        return ConnectedCoverConstraint(self.hypergraph, self.width)

    # -- decomposition enumeration ------------------------------------------------------

    def ranked_decompositions(
        self,
        cost: str = "cardinalities",
        limit: int = 10,
        constrained: bool = True,
    ) -> Tuple[List[TreeDecomposition], float]:
        """Top-``limit`` CTDs ranked by a cost function, plus the time taken.

        ``cost`` is ``"cardinalities"`` (Appendix C.2.2), ``"estimates"``
        (Appendix C.2.1) or ``"none"`` (arbitrary order).  ``constrained``
        enforces ConCov, matching the paper's experiments.  The enumeration
        is exact: these are the true ``limit`` cheapest CTDs, not the
        survivors of a beam.
        """
        from repro.db.cost import make_cost_preference

        constraint: SubtreeConstraint
        constraint = self.concov_constraint() if constrained else NoConstraint()
        preference = None
        if cost != "none":
            preference = make_cost_preference(cost, self.query, self.database, self.estimator)
        start = time.perf_counter()
        decompositions = enumerate_ctds(
            self.hypergraph,
            self.soft_bags,
            constraint=constraint,
            preference=preference,
            limit=limit,
            budget=self.budget,
        )
        elapsed = time.perf_counter() - start
        return decompositions, elapsed

    def random_decompositions(
        self, count: int, constrained: bool, seed: int = 0
    ) -> List[TreeDecomposition]:
        """``count`` decompositions sampled from a wide enumeration.

        Used for the right-hand chart of Figure 6 (average runtime of random
        width-k decompositions with and without ConCov).  The pool is the
        exact head of the canonical enumeration order (no preference, so the
        deterministic structural tie-break), which makes the sample
        reproducible across processes for a fixed seed.
        """
        constraint = self.concov_constraint() if constrained else NoConstraint()
        pool = enumerate_ctds(
            self.hypergraph,
            self.soft_bags,
            constraint=constraint,
            preference=None,
            limit=max(4 * count, 20),
        )
        if not pool:
            return []
        rng = random.Random(seed)
        if len(pool) <= count:
            return pool
        return rng.sample(pool, count)

    # -- evaluation --------------------------------------------------------------------------

    def evaluate(self, decompositions: Sequence[TreeDecomposition]) -> List[DecompositionEvaluation]:
        """Execute each decomposition and attach both cost-function values."""
        evaluations = []
        for rank, decomposition in enumerate(decompositions, start=1):
            metrics = self._executor.execute(decomposition, budget=self.budget)
            evaluations.append(
                DecompositionEvaluation(
                    rank=rank,
                    decomposition=decomposition,
                    cardinality_cost=self._cardinality_model.decomposition_cost(decomposition),
                    estimate_cost=self._estimate_model.decomposition_cost(decomposition),
                    metrics=metrics,
                )
            )
        return evaluations

    def baseline(self) -> ExecutionMetrics:
        """The DBMS-style baseline execution of the query."""
        return BaselineExecutor(self.database, self.query, self.estimator).execute()

    # -- Table 1 -----------------------------------------------------------------------------

    def concov_shw(self, max_k: Optional[int] = None) -> int:
        """``ConCov-shw`` of the query hypergraph: least k with a ConCov CTD."""
        from repro.core.soft import shw_leq

        limit = max_k if max_k is not None else max(self.width, self.hypergraph.num_edges())
        for k in range(1, limit + 1):
            constraint = ConnectedCoverConstraint(self.hypergraph, k)
            if shw_leq(self.hypergraph, k, constraint=constraint) is not None:
                return k
        raise ValueError(f"ConCov-shw exceeds {limit}")

    def table1_row(self, top_n: int = 10) -> Dict[str, object]:
        """The row of Table 1 for this query."""
        concov_decompositions, elapsed = self.ranked_decompositions(
            cost="cardinalities", limit=top_n, constrained=True
        )
        return {
            "query": self.name,
            "concov_shw": self.concov_shw(max_k=self.width + 2),
            "hypergraph_size": self.hypergraph.num_edges(),
            "soft_bags": len(self.soft_bags),
            "concov_soft_bags": len(self.concov_bags),
            "top10_seconds": elapsed,
            "num_decompositions": len(concov_decompositions),
        }


# -- batch runtime integration -----------------------------------------------
#
# The supervised batch runtime (repro.runtime.supervisor) is deliberately
# agnostic about what a task computes; these three pieces bind it to the
# paper's pipeline:
#
# * batch_task_specs  — a workload's query set as plain task dicts,
# * execute_batch_task — the worker-side runner (resolved by dotted path
#   inside the spawned process),
# * BatchCertifier    — the parent-side certifier that rebuilds every
#   query hypergraph *itself* and never trusts worker-supplied structure.


def batch_task_specs(
    queries: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    deadline: Optional[float] = None,
    max_work: Optional[int] = None,
) -> List[Dict[str, object]]:
    """One task spec per benchmark query (all six when ``queries`` is None).

    A spec is a plain JSON-able dict — exactly what the supervisor
    fingerprints for the checkpoint ledger and ships to the worker.
    ``deadline``/``max_work`` are the *full-solve* caps; the degradation
    ladder scales them down for the tighter levels.
    """
    from repro.workloads.registry import benchmark_queries, benchmark_query

    if queries is None:
        entries = benchmark_queries()
    else:
        entries = [benchmark_query(name) for name in queries]
    return [
        {
            "kind": "solve",
            "query": entry.name,
            "workload": entry.dataset,
            "width": entry.width,
            "scale": scale,
            "seed": seed,
            "deadline": deadline,
            "max_work": max_work,
            "label": entry.name,
        }
        for entry in entries
    ]


def execute_batch_task(payload: Dict[str, object]) -> Dict[str, object]:
    """The worker-side runner of one supervised batch task.

    ``payload`` is a task spec plus the supervisor's per-attempt fields:
    ``mode`` (``ranked`` — the ConCov + cost-ranked solve the figures use —
    or ``decide`` — the plain Algorithm 1 existence path of the degradation
    ladder) and the level-scaled ``deadline``/``max_work`` caps, which
    become the in-worker :class:`Budget` (the cooperative layer under the
    parent's SIGKILL backstop).

    Returns a JSON-able result dict: the decomposition in wire format (to
    be re-certified by the parent), the claimed width, and the governed
    :class:`SolveOutcome` counters.  An exhausted budget with no anytime
    decomposition is reported as ``{"ok": False, "reason": <status>}`` so
    the supervisor can degrade instead of trusting an inconclusive answer.
    """
    from repro.core.candidate_bags import soft_candidate_bags
    from repro.core.certify import decomposition_to_payload
    from repro.core.ctd import candidate_td
    from repro.core.enumerate import enumerate_ctds
    from repro.db.cost import make_cost_preference
    from repro.workloads.registry import benchmark_query

    entry = benchmark_query(str(payload["query"]))
    width = int(payload.get("width") or entry.width)
    scale = float(payload.get("scale") or 1.0)
    seed = payload.get("seed")
    mode = str(payload.get("mode", "ranked"))
    budget = None
    if payload.get("deadline") is not None or payload.get("max_work") is not None:
        budget = Budget(
            deadline=payload.get("deadline"), max_work=payload.get("max_work")
        )
    database, query = entry.load(scale=scale, seed=seed)
    hypergraph = query.hypergraph()
    bags = soft_candidate_bags(hypergraph, width, budget=budget)
    if mode == "decide":
        decomposition = candidate_td(hypergraph, bags, budget=budget)
    else:
        constraint = ConnectedCoverConstraint(hypergraph, width)
        preference = make_cost_preference(
            "cardinalities", query, database, CardinalityEstimator(database)
        )
        found = enumerate_ctds(
            hypergraph,
            bags,
            constraint=constraint,
            preference=preference,
            limit=1,
            budget=budget,
        )
        decomposition = found[0] if found else None
    from repro.runtime.budget import completed_outcome

    outcome = budget.outcome() if budget is not None else completed_outcome()
    if decomposition is None and outcome.partial:
        return {
            "ok": False,
            "reason": outcome.status,
            "error": "budget exhausted before any decomposition was found "
            f"({outcome.describe()})",
        }
    return {
        "ok": True,
        "query": entry.name,
        "mode": mode,
        "level": payload.get("level"),
        "width": width,
        "decided": decomposition is not None,
        "decomposition": (
            decomposition_to_payload(decomposition)
            if decomposition is not None
            else None
        ),
        "outcome": {
            "status": outcome.status,
            "work": outcome.work,
            "elapsed": round(outcome.elapsed, 6),
        },
    }


class BatchCertifier:
    """Parent-side certification of supervised batch results.

    The certifier rebuilds each query hypergraph from the deterministic
    workload generator (cached per ``(query, scale, seed)``) — the trusted
    reference a worker's claims are checked against.  A result's
    decomposition payload is reconstructed with
    :func:`repro.core.certify.decomposition_from_payload` (malformed →
    rejected, not crashed) and then certified with the ConCov constraint
    (``ranked`` mode only — ``decide`` results never claimed it) and the
    task's width claim.
    """

    def __init__(self, cache="auto"):
        self.cache = cache
        self._hypergraphs: Dict[Tuple[str, float, object], Tuple[object, int]] = {}

    def _trusted_hypergraph(self, name: str, scale: float, seed):
        key = (name, scale, seed)
        if key not in self._hypergraphs:
            from repro.workloads.registry import benchmark_query

            entry = benchmark_query(name)
            _, query = entry.load(scale=scale, seed=seed, cache=self.cache)
            self._hypergraphs[key] = (query.hypergraph(), entry.width)
        return self._hypergraphs[key]

    def __call__(self, task: Dict[str, object], result: Dict[str, object]):
        from repro.core.certify import (
            Certification,
            certify_ctd,
            decomposition_from_payload,
        )

        hypergraph, default_width = self._trusted_hypergraph(
            str(task["query"]), float(task.get("scale") or 1.0), task.get("seed")
        )
        width = int(task.get("width") or default_width)
        payload = result.get("decomposition") if isinstance(result, dict) else None
        if payload is None:
            # "No decomposition of width <= k" cannot be certified in
            # O(result) time; accept it only from a *complete* search —
            # a partial one must have reported {"ok": False} instead.
            outcome = result.get("outcome") or {}
            if result.get("decided") is False and outcome.get("status") == "complete":
                return Certification(True)
            return Certification(False, ("result carries no decomposition",))
        try:
            ctd = decomposition_from_payload(hypergraph, payload)
        except ValueError as exc:
            return Certification(False, (f"malformed decomposition payload: {exc}",))
        constraint = None
        if result.get("mode", "ranked") == "ranked":
            constraint = ConnectedCoverConstraint(hypergraph, width)
        return certify_ctd(hypergraph, ctd, constraint=constraint, width_claim=width)
