"""Decomposition data structures: tree decompositions, GHDs and HDs."""

from repro.decompositions.tree import TreeNode, RootedTree
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.ghd import GeneralizedHypertreeDecomposition, HypertreeDecomposition
from repro.decompositions.width import (
    bag_cover_number,
    is_complete_join_tree,
    verify_td,
    verify_ghd,
    verify_hd,
)

__all__ = [
    "TreeNode",
    "RootedTree",
    "TreeDecomposition",
    "GeneralizedHypertreeDecomposition",
    "HypertreeDecomposition",
    "bag_cover_number",
    "is_complete_join_tree",
    "verify_td",
    "verify_ghd",
    "verify_hd",
]
