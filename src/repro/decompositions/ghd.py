"""Generalised hypertree decompositions (GHDs) and hypertree decompositions (HDs).

A GHD extends a tree decomposition with a λ-label per node: a set of
hyperedges whose union covers the node's bag.  An HD is a GHD over a rooted
tree that additionally satisfies the *special condition*:
``B(T_u) ∩ ⋃λ(u) ⊆ B(u)`` for every node ``u``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode


class GeneralizedHypertreeDecomposition(TreeDecomposition):
    """A GHD ``(T, λ, B)``.

    Each node carries ``data["bag"]`` (a frozenset of vertices) and
    ``data["cover"]`` (a tuple of :class:`Edge`).  The width of a GHD is the
    maximum λ-label size.
    """

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_labels(
        cls,
        hypergraph: Hypergraph,
        bags: Sequence[Iterable[Vertex]],
        covers: Sequence[Iterable[str]],
        parent_of: Sequence[Optional[int]],
    ) -> "GeneralizedHypertreeDecomposition":
        """Build a GHD from bags, edge-name covers and parent indices."""
        if len(bags) != len(covers) or len(bags) != len(parent_of):
            raise ValueError("bags, covers and parent_of must have equal length")
        tree = RootedTree()
        nodes: List[TreeNode] = []
        for i, (bag, cover) in enumerate(zip(bags, covers)):
            parent_index = parent_of[i]
            parent = nodes[parent_index] if parent_index is not None else None
            cover_edges = tuple(hypergraph.edge(name) for name in cover)
            nodes.append(
                tree.new_node(parent, bag=frozenset(bag), cover=cover_edges)
            )
        return cls(hypergraph, tree)

    @classmethod
    def from_td_with_greedy_covers(
        cls, td: TreeDecomposition
    ) -> "GeneralizedHypertreeDecomposition":
        """Attach greedy edge covers to a TD's bags (not necessarily optimal)."""
        from repro.core.covers import greedy_edge_cover

        def transform(node: TreeNode) -> Dict:
            bag = node.data["bag"]
            cover = greedy_edge_cover(td.hypergraph, bag)
            if cover is None:
                raise ValueError(f"bag {set(bag)} has no edge cover")
            return {"bag": bag, "cover": tuple(cover)}

        return cls(td.hypergraph, td.tree.map_tree(transform))

    # -- accessors ---------------------------------------------------------------

    def cover(self, node: TreeNode) -> Tuple[Edge, ...]:
        """The λ-label of ``node``."""
        return node.data["cover"]

    def ghd_width(self) -> int:
        """The width of the GHD: the maximum λ-label size."""
        return max(len(self.cover(node)) for node in self.tree.nodes())

    # -- validity ------------------------------------------------------------------

    def covers_are_valid(self) -> bool:
        """Every λ-label consists of hypergraph edges and covers its bag."""
        hypergraph = self.hypergraph
        bitsets = hypergraph.bitsets
        edge_sets = {e.name: e.vertices for e in hypergraph.edges}
        edge_masks = bitsets.edge_mask_by_name
        for node in self.tree.nodes():
            union = 0
            for edge in self.cover(node):
                if edge_sets.get(edge.name) != edge.vertices:
                    return False
                union |= edge_masks[edge.name]
            try:
                bag_mask = bitsets.indexer.to_mask(self.bag(node))
            except KeyError:
                # A bag vertex outside V(H) is never covered by λ edges.
                return False
            if bag_mask & ~union:
                return False
        return True

    def is_valid(self) -> bool:
        return super().is_valid() and self.covers_are_valid()

    def _special_condition_holds_at(self, node: TreeNode) -> bool:
        """``B(T_u) ∩ ⋃λ(u) ⊆ B(u)`` at one node, tested on masks.

        Clipping to ``V(H)`` is sound: the left-hand side is a subset of
        ``⋃λ(u) ⊆ V(H)``, so vertices outside the hypergraph can neither
        violate nor help satisfy the condition.
        """
        hypergraph = self.hypergraph
        edge_masks = hypergraph.bitsets.edge_mask_by_name
        cover_union = 0
        for edge in self.cover(node):
            mask = edge_masks.get(edge.name)
            if mask is None:
                mask = hypergraph.vertex_mask(edge.vertices)
            cover_union |= mask
        subtree_mask = hypergraph.vertex_mask(self.subtree_vertices(node))
        bag_mask = hypergraph.vertex_mask(self.bag(node))
        return (subtree_mask & cover_union) & ~bag_mask == 0

    def satisfies_special_condition(self) -> bool:
        """The HD special condition: ``B(T_u) ∩ ⋃λ(u) ⊆ B(u)`` for all ``u``."""
        return all(
            self._special_condition_holds_at(node) for node in self.tree.nodes()
        )

    def special_condition_violations(self) -> List[TreeNode]:
        """The nodes at which the special condition is violated."""
        return [
            node
            for node in self.tree.nodes()
            if not self._special_condition_holds_at(node)
        ]

    def to_tree_decomposition(self) -> TreeDecomposition:
        """Forget the λ-labels, keeping only the bags."""
        return TreeDecomposition(
            self.hypergraph,
            self.tree.map_tree(lambda node: {"bag": node.data["bag"]}),
        )

    def __repr__(self) -> str:
        return (
            f"GHD(nodes={self.tree.num_nodes()}, width={self.ghd_width()})"
        )


class HypertreeDecomposition(GeneralizedHypertreeDecomposition):
    """A hypertree decomposition: a GHD satisfying the special condition."""

    def is_valid(self) -> bool:
        return super().is_valid() and self.satisfies_special_condition()

    def __repr__(self) -> str:
        return f"HD(nodes={self.tree.num_nodes()}, width={self.ghd_width()})"
