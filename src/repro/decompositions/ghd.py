"""Generalised hypertree decompositions (GHDs) and hypertree decompositions (HDs).

A GHD extends a tree decomposition with a λ-label per node: a set of
hyperedges whose union covers the node's bag.  An HD is a GHD over a rooted
tree that additionally satisfies the *special condition*:
``B(T_u) ∩ ⋃λ(u) ⊆ B(u)`` for every node ``u``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode


class GeneralizedHypertreeDecomposition(TreeDecomposition):
    """A GHD ``(T, λ, B)``.

    Each node carries ``data["bag"]`` (a frozenset of vertices) and
    ``data["cover"]`` (a tuple of :class:`Edge`).  The width of a GHD is the
    maximum λ-label size.
    """

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_labels(
        cls,
        hypergraph: Hypergraph,
        bags: Sequence[Iterable[Vertex]],
        covers: Sequence[Iterable[str]],
        parent_of: Sequence[Optional[int]],
    ) -> "GeneralizedHypertreeDecomposition":
        """Build a GHD from bags, edge-name covers and parent indices."""
        if len(bags) != len(covers) or len(bags) != len(parent_of):
            raise ValueError("bags, covers and parent_of must have equal length")
        tree = RootedTree()
        nodes: List[TreeNode] = []
        for i, (bag, cover) in enumerate(zip(bags, covers)):
            parent_index = parent_of[i]
            parent = nodes[parent_index] if parent_index is not None else None
            cover_edges = tuple(hypergraph.edge(name) for name in cover)
            nodes.append(
                tree.new_node(parent, bag=frozenset(bag), cover=cover_edges)
            )
        return cls(hypergraph, tree)

    @classmethod
    def from_td_with_greedy_covers(
        cls, td: TreeDecomposition
    ) -> "GeneralizedHypertreeDecomposition":
        """Attach greedy edge covers to a TD's bags (not necessarily optimal)."""
        from repro.core.covers import greedy_edge_cover

        def transform(node: TreeNode) -> Dict:
            bag = node.data["bag"]
            cover = greedy_edge_cover(td.hypergraph, bag)
            if cover is None:
                raise ValueError(f"bag {set(bag)} has no edge cover")
            return {"bag": bag, "cover": tuple(cover)}

        return cls(td.hypergraph, td.tree.map_tree(transform))

    # -- accessors ---------------------------------------------------------------

    def cover(self, node: TreeNode) -> Tuple[Edge, ...]:
        """The λ-label of ``node``."""
        return node.data["cover"]

    def ghd_width(self) -> int:
        """The width of the GHD: the maximum λ-label size."""
        return max(len(self.cover(node)) for node in self.tree.nodes())

    # -- validity ------------------------------------------------------------------

    def covers_are_valid(self) -> bool:
        """Every λ-label consists of hypergraph edges and covers its bag."""
        edge_sets = {e.name: e.vertices for e in self.hypergraph.edges}
        for node in self.tree.nodes():
            union = set()
            for edge in self.cover(node):
                if edge_sets.get(edge.name) != edge.vertices:
                    return False
                union.update(edge.vertices)
            if not self.bag(node) <= union:
                return False
        return True

    def is_valid(self) -> bool:
        return super().is_valid() and self.covers_are_valid()

    def satisfies_special_condition(self) -> bool:
        """The HD special condition: ``B(T_u) ∩ ⋃λ(u) ⊆ B(u)`` for all ``u``."""
        for node in self.tree.nodes():
            subtree = self.subtree_vertices(node)
            cover_union = self.hypergraph.vertices_of(self.cover(node))
            if not (subtree & cover_union) <= self.bag(node):
                return False
        return True

    def special_condition_violations(self) -> List[TreeNode]:
        """The nodes at which the special condition is violated."""
        violations = []
        for node in self.tree.nodes():
            subtree = self.subtree_vertices(node)
            cover_union = self.hypergraph.vertices_of(self.cover(node))
            if not (subtree & cover_union) <= self.bag(node):
                violations.append(node)
        return violations

    def to_tree_decomposition(self) -> TreeDecomposition:
        """Forget the λ-labels, keeping only the bags."""
        return TreeDecomposition(
            self.hypergraph,
            self.tree.map_tree(lambda node: {"bag": node.data["bag"]}),
        )

    def __repr__(self) -> str:
        return (
            f"GHD(nodes={self.tree.num_nodes()}, width={self.ghd_width()})"
        )


class HypertreeDecomposition(GeneralizedHypertreeDecomposition):
    """A hypertree decomposition: a GHD satisfying the special condition."""

    def is_valid(self) -> bool:
        return super().is_valid() and self.satisfies_special_condition()

    def __repr__(self) -> str:
        return f"HD(nodes={self.tree.num_nodes()}, width={self.ghd_width()})"
