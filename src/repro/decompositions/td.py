"""Tree decompositions of hypergraphs.

A tree decomposition of a hypergraph ``H`` is a rooted tree whose nodes carry
*bags* (vertex sets) such that (1) every hyperedge is covered by some bag and
(2) for every vertex, the nodes whose bag contains it form a connected
subtree (the connectedness condition).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.hypergraph.components import vertex_components
from repro.decompositions.tree import RootedTree, TreeNode


class TreeDecomposition:
    """A (rooted) tree decomposition ``(T, B)`` of a hypergraph.

    The bag of node ``u`` is stored in ``u.data["bag"]`` as a frozenset of
    vertices.  The class offers validity checking, width, and the structural
    predicates used by the paper (CompNF, candidate-bag membership).
    """

    def __init__(self, hypergraph: Hypergraph, tree: RootedTree):
        self.hypergraph = hypergraph
        self.tree = tree

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_bags(
        cls,
        hypergraph: Hypergraph,
        bags: Sequence[Iterable[Vertex]],
        parent_of: Sequence[Optional[int]],
    ) -> "TreeDecomposition":
        """Build a TD from a list of bags and a parent index per bag.

        ``parent_of[i]`` is the index of the parent of bag ``i`` or ``None``
        for the (single) root.  Parents must appear before children.
        """
        tree = RootedTree()
        nodes: List[TreeNode] = []
        for i, bag in enumerate(bags):
            parent_index = parent_of[i]
            parent = nodes[parent_index] if parent_index is not None else None
            nodes.append(tree.new_node(parent, bag=frozenset(bag)))
        return cls(hypergraph, tree)

    @classmethod
    def single_bag(cls, hypergraph: Hypergraph) -> "TreeDecomposition":
        """The trivial TD with one bag containing all vertices."""
        tree = RootedTree()
        tree.new_node(None, bag=frozenset(hypergraph.vertices))
        return cls(hypergraph, tree)

    # -- accessors ------------------------------------------------------------

    def bag(self, node: TreeNode) -> FrozenSet[Vertex]:
        return node.data["bag"]

    def bags(self) -> List[FrozenSet[Vertex]]:
        return [self.bag(node) for node in self.tree.nodes()]

    def nodes(self) -> List[TreeNode]:
        return self.tree.nodes()

    def subtree_vertices(self, node: TreeNode) -> FrozenSet[Vertex]:
        """``B(T_u)``: the union of bags in the subtree rooted at ``node``."""
        result = set()
        for descendant in self.tree.preorder(node):
            result.update(self.bag(descendant))
        return frozenset(result)

    def width(self) -> int:
        """``max |B(u)| - 1`` (the treewidth-style width of the TD)."""
        return max(len(bag) for bag in self.bags()) - 1

    # -- validity --------------------------------------------------------------

    def covers_all_edges(self) -> bool:
        bags = self.bags()
        return all(
            any(edge.vertices <= bag for bag in bags) for edge in self.hypergraph.edges
        )

    def satisfies_connectedness(self) -> bool:
        """Every vertex induces a non-empty connected subtree of bag nodes."""
        nodes = self.tree.nodes()
        occurrences: Dict[Vertex, List[TreeNode]] = {}
        for node in nodes:
            for v in self.bag(node):
                occurrences.setdefault(v, []).append(node)
        for vertex in self.hypergraph.vertices:
            holders = occurrences.get(vertex, [])
            if not holders:
                return False
            holder_ids = {node.node_id for node in holders}
            # The nodes containing `vertex` are connected iff every holder
            # except the shallowest has its parent also holding the vertex.
            top = min(holders, key=self.tree.depth)
            for node in holders:
                if node is top:
                    continue
                if node.parent is None or node.parent.node_id not in holder_ids:
                    return False
        return True

    def is_valid(self) -> bool:
        return self.covers_all_edges() and self.satisfies_connectedness()

    # -- structural predicates ---------------------------------------------------

    def is_component_normal_form(self) -> bool:
        """Check the CompNF condition of Definition 2.

        For each node ``u`` and child ``c`` there must be exactly one
        [B(u)]-component ``C_c`` with ``B(T_c) = ⋃C_c ∪ (B(u) ∩ B(c))``.
        """
        for node in self.tree.nodes():
            bag_u = self.bag(node)
            components = vertex_components(self.hypergraph, bag_u)
            for child in node.children:
                subtree = self.subtree_vertices(child)
                interface = bag_u & self.bag(child)
                matches = [
                    comp
                    for comp in components
                    if subtree == comp | interface
                ]
                if len(matches) != 1:
                    return False
        return True

    def uses_bags_from(self, candidate_bags: Iterable[FrozenSet[Vertex]]) -> bool:
        """``True`` iff every bag of the TD belongs to ``candidate_bags``."""
        allowed = {frozenset(bag) for bag in candidate_bags}
        return all(bag in allowed for bag in self.bags())

    # -- misc -----------------------------------------------------------------

    def bag_multiset(self) -> Tuple[FrozenSet[Vertex], ...]:
        """The bags sorted canonically; useful for deduplicating decompositions."""
        return tuple(sorted(self.bags(), key=lambda bag: sorted(map(str, bag))))

    def canonical_form(self) -> Tuple:
        """A hashable canonical encoding of the decomposition tree.

        Two decompositions get the same canonical form iff they are equal as
        unordered rooted trees of bags.  Used to deduplicate enumerated CTDs.
        """

        def encode(node: TreeNode) -> Tuple:
            children = tuple(sorted(encode(child) for child in node.children))
            bag = tuple(sorted(map(str, self.bag(node))))
            return (bag, children)

        return encode(self.tree.root)

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(nodes={self.tree.num_nodes()}, "
            f"width={self.width()})"
        )
