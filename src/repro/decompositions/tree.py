"""Rooted trees used as the skeletons of decompositions.

A :class:`TreeNode` carries an arbitrary payload dictionary (bags, λ-labels,
materialised relations, cost annotations...) so the same tree type serves
tree decompositions, GHDs, join trees, and the partial decompositions built
by the candidate-tree-decomposition solver.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional


class TreeNode:
    """A node of a rooted tree."""

    __slots__ = ("node_id", "children", "parent", "data")

    def __init__(self, node_id: int, data: Optional[Dict] = None):
        self.node_id = node_id
        self.children: List["TreeNode"] = []
        self.parent: Optional["TreeNode"] = None
        self.data: Dict = dict(data) if data else {}

    def add_child(self, child: "TreeNode") -> "TreeNode":
        child.parent = self
        self.children.append(child)
        return child

    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return f"TreeNode(id={self.node_id}, children={len(self.children)})"


class RootedTree:
    """A rooted tree with integer node ids and payload dictionaries."""

    def __init__(self):
        self._nodes: Dict[int, TreeNode] = {}
        self._root: Optional[TreeNode] = None
        self._next_id = 0

    @property
    def root(self) -> TreeNode:
        if self._root is None:
            raise ValueError("tree has no root")
        return self._root

    def has_root(self) -> bool:
        return self._root is not None

    def new_node(self, parent: Optional[TreeNode] = None, **data) -> TreeNode:
        """Create a node; without a parent it becomes the root."""
        node = TreeNode(self._next_id, data)
        self._next_id += 1
        self._nodes[node.node_id] = node
        if parent is None:
            if self._root is not None:
                raise ValueError("tree already has a root")
            self._root = node
        else:
            parent.add_child(node)
        return node

    def nodes(self) -> List[TreeNode]:
        """All nodes in pre-order (root first)."""
        if self._root is None:
            return []
        return list(self.preorder(self._root))

    def preorder(self, start: Optional[TreeNode] = None) -> Iterator[TreeNode]:
        start = start or self.root
        stack = [start]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self, start: Optional[TreeNode] = None) -> Iterator[TreeNode]:
        start = start or self.root
        result: List[TreeNode] = []
        stack = [start]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(node.children)
        return iter(reversed(result))

    def subtree_nodes(self, node: TreeNode) -> List[TreeNode]:
        """All nodes of the subtree rooted at ``node`` (pre-order)."""
        return list(self.preorder(node))

    def depth(self, node: TreeNode) -> int:
        """Depth of ``node`` (the root has depth 0)."""
        depth = 0
        current = node
        while current.parent is not None:
            depth += 1
            current = current.parent
        return depth

    def height(self) -> int:
        """Height of the tree (a single-node tree has height 0)."""
        if self._root is None:
            return -1
        return max(self.depth(node) for node in self.nodes())

    def num_nodes(self) -> int:
        return len(self._nodes)

    def path(self, a: TreeNode, b: TreeNode) -> List[TreeNode]:
        """The unique path between two nodes (inclusive)."""
        ancestors_a = []
        current: Optional[TreeNode] = a
        while current is not None:
            ancestors_a.append(current)
            current = current.parent
        index = {node.node_id: i for i, node in enumerate(ancestors_a)}
        path_b = []
        current = b
        while current is not None and current.node_id not in index:
            path_b.append(current)
            current = current.parent
        if current is None:
            raise ValueError("nodes are not in the same tree")
        return ancestors_a[: index[current.node_id] + 1] + list(reversed(path_b))

    def map_tree(self, transform: Callable[[TreeNode], Dict]) -> "RootedTree":
        """Structurally copy the tree, computing new payloads via ``transform``."""
        new_tree = RootedTree()

        def copy(node: TreeNode, parent: Optional[TreeNode]) -> None:
            new_node = new_tree.new_node(parent, **transform(node))
            for child in node.children:
                copy(child, new_node)

        if self._root is not None:
            copy(self._root, None)
        return new_tree

    def copy(self) -> "RootedTree":
        return self.map_tree(lambda node: dict(node.data))

    def __repr__(self) -> str:
        return f"RootedTree(nodes={self.num_nodes()})"
