"""Width helpers and decomposition verification utilities."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
)


def bag_cover_number(hypergraph: Hypergraph, bag: Iterable[Vertex]) -> Optional[int]:
    """``ρ(bag)``: the minimum number of hyperedges needed to cover ``bag``.

    Returns ``None`` when the bag cannot be covered at all (some vertex of
    the bag occurs in no edge).  Exact branch-and-bound set cover; intended
    for the small bags that appear in decompositions of queries.
    """
    from repro.core.covers import minimum_edge_cover

    cover = minimum_edge_cover(hypergraph, bag)
    return None if cover is None else len(cover)


def verify_td(td: TreeDecomposition, expected_max_bag: Optional[int] = None) -> bool:
    """Check TD validity and, optionally, an upper bound on bag sizes."""
    if not td.is_valid():
        return False
    if expected_max_bag is not None:
        if any(len(bag) > expected_max_bag for bag in td.bags()):
            return False
    return True


def verify_ghd(
    ghd: GeneralizedHypertreeDecomposition, expected_width: Optional[int] = None
) -> bool:
    """Check GHD validity and, optionally, an upper bound on its width."""
    if not ghd.is_valid():
        return False
    if expected_width is not None and ghd.ghd_width() > expected_width:
        return False
    return True


def verify_hd(
    hd: HypertreeDecomposition, expected_width: Optional[int] = None
) -> bool:
    """Check HD validity (incl. special condition) and an optional width bound."""
    if not isinstance(hd, GeneralizedHypertreeDecomposition):
        return False
    if not hd.is_valid() or not hd.satisfies_special_condition():
        return False
    if expected_width is not None and hd.ghd_width() > expected_width:
        return False
    return True


def is_complete_join_tree(td: TreeDecomposition) -> bool:
    """``True`` iff every bag of the TD is covered by a single hyperedge.

    Such decompositions are exactly the join trees of α-acyclic hypergraphs
    (width-1 GHDs).
    """
    hypergraph = td.hypergraph
    for bag in td.bags():
        if not single_edge_coverable(hypergraph, bag):
            return False
    return True


def single_edge_coverable(hypergraph: Hypergraph, bag: FrozenSet[Vertex]) -> bool:
    """``True`` iff the bag is a subset of a single hyperedge."""
    bitsets = hypergraph.bitsets
    try:
        bag_mask = bitsets.indexer.to_mask(bag)
    except KeyError:
        # A vertex outside V(H) can never be covered by an edge.
        return False
    return any((bag_mask & ~edge_mask) == 0 for edge_mask in bitsets.edge_masks)
