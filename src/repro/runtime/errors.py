"""The ``ReproError`` exception taxonomy.

Every failure the system can *expect* — a missing input file, a corrupt
batch ledger, a worker process that crashed or timed out — is represented
by a :class:`ReproError` subclass carrying a process exit code, so the CLI
can catch the whole family at one boundary and turn it into a structured
one-line error instead of a traceback.  Programming errors keep raising
their natural exceptions and keep their tracebacks.

Exit-code conventions:

* ``2`` — user-level errors (bad arguments, missing files, corrupt
  ledgers): the same code ``argparse`` uses for unusable invocations.
* ``1`` — task/batch failures: the run worked as designed but some result
  could not be produced.
* The governed-solve codes (124/125/130) stay with
  :mod:`repro.runtime.budget`; a :class:`TaskFailure` of kind ``timeout``
  describes one *task* inside a surviving batch, not the process itself.

:class:`TaskFailure` doubles as the supervisor's structured failure
*record*: one instance describes one failed attempt-or-task with a ``kind``
from :data:`FAILURE_KINDS`, and :meth:`TaskFailure.as_record` is what the
batch ledger and the failure-summary report store.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "ReproError",
    "UserError",
    "LedgerError",
    "TaskFailure",
    "FAILURE_TIMEOUT",
    "FAILURE_CRASHED",
    "FAILURE_INVALID_RESULT",
    "FAILURE_EXHAUSTED_RETRIES",
    "FAILURE_KINDS",
]


class ReproError(Exception):
    """Base class of all expected, user-reportable failures.

    ``exit_code`` is the process exit code the CLI uses when this error
    terminates a run; subclasses override the class attribute or pass
    ``exit_code=`` per instance.
    """

    exit_code = 1

    def __init__(self, message: str, *, exit_code: Optional[int] = None):
        super().__init__(message)
        if exit_code is not None:
            self.exit_code = exit_code


class UserError(ReproError):
    """The invocation cannot be carried out: missing hypergraph file, bad
    query or workload name, unusable flag combination.  Exit code 2, like
    ``argparse`` rejections."""

    exit_code = 2


class LedgerError(ReproError):
    """A batch ledger exists but cannot be trusted: corrupt records in the
    middle of the journal, a foreign file, an incompatible version.  The
    safe reaction is a clean refusal (exit 2) — resuming from a lying
    ledger could silently drop or duplicate tasks."""

    exit_code = 2


#: The failure kinds a supervised task can report.
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASHED = "crashed"
FAILURE_INVALID_RESULT = "invalid_result"
FAILURE_EXHAUSTED_RETRIES = "exhausted_retries"

FAILURE_KINDS = (
    FAILURE_TIMEOUT,
    FAILURE_CRASHED,
    FAILURE_INVALID_RESULT,
    FAILURE_EXHAUSTED_RETRIES,
)


class TaskFailure(ReproError):
    """One supervised task (or task attempt) failed, in a structured way.

    ``kind`` is one of :data:`FAILURE_KINDS`:

    * ``timeout`` — the worker overran its hard wall-clock allowance and
      was killed from the parent;
    * ``crashed`` — the worker died (segfault, OOM kill, unhandled
      exception, ``kill -9``) without delivering a result;
    * ``invalid_result`` — the worker delivered something that is not a
      well-formed result, or a result that failed independent
      certification;
    * ``exhausted_retries`` — every attempt at every degradation level
      failed; the task is recorded as ``failed`` and the batch moves on.

    The supervisor *contains* these: per-task failures are collected into
    the batch report and the ledger, never raised across the batch loop.
    """

    exit_code = 1

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        fingerprint: Optional[str] = None,
        level: Optional[str] = None,
        attempt: Optional[int] = None,
        detail: Optional[str] = None,
    ):
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}; known: {FAILURE_KINDS}")
        super().__init__(message)
        self.kind = kind
        self.fingerprint = fingerprint
        self.level = level
        self.attempt = attempt
        self.detail = detail

    def as_record(self) -> Dict[str, object]:
        """The JSON-able form stored in the batch ledger."""
        record: Dict[str, object] = {"kind": self.kind, "message": str(self)}
        if self.fingerprint is not None:
            record["fingerprint"] = self.fingerprint
        if self.level is not None:
            record["level"] = self.level
        if self.attempt is not None:
            record["attempt"] = self.attempt
        if self.detail is not None:
            record["detail"] = self.detail
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "TaskFailure":
        """Rebuild a failure from its ledger record (resume reporting)."""
        return cls(
            str(record.get("kind", FAILURE_CRASHED)),
            str(record.get("message", "")),
            fingerprint=record.get("fingerprint"),  # type: ignore[arg-type]
            level=record.get("level"),  # type: ignore[arg-type]
            attempt=record.get("attempt"),  # type: ignore[arg-type]
            detail=record.get("detail"),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:
        return f"TaskFailure(kind={self.kind!r}, message={str(self)!r})"
