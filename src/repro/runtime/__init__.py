"""Resource governance and fault injection for the solver stack.

See :mod:`repro.runtime.budget` for deadlines/work budgets/outcomes and
:mod:`repro.runtime.faults` for the deterministic fault-injection harness;
``docs/ROBUSTNESS.md`` documents the anytime guarantees per solver.
"""

from repro.runtime.budget import (
    EXIT_CODES,
    STATUS_BUDGET,
    STATUS_COMPLETE,
    STATUS_DEADLINE,
    STATUS_INTERRUPTED,
    Budget,
    BudgetExceeded,
    SolveOutcome,
    completed_outcome,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SolveOutcome",
    "completed_outcome",
    "EXIT_CODES",
    "STATUS_BUDGET",
    "STATUS_COMPLETE",
    "STATUS_DEADLINE",
    "STATUS_INTERRUPTED",
]
