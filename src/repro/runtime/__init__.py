"""Resource governance, fault tolerance, and fault injection.

See :mod:`repro.runtime.budget` for deadlines/work budgets/outcomes,
:mod:`repro.runtime.errors` for the ``ReproError`` taxonomy,
:mod:`repro.runtime.checkpoint` for the durable batch ledger,
:mod:`repro.runtime.supervisor` for the supervised batch runtime, and
:mod:`repro.runtime.faults` for the deterministic fault-injection harness;
``docs/ROBUSTNESS.md`` documents the anytime guarantees per solver and the
batch runtime's failure semantics.
"""

from repro.runtime.budget import (
    EXIT_CODES,
    STATUS_BUDGET,
    STATUS_COMPLETE,
    STATUS_DEADLINE,
    STATUS_INTERRUPTED,
    Budget,
    BudgetExceeded,
    SolveOutcome,
    completed_outcome,
)
from repro.runtime.errors import (
    FAILURE_CRASHED,
    FAILURE_EXHAUSTED_RETRIES,
    FAILURE_INVALID_RESULT,
    FAILURE_KINDS,
    FAILURE_TIMEOUT,
    LedgerError,
    ReproError,
    TaskFailure,
    UserError,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SolveOutcome",
    "completed_outcome",
    "EXIT_CODES",
    "STATUS_BUDGET",
    "STATUS_COMPLETE",
    "STATUS_DEADLINE",
    "STATUS_INTERRUPTED",
    "ReproError",
    "UserError",
    "LedgerError",
    "TaskFailure",
    "FAILURE_TIMEOUT",
    "FAILURE_CRASHED",
    "FAILURE_INVALID_RESULT",
    "FAILURE_EXHAUSTED_RETRIES",
    "FAILURE_KINDS",
]
