"""Intra-solve sharding: process pools, shared-memory mask shipping, stripes.

The two embarrassingly-parallel pre-fixpoint stages of a solve — candidate
bag enumeration (:mod:`repro.core.candidate_bags`) and per-block probe-table
construction (:meth:`repro.core.options.SolverCore.probe_tables`) — are both
"loop over an indexed frontier, compute per-item results on read-only mask
tables, union the results".  This module shards those loops by *stripe*
(item ``i`` goes to shard ``i % shards``) across a ``multiprocessing`` spawn
pool:

* **Inputs travel by shared memory, not pickle.**  The read-only int-mask
  tables (edge masks, block-index arrays) are packed into one
  ``multiprocessing.shared_memory`` segment as an ``(n, limbs)`` uint64
  limb array (:class:`SharedMaskBundle`); a worker attaches by name and
  reconstructs the Python ints.  Only the (much smaller) per-shard result
  sets are pickled back.
* **Merges are deterministic.**  Stripes partition the enumeration frontier
  exactly — each ≤k-edge subset is explored under the stripe of its
  smallest starting index, each block id under ``block_id % shards`` — and
  results are merged as sorted-mask unions / ascending-block-id
  concatenations, so a sharded run is byte-for-byte identical to the
  serial one.
* **Budgets are respected.**  Each shard runs under a *sub-budget* (an
  equal split of the remaining work cap plus the remaining wall-clock
  allowance); shard outcomes are folded back into the parent budget with
  :meth:`repro.runtime.budget.Budget.absorb`, so exhaustion in any shard
  yields the same anytime under-approximation contract as serial
  (candidate bags: a sound subset; probe tables: ``BudgetExceeded`` at the
  solver's anytime boundary).

``pool=None`` runs the same stripe/merge code path inline in-process — the
equivalence property suite uses this to pin striping correctness
independently of process-pool plumbing, and small inputs stay on it to
avoid IPC overhead (:data:`MIN_PARALLEL_ITEMS`).

Shared-memory lifecycle
-----------------------

Segments are named ``repro-shm-<creator pid>-<random>``.  The creator
unlinks in a ``finally``; workers attach read-only and *unregister* the
attachment from :mod:`multiprocessing.resource_tracker` (on Python < 3.13
an attach registers the segment, and the tracker would unlink it again at
worker exit — double-unlink warnings and premature removal for segments
the parent still owns).  If the creator is SIGKILLed between create and
unlink, the name scheme makes the leak discoverable:
:func:`reap_stale_segments` scans ``/dev/shm`` for ``repro-shm-<pid>-*``
segments whose creator pid is dead and unlinks them — the batch
supervisor calls it after every hard kill and at end of run.
"""

from __future__ import annotations

import atexit
import os
import uuid
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.runtime.budget import Budget, BudgetExceeded

try:  # pragma: no cover - the toolchain ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - shared_memory ships with >= 3.8
    _shm = None

__all__ = [
    "SharedMaskBundle",
    "ShardPool",
    "get_pool",
    "shutdown_pools",
    "reap_stale_segments",
    "parallel_component_union_masks",
    "parallel_cover_union_masks",
    "parallel_probe_tables",
    "split_budget",
    "MIN_PARALLEL_ITEMS",
]

#: Below this many frontier items a process pool cannot win (IPC + attach
#: overhead dominates); the parallel entry points fall back to the inline
#: stripe runner, which is still byte-identical to serial.
MIN_PARALLEL_ITEMS = 64

_SEGMENT_PREFIX = "repro-shm-"


# -- shared-memory mask shipping ----------------------------------------------


def _masks_to_limb_rows(masks: Sequence[int], limbs: int, out, offset: int) -> None:
    word = (1 << 64) - 1
    for i, mask in enumerate(masks):
        row = offset + i
        for j in range(limbs):
            out[row, j] = (mask >> (64 * j)) & word


def _limb_rows_to_masks(rows) -> List[int]:
    limbs = rows.shape[1]
    result = []
    for row in rows:
        mask = 0
        for j in range(limbs - 1, -1, -1):
            mask = (mask << 64) | int(row[j])
        result.append(mask)
    return result


class SharedMaskBundle:
    """Named int-mask tables in one shared-memory segment.

    ``create`` packs the tables into a single ``(total rows, limbs)``
    uint64 limb array backed by :class:`multiprocessing.shared_memory.
    SharedMemory`; :meth:`handle` is the small picklable descriptor a
    worker passes to :meth:`attach`.  The creator owns the segment and
    must call :meth:`unlink` (callers do it in a ``finally``); workers
    call :meth:`close` only.
    """

    def __init__(self, shm, meta: Dict[str, Tuple[int, int]], limbs: int, owner: bool):
        self._shm = shm
        self._meta = meta
        self._limbs = limbs
        self._owner = owner
        total = sum(count for _, count in meta.values())
        self._array = _np.ndarray(
            (total, max(1, limbs)), dtype=_np.uint64, buffer=shm.buf
        )

    @classmethod
    def create(cls, tables: Dict[str, Sequence[int]]) -> "SharedMaskBundle":
        if _np is None or _shm is None:  # pragma: no cover - numpy is baked in
            raise RuntimeError("shared-memory mask shipping needs numpy")
        bits = 1
        for masks in tables.values():
            for mask in masks:
                bits = max(bits, mask.bit_length())
        limbs = max(1, (bits + 63) // 64)
        meta: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for name, masks in tables.items():
            meta[name] = (offset, len(masks))
            offset += len(masks)
        total = max(1, offset)
        name = f"{_SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}"
        shm = _shm.SharedMemory(name=name, create=True, size=total * limbs * 8)
        bundle = cls(shm, meta, limbs, owner=True)
        for table, masks in tables.items():
            start, _ = meta[table]
            _masks_to_limb_rows(masks, limbs, bundle._array, start)
        return bundle

    def handle(self) -> Dict[str, object]:
        """The picklable attach descriptor (segment name + layout)."""
        return {"name": self._shm.name, "meta": self._meta, "limbs": self._limbs}

    @classmethod
    def attach(cls, handle: Dict[str, object]) -> "SharedMaskBundle":
        # On Python < 3.13 an attach registers the segment with the
        # resource tracker, which would unlink it again at worker exit
        # while the creating parent still owns it (and confuse the
        # tracker's bookkeeping for the parent's own registration — the
        # tracker process is shared).  Suppress the registration for the
        # duration of the attach; the parent's ``unlink`` is the single
        # point of removal.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = _shm.SharedMemory(name=str(handle["name"]), create=False)
        finally:
            resource_tracker.register = original_register
        return cls(shm, dict(handle["meta"]), int(handle["limbs"]), owner=False)

    def masks(self, table: str) -> List[int]:
        """Reconstruct one named table as Python ints."""
        start, count = self._meta[table]
        return _limb_rows_to_masks(self._array[start : start + count])

    def close(self) -> None:
        self._array = None
        try:
            self._shm.close()
        except Exception:  # pragma: no cover
            pass

    def unlink(self) -> None:
        """Remove the segment (creator only); safe to call once."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - reaper raced us
                pass


def reap_stale_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Unlink ``repro-shm-*`` segments whose creator process is dead.

    The segment name embeds the creator pid, so a segment leaked by a
    SIGKILLed worker/parent (killed between create and the ``finally``
    unlink) is identifiable without any registry.  Returns the names
    removed.  Safe to call concurrently — racing unlinks are tolerated.
    """
    removed: List[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux / no tmpfs
        return removed
    for name in names:
        if not name.startswith(_SEGMENT_PREFIX):
            continue
        parts = name[len(_SEGMENT_PREFIX) :].split("-", 1)
        try:
            pid = int(parts[0])
        except (IndexError, ValueError):
            continue
        alive = True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            alive = False
        except PermissionError:  # pragma: no cover - someone else's pid
            alive = True
        if alive:
            continue
        try:
            os.unlink(os.path.join(shm_dir, name))
            removed.append(name)
        except OSError:  # pragma: no cover - racing reaper
            pass
    return removed


# -- the shard pool ------------------------------------------------------------


class ShardPool:
    """A persistent spawn-context worker pool for intra-solve shards.

    Spawn (not fork): the solver may run under numpy/BLAS threads and
    inside the supervised batch runtime, where forked children inherit
    undefined lock state.  The pool is reused across solves (spawn costs
    hundreds of ms per worker), so callers get it from :func:`get_pool`
    rather than constructing one per solve.
    """

    def __init__(self, workers: int):
        import multiprocessing

        self.workers = max(1, int(workers))
        self._pool = multiprocessing.get_context("spawn").Pool(processes=self.workers)

    def map(self, func, items):
        return self._pool.map(func, items)

    def close(self) -> None:
        try:
            self._pool.terminate()
            self._pool.join()
        except Exception:  # pragma: no cover
            pass


_POOLS: Dict[int, ShardPool] = {}


def get_pool(workers: int) -> ShardPool:
    """The cached process pool for ``workers`` shards (created on first use)."""
    workers = max(1, int(workers))
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ShardPool(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached pool (atexit; also used by tests)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)


# -- budgets across the process boundary --------------------------------------


def split_budget(
    budget: Optional[Budget], shards: int
) -> Tuple[Optional[float], Optional[int]]:
    """``(remaining deadline seconds, per-shard work cap)`` for shard budgets.

    Deadlines cross the process boundary as *remaining seconds* (a worker
    cannot share the parent's monotonic clock); the work cap is an equal
    split of the remaining units so the shards together never exceed the
    parent's cap.
    """
    if budget is None:
        return (None, None)
    deadline = None
    if budget.deadline is not None:
        deadline = max(0.0, budget.deadline - budget.elapsed())
    max_work = None
    remaining = budget.remaining_work()
    if remaining is not None:
        max_work = max(1, remaining // max(1, shards))
    return (deadline, max_work)


def _shard_budget(deadline: Optional[float], max_work: Optional[int]) -> Optional[Budget]:
    if deadline is None and max_work is None:
        return None
    return Budget(deadline=deadline, max_work=max_work)


# -- mask-only kernels in workers ---------------------------------------------


def _mask_kernel(num_vertices: int, edge_masks: Sequence[int]):
    """A mask-level :class:`HypergraphBitsets` for worker-side components.

    Workers never see vertex objects — rebuilding a ``VertexIndexer`` over
    surrogate vertices would scramble bit positions (the indexer sorts by
    ``str``).  This kernel carries only what the mask algebra needs:
    ``edge_masks``, the incidence direction, the universe and the
    component caches.  ``indexer`` is ``None`` — any call that would
    materialise vertices is a bug.
    """
    from repro.hypergraph.bitset import HypergraphBitsets, iter_bits

    kernel = HypergraphBitsets.__new__(HypergraphBitsets)
    kernel.indexer = None
    kernel.edge_masks = tuple(edge_masks)
    kernel.edge_mask_by_name = {}
    incident = [0] * num_vertices
    for edge_index, mask in enumerate(kernel.edge_masks):
        edge_bit = 1 << edge_index
        for b in iter_bits(mask):
            incident[b] |= edge_bit
    kernel.incident_edge_masks = tuple(incident)
    kernel.universe = (1 << num_vertices) - 1
    kernel._component_cache = {}
    kernel._component_union_cache = {}
    return kernel


# -- stripe runners (shared by inline and pool execution) ---------------------


def _striped_component_unions(
    kernel, k: int, shard: int, shards: int, budget: Optional[Budget]
) -> Set[int]:
    """Shard ``shard``'s slice of ``_component_union_masks``.

    Stripe invariant: every non-empty ≤k-edge separator is enumerated
    exactly once globally, under the stripe of its smallest edge index;
    shard 0 additionally owns the ``λ2 = ∅`` seed.  ``separators_seen``
    is per-shard memoisation only — a separator reachable in two shards
    is just computed twice, and the result union collapses duplicates —
    so the union over shards equals the serial result exactly.
    """
    edge_masks = kernel.edge_masks
    limit = min(k, len(edge_masks))
    result: Set[int] = set()
    separators_seen: Set[int] = {0}
    if shard == 0:
        result.update(kernel.component_unions(0))

    def extend(start: int, union: int, size: int) -> bool:
        for i in range(start, len(edge_masks)):
            if budget is not None and not budget.try_tick():
                return False
            mask = edge_masks[i]
            extended = union | mask
            if extended == union:
                continue
            if extended not in separators_seen:
                separators_seen.add(extended)
                result.update(kernel.component_unions(extended))
            if size + 1 < limit and not extend(i + 1, extended, size + 1):
                return False
        return True

    if limit >= 1:
        for i in range(shard, len(edge_masks), max(1, shards)):
            if budget is not None and not budget.try_tick():
                break
            extended = edge_masks[i]
            if not extended:
                continue
            if extended not in separators_seen:
                separators_seen.add(extended)
                result.update(kernel.component_unions(extended))
            if limit > 1 and not extend(i + 1, extended, 1):
                break
    return result


def _striped_cover_unions(
    distinct: Sequence[int], k: int, shard: int, shards: int, budget: Optional[Budget]
) -> Set[int]:
    """Shard ``shard``'s slice of ``_cover_union_masks`` (``distinct`` sorted)."""
    result: Set[int] = set()

    def extend(start: int, union: int, size: int) -> bool:
        for i in range(start, len(distinct)):
            if budget is not None and not budget.try_tick():
                return False
            extended = union | distinct[i]
            if size and extended == union:
                continue
            result.add(extended)
            if size + 1 < k and not extend(i + 1, extended, size + 1):
                return False
        return True

    if k >= 1:
        for i in range(shard, len(distinct), max(1, shards)):
            if budget is not None and not budget.try_tick():
                break
            extended = distinct[i]
            result.add(extended)
            if k > 1 and not extend(i + 1, extended, 1):
                break
    return result


def _rebuild_head_to_block_ids(head_masks: Sequence[int]) -> Dict[int, List[int]]:
    """``head mask → block ids``; registration order equals id order."""
    mapping: Dict[int, List[int]] = {}
    for block_id, head_mask in enumerate(head_masks):
        mapping.setdefault(head_mask, []).append(block_id)
    return mapping


def _striped_probe_tables(
    head_masks: Sequence[int],
    component_masks: Sequence[int],
    union_masks: Sequence[int],
    touching_masks: Sequence[int],
    candidate_masks: Sequence[int],
    head_to_block_ids: Dict[int, List[int]],
    shard: int,
    shards: int,
    budget: Optional[Budget],
) -> Tuple[List[Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]], bool]:
    """``[(block id, probes)]`` for the shard's block stripe.

    Replicates :meth:`BlockIndex.candidate_probes` /
    :meth:`BlockIndex._compute_basis_sub_ids` on the plain mask arrays —
    the computation is a pure function of those arrays.  The second
    return value is ``False`` when the shard's sub-budget exhausted
    mid-stripe (the returned prefix is still exact).
    """
    results: List[Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]] = []
    for block_id in range(shard, len(head_masks), max(1, shards)):
        if not component_masks[block_id]:
            continue
        if budget is not None and not budget.try_tick():
            return results, False
        block_union = union_masks[block_id]
        block_component = component_masks[block_id]
        block_head = head_masks[block_id]
        not_union = ~block_union
        probes: List[Tuple[int, Tuple[int, ...]]] = []
        for cand_id, candidate_mask in enumerate(candidate_masks):
            if candidate_mask & not_union:
                continue
            if candidate_mask == block_head:
                continue
            covered = candidate_mask
            subs: List[int] = []
            for sub_id in head_to_block_ids.get(candidate_mask, ()):
                if (union_masks[sub_id] & ~block_union) == 0 and (
                    component_masks[sub_id] & ~block_component
                ) == 0:
                    subs.append(sub_id)
                    covered |= component_masks[sub_id]
            if block_component & ~covered:
                continue
            if touching_masks[block_id] & ~covered:
                continue
            probes.append(
                (cand_id, tuple(s for s in subs if component_masks[s]))
            )
        results.append((block_id, tuple(probes)))
    return results, True


# -- pool worker entry points (module-level for spawn pickling) ----------------


def _component_shard_worker(args):
    handle, num_vertices, k, shard, shards, deadline, max_work = args
    bundle = SharedMaskBundle.attach(handle)
    try:
        kernel = _mask_kernel(num_vertices, bundle.masks("edge_masks"))
        budget = _shard_budget(deadline, max_work)
        result = _striped_component_unions(kernel, k, shard, shards, budget)
        status = budget.status if budget is not None else "complete"
        work = budget.work if budget is not None else 0
        return (sorted(result), status, work)
    finally:
        bundle.close()


def _cover_shard_worker(args):
    handle, k, shard, shards, deadline, max_work = args
    bundle = SharedMaskBundle.attach(handle)
    try:
        distinct = bundle.masks("distinct")
        budget = _shard_budget(deadline, max_work)
        result = _striped_cover_unions(distinct, k, shard, shards, budget)
        status = budget.status if budget is not None else "complete"
        work = budget.work if budget is not None else 0
        return (sorted(result), status, work)
    finally:
        bundle.close()


def _probe_shard_worker(args):
    handle, shard, shards, deadline, max_work = args
    bundle = SharedMaskBundle.attach(handle)
    try:
        head_masks = bundle.masks("head_masks")
        component_masks = bundle.masks("component_masks")
        union_masks = bundle.masks("union_masks")
        touching_masks = bundle.masks("touching_masks")
        candidate_masks = bundle.masks("candidate_masks")
        budget = _shard_budget(deadline, max_work)
        results, complete = _striped_probe_tables(
            head_masks,
            component_masks,
            union_masks,
            touching_masks,
            candidate_masks,
            _rebuild_head_to_block_ids(head_masks),
            shard,
            shards,
            budget,
        )
        status = budget.status if budget is not None else "complete"
        work = budget.work if budget is not None else 0
        if not complete and status == "complete":  # pragma: no cover - defensive
            status = "budget_exhausted"
        return (results, status, work)
    finally:
        bundle.close()


# -- parallel entry points -----------------------------------------------------


def _absorb_shard(budget: Optional[Budget], work: int, status: str) -> None:
    if budget is not None:
        budget.absorb(work, status)


def parallel_component_union_masks(
    hypergraph,
    k: int,
    shards: int,
    pool: Optional[ShardPool] = None,
    budget: Optional[Budget] = None,
) -> Set[int]:
    """Sharded :func:`repro.core.candidate_bags._component_union_masks`.

    With ``pool=None`` the stripes run inline (still one stripe per
    shard, merged identically); with a pool the edge-mask table ships by
    shared memory and stripes run in worker processes.  Without budget
    exhaustion the result equals the serial enumeration exactly; an
    exhausted (sub-)budget yields a sound subset and marks the parent
    budget via :meth:`Budget.absorb`.
    """
    bitsets = hypergraph.bitsets
    shards = max(1, int(shards))
    if pool is None or shards == 1 or len(bitsets.edge_masks) < MIN_PARALLEL_ITEMS:
        result: Set[int] = set()
        deadline, max_work = split_budget(budget, shards)
        for shard in range(shards):
            shard_budget = _shard_budget(deadline, max_work)
            result |= _striped_component_unions(
                bitsets, k, shard, shards, shard_budget if budget is not None else None
            )
            if budget is not None and shard_budget is not None:
                _absorb_shard(budget, shard_budget.work, shard_budget.status)
        return result
    bundle = SharedMaskBundle.create({"edge_masks": list(bitsets.edge_masks)})
    try:
        deadline, max_work = split_budget(budget, shards)
        handle = bundle.handle()
        num_vertices = len(bitsets.indexer)
        outputs = pool.map(
            _component_shard_worker,
            [
                (handle, num_vertices, k, shard, shards, deadline, max_work)
                for shard in range(shards)
            ],
        )
    finally:
        bundle.unlink()
    result = set()
    for masks, status, work in outputs:
        result.update(masks)
        _absorb_shard(budget, work, status)
    return result


def parallel_cover_union_masks(
    vertex_set_masks: Iterable[int],
    k: int,
    shards: int,
    pool: Optional[ShardPool] = None,
    budget: Optional[Budget] = None,
) -> Set[int]:
    """Sharded :func:`repro.core.candidate_bags._cover_union_masks`."""
    distinct = sorted(set(vertex_set_masks))
    shards = max(1, int(shards))
    if pool is None or shards == 1 or len(distinct) < MIN_PARALLEL_ITEMS:
        result: Set[int] = set()
        deadline, max_work = split_budget(budget, shards)
        for shard in range(shards):
            shard_budget = _shard_budget(deadline, max_work)
            result |= _striped_cover_unions(
                distinct, k, shard, shards, shard_budget if budget is not None else None
            )
            if budget is not None and shard_budget is not None:
                _absorb_shard(budget, shard_budget.work, shard_budget.status)
        return result
    bundle = SharedMaskBundle.create({"distinct": distinct})
    try:
        deadline, max_work = split_budget(budget, shards)
        handle = bundle.handle()
        outputs = pool.map(
            _cover_shard_worker,
            [(handle, k, shard, shards, deadline, max_work) for shard in range(shards)],
        )
    finally:
        bundle.unlink()
    result = set()
    for masks, status, work in outputs:
        result.update(masks)
        _absorb_shard(budget, work, status)
    return result


def parallel_probe_tables(
    index,
    shards: int,
    pool: Optional[ShardPool] = None,
    budget: Optional[Budget] = None,
):
    """Sharded :meth:`repro.core.options.SolverCore.probe_tables` body.

    Returns the same ``(probes, parents)`` structure byte-for-byte:
    block-id stripes are merged in ascending block order, so the
    ``parents`` adjacency lists come out in the exact order the serial
    loop appends them.  A shard whose sub-budget exhausts surfaces as
    :class:`BudgetExceeded` on the parent budget — identical to the
    serial contract (the solver's anytime boundary handles it, the memo
    stays unpopulated).
    """
    head_masks, component_masks, union_masks, touching_masks = index.mask_arrays()
    candidate_masks = index.candidate_masks
    block_count = index.block_count()
    shards = max(1, int(shards))
    merged: List[Tuple[int, Tuple[Tuple[int, Tuple[int, ...]], ...]]] = []
    if pool is None or shards == 1 or block_count < MIN_PARALLEL_ITEMS:
        deadline, max_work = split_budget(budget, shards)
        for shard in range(shards):
            shard_budget = _shard_budget(deadline, max_work) if budget is not None else None
            results, _complete = _striped_probe_tables(
                head_masks,
                component_masks,
                union_masks,
                touching_masks,
                candidate_masks,
                _rebuild_head_to_block_ids(head_masks),
                shard,
                shards,
                shard_budget,
            )
            merged.extend(results)
            if budget is not None and shard_budget is not None:
                _absorb_shard(budget, shard_budget.work, shard_budget.status)
    else:
        bundle = SharedMaskBundle.create(
            {
                "head_masks": list(head_masks),
                "component_masks": list(component_masks),
                "union_masks": list(union_masks),
                "touching_masks": list(touching_masks),
                "candidate_masks": list(candidate_masks),
            }
        )
        try:
            deadline, max_work = split_budget(budget, shards)
            handle = bundle.handle()
            outputs = pool.map(
                _probe_shard_worker,
                [
                    (handle, shard, shards, deadline, max_work)
                    for shard in range(shards)
                ],
            )
        finally:
            bundle.unlink()
        for results, status, work in outputs:
            merged.extend(results)
            _absorb_shard(budget, work, status)
    if budget is not None and budget.exhausted:
        raise BudgetExceeded(budget.status, budget.work, budget.elapsed())
    merged.sort(key=lambda item: item[0])
    probes: List[Tuple[Tuple[int, Tuple[int, ...]], ...]] = [()] * block_count
    parents: Dict[int, List[int]] = {}
    for block_id, block_probes in merged:
        probes[block_id] = block_probes
        for _, live_subs in block_probes:
            for sub in live_subs:
                dependents = parents.setdefault(sub, [])
                if not dependents or dependents[-1] != block_id:
                    dependents.append(block_id)
    return probes, parents
