"""Deterministic fault injection for the robustness test harness.

Three injection mechanisms, all deterministic and process-local:

* :class:`FakeClock` — an injectable clock for :class:`repro.runtime.Budget`
  (``Budget(clock=FakeClock(...))``).  Time only moves when the test says
  so (``advance``) or by a fixed amount per read (``auto_advance``), which
  makes deadline behaviour — including the amortization window — exactly
  reproducible.
* :class:`FaultPlan` — scripted failures at named *sites*.  Production
  code marks its fault points with :func:`maybe_fail("site.name")`; when no
  plan is installed that is a single global ``is None`` check.  A test
  installs a plan with :func:`inject` and schedules which call to a site
  should raise which exception (``plan.fail("snapshot.write",
  exc=OSError(errno.ENOSPC, ...))``).  The snapshot layer exposes
  ``snapshot.read``, ``snapshot.write`` and ``snapshot.lock``; the batch
  ledger exposes ``ledger.append`` and ``ledger.read``.
* Scripted budget exhaustion needs no machinery of its own:
  ``Budget(max_work=N)`` exhausts *exactly* at the Nth tick, and
  ``Budget(deadline=d, clock=FakeClock(auto_advance=...), check_interval=c)``
  exhausts at the first clock read past the deadline.

File-corruption helpers (:func:`truncate_file`, :func:`flip_byte`) fabricate
torn and bit-rotted snapshot files for the quarantine tests and the
robustness smoke script.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FakeClock",
    "FaultPlan",
    "inject",
    "maybe_fail",
    "truncate_file",
    "flip_byte",
]


class FakeClock:
    """A deterministic, manually-advanced monotonic clock.

    Calling the instance returns the current fake time; ``auto_advance``
    moves time forward by that amount on *every* read, which models "each
    deadline check costs dt" and lets a test hit a deadline after an exact
    number of checks.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self.now = float(start)
        self.auto_advance = float(auto_advance)
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        current = self.now
        self.now += self.auto_advance
        return current

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class FaultPlan:
    """A script of which call to which site raises which exception.

    Sites are plain strings (``"snapshot.write"``).  Calls to a site are
    counted from 1; :meth:`fail` schedules an exception for specific call
    numbers.  Unconsumed failures can be asserted on via
    :meth:`remaining`.
    """

    def __init__(self) -> None:
        # site -> list of (call_number, exception instance)
        self._scheduled: Dict[str, List[Tuple[int, BaseException]]] = {}
        self._calls: Dict[str, int] = {}

    def fail(
        self,
        site: str,
        exc: Optional[BaseException] = None,
        call: int = 1,
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule ``exc`` on the ``call``-th .. ``call+times-1``-th hit of ``site``."""
        if exc is None:
            exc = OSError(f"injected fault at {site!r}")
        schedule = self._scheduled.setdefault(site, [])
        for offset in range(times):
            schedule.append((call + offset, exc))
        return self

    def fire(self, site: str) -> None:
        """Count one call to ``site``; raise if a failure is scheduled for it."""
        count = self._calls.get(site, 0) + 1
        self._calls[site] = count
        for index, (call_number, exc) in enumerate(self._scheduled.get(site, ())):
            if call_number == count:
                del self._scheduled[site][index]
                raise exc

    def calls(self, site: str) -> int:
        """How many times ``site`` has been hit under this plan."""
        return self._calls.get(site, 0)

    def remaining(self) -> Dict[str, int]:
        """Sites with scheduled-but-unfired failures (for test assertions)."""
        return {
            site: len(schedule)
            for site, schedule in self._scheduled.items()
            if schedule
        }


# The active plan is process-global (guarded for concurrent test runners);
# `maybe_fail` is on hot-ish IO paths, so the no-plan case is one load + is-None.
_active_plan: Optional[FaultPlan] = None
_plan_lock = threading.Lock()


def maybe_fail(site: str) -> None:
    """Production-side fault point: no-op unless a plan is installed."""
    plan = _active_plan
    if plan is not None:
        plan.fire(site)


@contextmanager
def inject(plan: Optional[FaultPlan] = None) -> Iterator[FaultPlan]:
    """Install ``plan`` (a fresh one by default) for the duration of the block."""
    global _active_plan
    if plan is None:
        plan = FaultPlan()
    with _plan_lock:
        if _active_plan is not None:
            raise RuntimeError("a fault plan is already active")
        _active_plan = plan
    try:
        yield plan
    finally:
        with _plan_lock:
            _active_plan = None


# -- file corruption helpers -------------------------------------------------


def truncate_file(path: str, keep_bytes: Optional[int] = None, fraction: float = 0.5) -> int:
    """Tear a file mid-write: keep only a prefix.  Returns the new size."""
    with open(path, "rb") as handle:
        data = handle.read()
    keep = keep_bytes if keep_bytes is not None else int(len(data) * fraction)
    keep = max(0, min(keep, len(data)))
    with open(path, "wb") as handle:
        handle.write(data[:keep])
    return keep


def flip_byte(path: str, offset: int) -> None:
    """Corrupt one byte of a file in place (bit-rot simulation)."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"offset {offset} is past the end of {path!r}")
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
