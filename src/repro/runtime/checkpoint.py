"""Durable checkpoint ledger for supervised batch runs.

One batch run writes one **ledger**: an append-only JSONL journal where
every line is a self-contained JSON record.  The journal gives the batch
its crash-consistency story:

* **appends are durable** — each record is one ``\\n``-terminated line,
  flushed and ``fsync``'d before the supervisor moves on, so a completed
  task survives a ``kill -9`` of the supervisor itself;
* **a torn tail is expected** — a crash mid-append can tear exactly the
  final line.  :meth:`BatchLedger.records` tolerates (and reports) a
  single unparseable *trailing* line; corruption anywhere *before* the
  tail means the file cannot be trusted and raises
  :class:`~repro.runtime.errors.LedgerError` instead of resuming from a
  lying journal;
* **compaction is atomic** — :meth:`BatchLedger.compact` rewrites the
  journal (latest record per task, transient events dropped) through the
  same fsync'd temp-file + rename idiom as the snapshot cache, so a crash
  mid-compaction leaves the old journal intact.

Tasks are keyed by :func:`task_fingerprint`: a SHA-256 over the canonical
JSON of the task's *semantic* fields (fault-injection directives and other
operational noise are excluded), so a re-run of the same batch recognises
completed tasks and returns their recorded results byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, IO, List, Mapping, Optional, Tuple

from repro.runtime.errors import LedgerError
from repro.runtime.faults import maybe_fail

__all__ = [
    "LEDGER_VERSION",
    "task_fingerprint",
    "BatchLedger",
]

#: Version of the ledger format; bump on any record-layout change.  A
#: ledger written by a different version refuses to resume.
LEDGER_VERSION = 1

#: Task-spec keys excluded from the fingerprint: they direct *how* a run
#: is exercised (fault injection, labels, intra-solve shard counts), not
#: *what* is computed, and a resumed run must recognise its tasks
#: regardless of them — a batch resumed with a different ``--shards``
#: still reuses its completed results.
NON_SEMANTIC_TASK_KEYS = frozenset({"faults", "label", "shards"})

#: Terminal record statuses: a task with one of these has finished for
#: this batch (``ok`` results are reused verbatim on resume; ``failed``
#: and ``interrupted`` tasks are retried).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_INTERRUPTED = "interrupted"


def task_fingerprint(task: Mapping[str, object]) -> str:
    """A short deterministic fingerprint of a task's semantic content."""
    semantic = {
        key: value
        for key, value in task.items()
        if key not in NON_SEMANTIC_TASK_KEYS
    }
    canonical = json.dumps(
        semantic, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class BatchLedger:
    """An append-only JSONL journal of one batch's task outcomes.

    Records are plain dicts with a ``type`` field.  The supervisor writes:

    * ``header`` — first line: format version and batch metadata;
    * ``task`` — one terminal outcome per task attempt cycle
      (``status`` of ``ok`` / ``failed`` / ``interrupted``, the task spec,
      degradation level, attempts, failures, and the result payload);
    * ``quarantine`` — a result that failed certification, kept for the
      post-mortem (the task itself is retried and gets a later ``task``
      record);
    * ``batch`` — batch-level events (``interrupted``).
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = None

    # -- writing -----------------------------------------------------------

    def _open_for_append(self) -> IO[str]:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if not exists:
                self._write_line({"type": "header", "version": LEDGER_VERSION})
        return self._handle

    def _write_line(self, record: Dict[str, object]) -> None:
        assert self._handle is not None
        maybe_fail("ledger.append")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (fsync'd before returning)."""
        self._open_for_append()
        self._write_line(dict(record))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BatchLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    def records(self) -> Tuple[List[Dict[str, object]], bool]:
        """``(records, torn_tail)`` — every parseable record of the journal.

        A single unparseable **final** line is the signature of an append
        torn by a crash: it is dropped and reported via ``torn_tail``.
        An unparseable or non-dict line anywhere earlier, a missing or
        foreign header, or a version mismatch raise :class:`LedgerError` —
        resuming from a ledger that cannot be trusted could silently drop
        or duplicate work.
        """
        maybe_fail("ledger.read")
        if not self.exists():
            return [], False
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()  # the trailing newline of a clean final append
        records: List[Dict[str, object]] = []
        torn_tail = False
        for number, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError as exc:
                if number == len(lines) - 1:
                    torn_tail = True
                    break
                raise LedgerError(
                    f"ledger {self.path!r} is corrupt at line {number + 1}: {exc}"
                ) from exc
            records.append(record)
        if not records:
            if torn_tail:
                raise LedgerError(
                    f"ledger {self.path!r} has no readable records"
                )
            return [], False
        header = records[0]
        if header.get("type") != "header":
            raise LedgerError(
                f"ledger {self.path!r} does not start with a header record"
            )
        if header.get("version") != LEDGER_VERSION:
            raise LedgerError(
                f"ledger {self.path!r} has version {header.get('version')}, "
                f"this code reads version {LEDGER_VERSION}"
            )
        return records[1:], torn_tail

    def task_records(self) -> Dict[str, Dict[str, object]]:
        """Latest ``task`` record per fingerprint (journal order wins)."""
        latest: Dict[str, Dict[str, object]] = {}
        for record in self.records()[0]:
            if record.get("type") == "task" and "fingerprint" in record:
                latest[str(record["fingerprint"])] = record
        return latest

    def completed(self) -> Dict[str, Dict[str, object]]:
        """Fingerprints this batch never needs to re-run: ``ok`` records.

        ``failed`` and ``interrupted`` records are *not* completed — a
        resumed batch retries them (crash containment bounded the damage;
        the retry is free to succeed on a healthier machine).
        """
        return {
            fingerprint: record
            for fingerprint, record in self.task_records().items()
            if record.get("status") == STATUS_OK
        }

    def quarantined(self) -> List[Dict[str, object]]:
        """Every ``quarantine`` record, for post-mortems and reports."""
        return [
            record
            for record in self.records()[0]
            if record.get("type") == "quarantine"
        ]

    # -- compaction --------------------------------------------------------

    def compact(self) -> int:
        """Atomically rewrite the journal to its minimal resume state.

        Keeps the latest ``task`` record per fingerprint (in first-seen
        task order) and drops transient events; quarantine records are
        preserved.  Uses the fsync'd temp-file + rename idiom so a crash
        mid-compaction leaves the previous journal intact.  Returns the
        number of records written (header excluded).
        """
        self.close()
        records, _ = self.records()
        latest = self.task_records()
        kept: List[Dict[str, object]] = []
        seen: set = set()
        for record in records:
            if record.get("type") == "task":
                fingerprint = str(record.get("fingerprint"))
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                kept.append(latest[fingerprint])
            elif record.get("type") == "quarantine":
                kept.append(record)
        directory = os.path.dirname(self.path) or "."
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".jsonl.tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(
                    json.dumps({"type": "header", "version": LEDGER_VERSION}) + "\n"
                )
                for record in kept:
                    stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return len(kept)
