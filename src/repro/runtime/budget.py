"""Resource governance for the solver stack: deadlines, work budgets, outcomes.

Every potentially-exponential loop in the repository — candidate-bag
enumeration, the Algorithm 1/2 fixpoints, probe-table construction, the
any-k deviation heaps and Yannakakis execution — accepts an optional
:class:`Budget` and calls :meth:`Budget.tick` (or the non-raising
:meth:`Budget.try_tick`) once per unit of work.  A budget bounds a run two
ways:

* ``max_work`` — a hard cap on work units; detection is *exact*: the tick
  that reaches the cap is the one that reports exhaustion.
* ``deadline`` — a wall-clock allowance in seconds.  Time is only read
  every ``check_interval`` work units (amortised: the hot loop pays one
  integer decrement per iteration, a clock call every N units), so a
  deadline is honoured within one *amortization window* of
  ``check_interval`` units — plus at most one in-flight batch for loops
  that aggregate their ticks (each batch is capped at ``check_interval``).
  Chunky call sites (one relational operator, one vectorised batch) use
  :meth:`charge`, which always reads the clock.

Exhaustion is recorded on the budget (:attr:`Budget.status`) and, for the
raising entry points, signalled with :class:`BudgetExceeded`.  The solvers
catch it at their own boundary and degrade to an *anytime* answer — the
best fragment/prefix they have — accompanied by an honest
:class:`SolveOutcome`.  A budget that has exhausted stays exhausted: every
further tick fails immediately, so partially-unwound call stacks cannot
resume work.

The clock is injectable (``clock=``) so tests and the fault harness
(:mod:`repro.runtime.faults`) can drive deadlines deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "Budget",
    "BudgetExceeded",
    "SolveOutcome",
    "EXIT_CODES",
    "STATUS_COMPLETE",
    "STATUS_DEADLINE",
    "STATUS_BUDGET",
    "STATUS_INTERRUPTED",
]

STATUS_COMPLETE = "complete"
STATUS_DEADLINE = "deadline"
STATUS_BUDGET = "budget_exhausted"
STATUS_INTERRUPTED = "interrupted"

#: Process exit codes per outcome status, following the Unix conventions of
#: ``timeout(1)`` (124) and 128+SIGINT (130); 125 is the work-budget twin
#: of 124.  Used by the CLI's governed verbs.
EXIT_CODES = {
    STATUS_COMPLETE: 0,
    STATUS_DEADLINE: 124,
    STATUS_BUDGET: 125,
    STATUS_INTERRUPTED: 130,
}

#: Default number of ticks between wall-clock reads.
DEFAULT_CHECK_INTERVAL = 1024


@dataclass(frozen=True)
class SolveOutcome:
    """How a governed run ended: status plus its resource counters.

    ``status`` is one of ``complete`` / ``deadline`` / ``budget_exhausted``
    / ``interrupted``.  Any status other than ``complete`` means the
    accompanying result is an *anytime* answer: valid as far as it goes
    (a prefix of the enumeration, the best fragment found so far, a sound
    under-approximation of a bag set) but not necessarily the full answer.
    """

    status: str
    work: int = 0
    elapsed: float = 0.0
    deadline: Optional[float] = None
    max_work: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.status == STATUS_COMPLETE

    @property
    def partial(self) -> bool:
        """True when the run stopped early and the result is anytime."""
        return not self.complete

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.status]

    def describe(self) -> str:
        """One status line, as printed by the CLI."""
        parts = [f"outcome: {self.status}", f"work={self.work}"]
        parts.append(f"elapsed={self.elapsed:.3f}s")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.max_work is not None:
            parts.append(f"max_work={self.max_work}")
        return " ".join(parts)


class BudgetExceeded(RuntimeError):
    """Raised by :meth:`Budget.tick` when the budget is exhausted.

    Carries the exhaustion ``status`` (``deadline`` or
    ``budget_exhausted``) and the counters at the point of exhaustion.
    Governed solvers catch this at their boundary and return their anytime
    result with the matching :class:`SolveOutcome`.
    """

    def __init__(self, status: str, work: int, elapsed: float):
        super().__init__(f"{status} after {work} work units ({elapsed:.3f}s)")
        self.status = status
        self.work = work
        self.elapsed = elapsed


class Budget:
    """A wall-clock deadline and/or work-unit cap shared across a run.

    One budget instance governs one logical run and may be threaded
    through several components (bag generation, then the solver, then
    execution): the counters accumulate across all of them.
    """

    __slots__ = (
        "deadline",
        "max_work",
        "work",
        "check_interval",
        "_clock",
        "_start",
        "_deadline_at",
        "_countdown",
        "_status",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_work: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ):
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if max_work is not None and max_work < 0:
            raise ValueError("max_work must be non-negative")
        self.deadline = deadline
        self.max_work = max_work
        self.work = 0
        self.check_interval = max(1, int(check_interval))
        self._clock = clock if clock is not None else time.monotonic
        self._start = self._clock()
        self._deadline_at = None if deadline is None else self._start + deadline
        self._countdown = self.check_interval
        self._status = STATUS_COMPLETE

    # -- state -------------------------------------------------------------

    @property
    def status(self) -> str:
        """``complete`` while within budget, else the exhaustion status."""
        return self._status

    @property
    def exhausted(self) -> bool:
        return self._status != STATUS_COMPLETE

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining_work(self) -> Optional[int]:
        if self.max_work is None:
            return None
        return max(0, self.max_work - self.work)

    # -- ticking -----------------------------------------------------------

    def try_tick(self, units: int = 1) -> bool:
        """Count ``units`` of work; ``False`` once the budget is exhausted.

        The non-raising twin of :meth:`tick`, for cooperative loops that
        prefer to unwind by hand (e.g. recursive enumeration keeping a
        partial result set).  Exhaustion is sticky: once this returns
        ``False`` it returns ``False`` forever, without counting further
        work.
        """
        if self._status != STATUS_COMPLETE:
            return False
        self.work += units
        if self.max_work is not None and self.work >= self.max_work:
            self._status = STATUS_BUDGET
            return False
        # The countdown is denominated in work units, not calls, so hot
        # loops may aggregate up to ``check_interval`` units per call
        # without widening the deadline's amortization window.
        self._countdown -= units
        if self._countdown <= 0:
            self._countdown = self.check_interval
            if self._deadline_at is not None and self._clock() >= self._deadline_at:
                self._status = STATUS_DEADLINE
                return False
        return True

    def tick(self, units: int = 1) -> None:
        """Count ``units`` of work, raising :class:`BudgetExceeded` on exhaustion."""
        if not self.try_tick(units):
            raise BudgetExceeded(self._status, self.work, self.elapsed())

    def charge(self, units: int) -> None:
        """Like :meth:`tick` for chunky units — always reads the clock.

        Call sites that account for one relational operator or one
        vectorised batch at a time are coarse enough that a clock read per
        call is free; skipping the amortisation keeps the deadline honest
        across big charges.
        """
        self._countdown = 0
        self.tick(units)

    def check(self) -> None:
        """Force a deadline check without counting work; raises on exhaustion."""
        if self._status == STATUS_COMPLETE:
            if self._deadline_at is not None and self._clock() >= self._deadline_at:
                self._status = STATUS_DEADLINE
        if self._status != STATUS_COMPLETE:
            raise BudgetExceeded(self._status, self.work, self.elapsed())

    def mark_interrupted(self) -> None:
        """Record a user interrupt (Ctrl-C) as this run's exhaustion status."""
        if self._status == STATUS_COMPLETE:
            self._status = STATUS_INTERRUPTED

    def absorb(self, work: int, status: str) -> None:
        """Fold a sub-budget's outcome into this budget (sharded runs).

        The parallel runtime gives each shard its own sub-budget (an equal
        split of the remaining caps); when the shard returns, its work
        counter is added here and a non-``complete`` shard status becomes
        this budget's sticky exhaustion status — so exhaustion in any
        shard yields the same anytime contract as a serial exhaustion.
        Never raises; callers decide whether to surface
        :class:`BudgetExceeded` (:attr:`exhausted` reports the state).
        """
        self.work += max(0, int(work))
        if self._status == STATUS_COMPLETE:
            if status != STATUS_COMPLETE:
                self._status = status
            elif self.max_work is not None and self.work >= self.max_work:
                self._status = STATUS_BUDGET

    # -- reporting ---------------------------------------------------------

    def outcome(self) -> SolveOutcome:
        """The run's :class:`SolveOutcome` as of now."""
        return SolveOutcome(
            status=self._status,
            work=self.work,
            elapsed=self.elapsed(),
            deadline=self.deadline,
            max_work=self.max_work,
        )

    def __repr__(self) -> str:
        return (
            f"Budget(deadline={self.deadline}, max_work={self.max_work}, "
            f"work={self.work}, status={self._status!r})"
        )


def completed_outcome(work: int = 0, elapsed: float = 0.0) -> SolveOutcome:
    """The outcome of an ungoverned (budget-less) run: trivially complete."""
    return SolveOutcome(status=STATUS_COMPLETE, work=work, elapsed=elapsed)
