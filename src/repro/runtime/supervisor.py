"""Supervised, fault-tolerant execution of batch solve tasks.

One :class:`Supervisor` runs a batch of independent tasks, each in its own
**worker process** (``multiprocessing`` spawn context), and survives
anything a worker can do:

* **hard wall-clock timeout** — enforced from the parent: a worker that
  overruns its allowance is SIGKILLed and the attempt becomes a
  ``timeout`` failure.  This is the backstop behind the in-worker
  :class:`~repro.runtime.budget.Budget` (cooperative, can be defeated by
  a wedged C loop or a kernel bug); the parent's kill cannot be.
* **crash containment** — a worker that segfaults, is OOM-killed, raises,
  or returns garbage becomes a structured
  :class:`~repro.runtime.errors.TaskFailure` and the batch keeps going.
* **bounded retries** — each failure schedules a retry after an
  exponential backoff with deterministic jitter (:class:`RetryPolicy`);
  other tasks keep the worker slots busy during the wait.
* **degradation ladder** — when a level's retries are exhausted the task
  descends: full solve → tighter budget → decide-only → recorded
  ``failed``.  Every result is tagged with the level that produced it.
* **independent certification** — every result crossing the process
  boundary is checked by the parent-side ``certifier`` (see
  :mod:`repro.core.certify`); a result that fails is quarantined into the
  ledger as an ``invalid_result`` failure and the attempt retried.
* **pre-spawn cache probe** — an optional ``cache_lookup`` callable
  (``task -> result dict | None``, e.g.
  :class:`repro.experiments.harness.BatchSolveCache`) is consulted before
  a virgin task's first worker is spawned; a returned payload still runs
  the full certifier (the cache is an accelerator, never an authority)
  and lands as an ``ok`` result at level ``cache``, while a miss or a
  failed certification falls through to a normal launch without burning
  an attempt.
* **checkpoint/resume** — with a :class:`~repro.runtime.checkpoint.BatchLedger`
  every terminal outcome is durably journaled; a re-run skips tasks with
  recorded ``ok`` results (re-certified, returned byte-for-byte) and
  retries ``failed``/``interrupted`` ones.  SIGINT/SIGTERM mid-batch
  kills the workers and lands as a clean ``interrupted`` checkpoint
  (batch exit code 130, consistent with the ``SolveOutcome`` codes).

The supervisor is agnostic about what a task computes: ``task_runner``
names a ``module:function`` resolved *inside the worker* that maps a task
payload dict to a JSON-able result dict (the default is the experiment
harness's :func:`repro.experiments.harness.execute_batch_task`).  Fault
injection for the test suites rides on the task spec itself: a ``faults``
mapping of attempt numbers to directives (``sigkill``, ``hang``,
``raise``, ``garbage``, ``bad_result``) is applied by the worker, which
makes every containment path deterministically reproducible.
"""

from __future__ import annotations

import importlib
import math
import os
import random
import signal
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.checkpoint import (
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    BatchLedger,
    task_fingerprint,
)
from repro.runtime.errors import (
    FAILURE_CRASHED,
    FAILURE_EXHAUSTED_RETRIES,
    FAILURE_INVALID_RESULT,
    FAILURE_TIMEOUT,
    TaskFailure,
)

__all__ = [
    "RetryPolicy",
    "DegradationLevel",
    "DEFAULT_LADDER",
    "TaskResult",
    "BatchReport",
    "Supervisor",
]

#: The default worker-side task runner (resolved inside the worker).
DEFAULT_TASK_RUNNER = "repro.experiments.harness:execute_batch_task"

#: Exit code of an interrupted batch, matching ``EXIT_CODES[STATUS_INTERRUPTED]``.
INTERRUPTED_EXIT_CODE = 130


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    The delay before retry ``attempt`` (1-based count of *failures so
    far*) is ``min(base * factor**(attempt-1), max_delay)`` plus up to
    ``jitter`` of itself, drawn from a PRNG seeded with
    ``(seed, fingerprint, attempt)`` — so two supervisors replaying the
    same batch produce the same schedule, while distinct tasks de-correlate
    (no thundering-herd retry waves).
    """

    max_attempts: int = 2
    base_delay: float = 0.25
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, fingerprint: str, attempt: int) -> float:
        """Backoff before the retry following failure number ``attempt``."""
        raw = min(self.base_delay * self.factor ** max(0, attempt - 1), self.max_delay)
        if self.jitter <= 0:
            return raw
        rng = random.Random(f"{self.seed}:{fingerprint}:{attempt}")
        return raw * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the degradation ladder.

    ``mode`` is passed to the task runner (the harness maps ``ranked`` to
    the constrained/preference solve and ``decide`` to the plain
    Algorithm 1 path).  ``budget_scale`` multiplies the task's configured
    ``deadline``/``max_work`` caps; ``fallback_max_work`` imposes a work
    cap when the task configured none, so a degraded attempt is actually
    cheaper than the one that failed.
    """

    name: str
    mode: str = "ranked"
    budget_scale: float = 1.0
    fallback_max_work: Optional[int] = None


#: full solve → tighter budget → decide-only → (recorded ``failed``).
DEFAULT_LADDER: Tuple[DegradationLevel, ...] = (
    DegradationLevel("full", mode="ranked", budget_scale=1.0),
    DegradationLevel(
        "tight", mode="ranked", budget_scale=0.25, fallback_max_work=2_000_000
    ),
    DegradationLevel(
        "decide", mode="decide", budget_scale=0.25, fallback_max_work=2_000_000
    ),
)


@dataclass
class TaskResult:
    """The terminal outcome of one task within a batch."""

    task: Dict[str, object]
    fingerprint: str
    status: str  # ok | failed | interrupted
    level: Optional[str] = None  # degradation level that produced the result
    attempts: int = 0
    result: Optional[Dict[str, object]] = None
    failures: List[Dict[str, object]] = field(default_factory=list)
    elapsed: float = 0.0
    cached: bool = False  # satisfied from the ledger on resume

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "task",
            "fingerprint": self.fingerprint,
            "task": self.task,
            "status": self.status,
            "level": self.level,
            "attempts": self.attempts,
            "result": self.result,
            "failures": self.failures,
            "elapsed": round(self.elapsed, 6),
        }

    @classmethod
    def from_record(
        cls, record: Mapping[str, object], cached: bool = False
    ) -> "TaskResult":
        return cls(
            task=dict(record.get("task") or {}),
            fingerprint=str(record.get("fingerprint")),
            status=str(record.get("status")),
            level=record.get("level"),  # type: ignore[arg-type]
            attempts=int(record.get("attempts") or 0),
            result=record.get("result"),  # type: ignore[arg-type]
            failures=list(record.get("failures") or []),
            elapsed=float(record.get("elapsed") or 0.0),
            cached=cached,
        )


@dataclass
class BatchReport:
    """Every task outcome of a batch run, plus the failure summary."""

    results: List[TaskResult]
    interrupted: bool = False
    torn_tail: bool = False

    @property
    def ok(self) -> List[TaskResult]:
        return [r for r in self.results if r.status == STATUS_OK]

    @property
    def failed(self) -> List[TaskResult]:
        return [r for r in self.results if r.status == STATUS_FAILED]

    @property
    def exit_code(self) -> int:
        if self.interrupted:
            return INTERRUPTED_EXIT_CODE
        return 1 if any(r.status != STATUS_OK for r in self.results) else 0

    def counts(self) -> Dict[str, int]:
        return dict(Counter(r.status for r in self.results))

    def failure_kinds(self) -> Dict[str, int]:
        """How often each failure kind occurred, across all attempts."""
        return dict(
            Counter(
                str(f.get("kind", "?")) for r in self.results for f in r.failures
            )
        )

    def describe(self) -> str:
        """The failure-summary report printed by ``repro batch``."""
        lines = []
        for result in self.results:
            label = result.task.get("label") or result.task.get(
                "query", result.fingerprint
            )
            parts = [f"{label}: {result.status}"]
            if result.level and result.level != "full":
                parts.append(f"level={result.level}")
            parts.append(f"attempts={result.attempts}")
            if result.cached:
                parts.append("(resumed from ledger)")
            if result.failures:
                kinds = Counter(str(f.get("kind", "?")) for f in result.failures)
                parts.append(
                    "failures=" + ",".join(f"{k}x{n}" for k, n in sorted(kinds.items()))
                )
            lines.append("  ".join(parts))
        counts = self.counts()
        summary = [
            f"{len(self.results)} task(s):",
            ", ".join(f"{counts.get(s, 0)} {s}" for s in (STATUS_OK, STATUS_FAILED, STATUS_INTERRUPTED)),
        ]
        kinds = self.failure_kinds()
        if kinds:
            summary.append(
                "failure kinds: "
                + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
            )
        if self.interrupted:
            summary.append("batch interrupted — resume with the same ledger")
        lines.append(" ".join(summary[:2]) + ("; " + "; ".join(summary[2:]) if summary[2:] else ""))
        return "\n".join(lines)


# -- worker side -------------------------------------------------------------


def _resolve_runner(path: str) -> Callable[[Dict[str, object]], Dict[str, object]]:
    module_name, _, attribute = path.partition(":")
    if not attribute:
        raise ValueError(f"task runner {path!r} is not of the form 'module:function'")
    return getattr(importlib.import_module(module_name), attribute)


def _corrupt_result(result: Dict[str, object]) -> Dict[str, object]:
    """Fault directive ``bad_result``: a well-formed but *wrong* payload.

    Drops one vertex from the largest bag (breaking edge cover and/or
    connectedness) so the parent-side certifier — and nothing earlier —
    must catch it.
    """
    corrupted = dict(result)
    decomposition = corrupted.get("decomposition")
    if isinstance(decomposition, dict) and decomposition.get("bags"):
        bags = [list(bag) for bag in decomposition["bags"]]
        largest = max(range(len(bags)), key=lambda i: len(bags[i]))
        if bags[largest]:
            bags[largest] = bags[largest][:-1]
        corrupted["decomposition"] = {"bags": bags, "parents": decomposition["parents"]}
    else:
        corrupted["decomposition"] = {"bags": [[]], "parents": [None]}
        corrupted["decided"] = True
    return corrupted


def _worker_main(conn, runner_path: str, payload: Dict[str, object]) -> None:
    """Worker process entry point: apply fault directives, run, reply.

    Everything the worker can *catch* is reported as a structured
    ``{"ok": False}`` reply; everything it cannot (SIGKILL, segfault,
    OOM) is detected by the parent through the exit code.
    """
    try:
        fault = payload.get("fault") or {}
        kind = fault.get("kind") if isinstance(fault, dict) else None
        if kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(float(fault.get("seconds", 3600.0)))
        elif kind == "raise":
            raise RuntimeError(str(fault.get("message", "injected worker fault")))
        elif kind == "garbage":
            conn.send(["this", "is", "not", "a", "result"])
            return
        runner = _resolve_runner(runner_path)
        result = runner(payload)
        if kind == "bad_result" and isinstance(result, dict):
            result = _corrupt_result(result)
        conn.send(result)
    except Exception as exc:  # reported as a structured crash, kind `crashed`
        try:
            conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _fault_for_attempt(task: Mapping[str, object], attempt: int):
    """The injected fault directive for global attempt number ``attempt``."""
    faults = task.get("faults")
    if not isinstance(faults, Mapping):
        return None
    return faults.get(str(attempt), faults.get("*"))


# -- parent side -------------------------------------------------------------


class _TaskState:
    """Mutable per-task bookkeeping inside one batch run."""

    __slots__ = (
        "task",
        "fingerprint",
        "order",
        "level_index",
        "level_failures",
        "total_attempts",
        "failures",
        "ready_at",
        "elapsed",
    )

    def __init__(self, task: Dict[str, object], fingerprint: str, order: int):
        self.task = task
        self.fingerprint = fingerprint
        self.order = order
        self.level_index = 0
        self.level_failures = 0  # failures at the current ladder level
        self.total_attempts = 0
        self.failures: List[Dict[str, object]] = []
        self.ready_at = 0.0
        self.elapsed = 0.0


class _Attempt:
    """One in-flight worker process."""

    __slots__ = ("state", "process", "conn", "started_at", "deadline")

    def __init__(self, state, process, conn, started_at, deadline):
        self.state = state
        self.process = process
        self.conn = conn
        self.started_at = started_at
        self.deadline = deadline


class Supervisor:
    """Runs a batch of tasks in supervised worker processes.

    ``certifier`` is a callable ``(task, result_payload) ->``
    :class:`repro.core.certify.Certification` applied to every delivered
    result (and to ledger-cached results on resume); ``None`` disables
    certification (test harnesses only — production batches should always
    certify).  ``isolation`` is ``"process"`` (the default: spawn context,
    parent-enforced SIGKILL timeouts) or ``"inline"`` (the attempt runs in
    this process — no crash containment or timeout enforcement, used by
    deterministic scheduling tests and overhead baselines).

    ``cache_lookup`` is an optional ``task -> result dict | None`` probe
    consulted before a virgin task's first worker is spawned (see
    :meth:`_try_cache`); the supervisor stays agnostic about where the
    payload comes from and certifies it like any worker result.

    ``clock``/``sleep`` are injectable for the fault suites
    (:class:`repro.runtime.faults.FakeClock` drives the backoff schedule
    deterministically); real batches use ``time.monotonic``/``time.sleep``.
    """

    def __init__(
        self,
        task_runner: str = DEFAULT_TASK_RUNNER,
        certifier: Optional[Callable] = None,
        max_workers: int = 1,
        hard_timeout: float = 300.0,
        retry: Optional[RetryPolicy] = None,
        ladder: Sequence[DegradationLevel] = DEFAULT_LADDER,
        isolation: str = "process",
        cache_lookup: Optional[Callable] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation {isolation!r}")
        if not ladder:
            raise ValueError("the degradation ladder needs at least one level")
        self.task_runner = task_runner
        self.certifier = certifier
        self.cache_lookup = cache_lookup
        self.max_workers = max(1, int(max_workers))
        self.hard_timeout = float(hard_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.ladder = tuple(ladder)
        self.isolation = isolation
        self._clock = clock
        self._sleep = sleep
        self._context = get_context("spawn")
        self._interrupt_requested = False

    # -- budget shaping ----------------------------------------------------

    def _level_caps(
        self, task: Mapping[str, object], level: DegradationLevel
    ) -> Tuple[Optional[float], Optional[int]]:
        deadline = task.get("deadline")
        max_work = task.get("max_work")
        if deadline is not None:
            deadline = float(deadline) * level.budget_scale
        if max_work is not None:
            max_work = max(1, int(int(max_work) * level.budget_scale))
        elif level.fallback_max_work is not None and level.budget_scale < 1.0:
            max_work = level.fallback_max_work
        return deadline, max_work

    def _attempt_payload(self, state: _TaskState) -> Dict[str, object]:
        level = self.ladder[state.level_index]
        deadline, max_work = self._level_caps(state.task, level)
        payload = {
            key: value for key, value in state.task.items() if key != "faults"
        }
        payload["level"] = level.name
        payload["mode"] = level.mode
        payload["deadline"] = deadline
        payload["max_work"] = max_work
        payload["attempt"] = state.total_attempts + 1
        fault = _fault_for_attempt(state.task, state.total_attempts + 1)
        if fault is not None:
            payload["fault"] = dict(fault)
        return payload

    # -- failure accounting ------------------------------------------------

    def _record_failure(
        self,
        state: _TaskState,
        ledger: Optional[BatchLedger],
        failure: TaskFailure,
    ) -> None:
        state.failures.append(failure.as_record())
        state.total_attempts += 1
        state.level_failures += 1
        if failure.kind == FAILURE_INVALID_RESULT and ledger is not None:
            ledger.append(
                {
                    "type": "quarantine",
                    "fingerprint": state.fingerprint,
                    "attempt": state.total_attempts,
                    "level": self.ladder[state.level_index].name,
                    "reason": str(failure),
                }
            )
        if state.level_failures >= self.retry.max_attempts:
            # Exhausted this rung: descend the ladder.
            state.level_index += 1
            state.level_failures = 0
        state.ready_at = self._clock() + self.retry.delay(
            state.fingerprint, len(state.failures)
        )

    def _exhausted(self, state: _TaskState) -> bool:
        return state.level_index >= len(self.ladder)

    def _finalise_failure(self, state: _TaskState) -> TaskResult:
        failure = TaskFailure(
            FAILURE_EXHAUSTED_RETRIES,
            f"task {state.fingerprint} failed at every degradation level",
            fingerprint=state.fingerprint,
            attempt=state.total_attempts,
        )
        state.failures.append(failure.as_record())
        return TaskResult(
            task=state.task,
            fingerprint=state.fingerprint,
            status=STATUS_FAILED,
            level=self.ladder[-1].name,
            attempts=state.total_attempts,
            failures=state.failures,
            elapsed=state.elapsed,
        )

    # -- result handling ---------------------------------------------------

    def _try_cache(
        self, state: _TaskState, ledger: Optional[BatchLedger]
    ) -> Optional[TaskResult]:
        """Try to satisfy a virgin task from ``cache_lookup`` before spawning.

        Only tasks with no attempts at the top ladder level are eligible —
        a retrying/degrading task already proved the cache (or the cached
        answer) insufficient.  A returned payload must carry ``ok: True``
        and pass the full certifier; anything else (miss, lookup error,
        certification failure) simply falls through to a normal launch
        without recording a failure or burning an attempt.
        """
        if self.cache_lookup is None:
            return None
        if state.total_attempts or state.level_index:
            return None
        try:
            payload = self.cache_lookup(state.task)
        except Exception:
            return None
        if not isinstance(payload, dict) or payload.get("ok") is not True:
            return None
        if self.certifier is not None:
            try:
                certification = self.certifier(state.task, payload)
            except Exception:
                return None
            if not certification:
                return None
        return TaskResult(
            task=state.task,
            fingerprint=state.fingerprint,
            status=STATUS_OK,
            level="cache",
            attempts=0,
            result=payload,
            failures=state.failures,
            elapsed=state.elapsed,
        )

    def _accept_payload(
        self,
        state: _TaskState,
        payload: object,
        ledger: Optional[BatchLedger],
    ) -> Optional[TaskResult]:
        """Validate + certify a delivered payload; a ``TaskResult`` when
        accepted, ``None`` when the attempt failed (failure recorded)."""
        level = self.ladder[state.level_index]
        if not isinstance(payload, dict):
            self._record_failure(
                state,
                ledger,
                TaskFailure(
                    FAILURE_INVALID_RESULT,
                    f"worker returned {type(payload).__name__}, not a result dict",
                    fingerprint=state.fingerprint,
                    level=level.name,
                    attempt=state.total_attempts + 1,
                ),
            )
            return None
        if payload.get("ok") is False:
            reason = str(payload.get("reason", ""))
            kind = (
                FAILURE_TIMEOUT
                if reason in ("deadline", "budget_exhausted")
                else FAILURE_CRASHED
            )
            self._record_failure(
                state,
                ledger,
                TaskFailure(
                    kind,
                    payload.get("error")
                    or f"worker gave up: {reason or 'unspecified'}",
                    fingerprint=state.fingerprint,
                    level=level.name,
                    attempt=state.total_attempts + 1,
                    detail=reason or None,
                ),
            )
            return None
        if self.certifier is not None:
            try:
                certification = self.certifier(state.task, payload)
            except Exception as exc:
                certification = None
                detail = f"certifier raised {type(exc).__name__}: {exc}"
            else:
                detail = certification.describe() if not certification else None
            if certification is None or not certification.ok:
                self._record_failure(
                    state,
                    ledger,
                    TaskFailure(
                        FAILURE_INVALID_RESULT,
                        f"result failed certification: {detail}",
                        fingerprint=state.fingerprint,
                        level=level.name,
                        attempt=state.total_attempts + 1,
                        detail=detail,
                    ),
                )
                return None
        state.total_attempts += 1
        return TaskResult(
            task=state.task,
            fingerprint=state.fingerprint,
            status=STATUS_OK,
            level=level.name,
            attempts=state.total_attempts,
            result=payload,
            failures=state.failures,
            elapsed=state.elapsed,
        )

    # -- process plumbing --------------------------------------------------

    def _launch(self, state: _TaskState) -> _Attempt:
        payload = self._attempt_payload(state)
        recv, send = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(send, self.task_runner, payload),
            daemon=True,
        )
        process.start()
        send.close()  # the parent only reads; EOF then tracks the child
        started = self._clock()
        hard = float(state.task.get("hard_timeout", self.hard_timeout))
        return _Attempt(state, process, recv, started, started + hard)

    def _reap(self, attempt: _Attempt, ledger: Optional[BatchLedger]):
        """Collect a finished worker; returns a TaskResult or None."""
        state = attempt.state
        state.elapsed += self._clock() - attempt.started_at
        payload = None
        delivered = False
        try:
            if attempt.conn.poll():
                payload = attempt.conn.recv()
                delivered = True
        except (EOFError, OSError):
            delivered = False
        finally:
            attempt.conn.close()
        attempt.process.join()
        exitcode = attempt.process.exitcode
        if not delivered:
            if exitcode and exitcode < 0:
                message = (
                    f"worker killed by signal {-exitcode}"
                    f" ({signal.Signals(-exitcode).name})"
                    if -exitcode in signal.Signals.__members__.values()
                    else f"worker killed by signal {-exitcode}"
                )
            elif exitcode:
                message = f"worker exited with code {exitcode}"
            else:
                message = "worker exited without delivering a result"
            self._record_failure(
                state,
                ledger,
                TaskFailure(
                    FAILURE_CRASHED,
                    message,
                    fingerprint=state.fingerprint,
                    level=self.ladder[state.level_index].name,
                    attempt=state.total_attempts + 1,
                ),
            )
            return None
        return self._accept_payload(state, payload, ledger)

    def _kill(self, attempt: _Attempt, ledger: Optional[BatchLedger]) -> None:
        """Hard-timeout enforcement: SIGKILL, then record the failure."""
        state = attempt.state
        state.elapsed += self._clock() - attempt.started_at
        attempt.process.kill()
        attempt.process.join()
        attempt.conn.close()
        # A SIGKILLed process gets no chance to unlink shared-memory
        # segments it created (sharded solves); reap any segment whose
        # creator pid is dead so /dev/shm never accumulates leaks.
        self._reap_shared_memory()
        self._record_failure(
            state,
            ledger,
            TaskFailure(
                FAILURE_TIMEOUT,
                f"worker exceeded the hard wall-clock timeout "
                f"({attempt.deadline - attempt.started_at:.3g}s) and was killed",
                fingerprint=state.fingerprint,
                level=self.ladder[state.level_index].name,
                attempt=state.total_attempts + 1,
            ),
        )

    def _run_inline(self, state: _TaskState, ledger: Optional[BatchLedger]):
        """The ``inline`` isolation path: no process, no timeout backstop."""
        payload = self._attempt_payload(state)
        fault = payload.get("fault") or {}
        started = self._clock()
        try:
            if fault.get("kind") == "raise":
                raise RuntimeError(str(fault.get("message", "injected worker fault")))
            if fault.get("kind") == "garbage":
                result: object = ["this", "is", "not", "a", "result"]
            else:
                result = _resolve_runner(self.task_runner)(payload)
                if fault.get("kind") == "bad_result" and isinstance(result, dict):
                    result = _corrupt_result(result)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            state.elapsed += self._clock() - started
            self._record_failure(
                state,
                ledger,
                TaskFailure(
                    FAILURE_CRASHED,
                    f"{type(exc).__name__}: {exc}",
                    fingerprint=state.fingerprint,
                    level=self.ladder[state.level_index].name,
                    attempt=state.total_attempts + 1,
                ),
            )
            return None
        state.elapsed += self._clock() - started
        return self._accept_payload(state, result, ledger)

    # -- signals -----------------------------------------------------------

    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return None

        def handler(signum, frame):
            self._interrupt_requested = True

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, handler)
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        if previous:
            for signum, old in previous.items():
                signal.signal(signum, old)

    # -- the batch loop ----------------------------------------------------

    def run(
        self,
        tasks: Sequence[Mapping[str, object]],
        ledger: Optional[BatchLedger] = None,
        resume: bool = True,
    ) -> BatchReport:
        """Run ``tasks`` to terminal outcomes; never raises for task failures.

        With a ``ledger``, terminal outcomes are journaled as they land and
        ``resume=True`` (the default) reuses recorded ``ok`` results
        instead of re-running their tasks.
        """
        self._interrupt_requested = False
        results: Dict[str, TaskResult] = {}
        order: List[str] = []
        states: List[_TaskState] = []
        completed: Dict[str, Dict[str, object]] = {}
        torn_tail = False
        if ledger is not None and resume and ledger.exists():
            _, torn_tail = ledger.records()
            completed = ledger.completed()
        for task in tasks:
            task = dict(task)
            fingerprint = task_fingerprint(task)
            if fingerprint in results or any(
                s.fingerprint == fingerprint for s in states
            ):
                continue  # duplicate spec: one outcome per fingerprint
            order.append(fingerprint)
            record = completed.get(fingerprint)
            if record is not None:
                cached = TaskResult.from_record(record, cached=True)
                if self.certifier is not None and cached.result is not None:
                    certification = self.certifier(task, cached.result)
                    if not certification:
                        # The ledger lied (bit rot, version skew): quarantine
                        # the record and re-run the task.
                        ledger.append(
                            {
                                "type": "quarantine",
                                "fingerprint": fingerprint,
                                "attempt": 0,
                                "level": cached.level,
                                "reason": "ledger result failed re-certification: "
                                + certification.describe(),
                            }
                        )
                        states.append(_TaskState(task, fingerprint, len(order)))
                        continue
                results[fingerprint] = cached
                continue
            states.append(_TaskState(task, fingerprint, len(order)))

        previous_handlers = self._install_signal_handlers()
        pending: List[_TaskState] = list(states)
        running: List[_Attempt] = []
        try:
            while (pending or running) and not self._interrupt_requested:
                now = self._clock()
                # Fill free worker slots with ready tasks (FIFO by order).
                while len(running) < self.max_workers:
                    ready = [s for s in pending if s.ready_at <= now]
                    if not ready:
                        break
                    state = min(ready, key=lambda s: s.order)
                    pending.remove(state)
                    cached = self._try_cache(state, ledger)
                    if cached is not None:
                        self._settle(state, cached, pending, results, ledger)
                        now = self._clock()
                        continue
                    try:
                        if self.isolation == "inline":
                            outcome = self._run_inline(state, ledger)
                            self._settle(state, outcome, pending, results, ledger)
                            now = self._clock()
                        else:
                            running.append(self._launch(state))
                    except KeyboardInterrupt:
                        # Mid-attempt interrupt: the task is neither pending
                        # nor running — put it back so the checkpoint below
                        # records it as interrupted.
                        pending.append(state)
                        raise
                if self._interrupt_requested:
                    break
                if not running:
                    if not pending:
                        break
                    wake_at = min(s.ready_at for s in pending)
                    delay = wake_at - self._clock()
                    if delay > 0:
                        self._sleep(delay)
                    continue
                # Wait for a worker event or the earliest hard deadline.
                horizon = min(a.deadline for a in running)
                for state in pending:
                    horizon = min(horizon, state.ready_at)
                timeout = max(0.0, horizon - self._clock())
                mp_connection.wait(
                    [a.process.sentinel for a in running], timeout=min(timeout, 1.0)
                )
                now = self._clock()
                for attempt in list(running):
                    if attempt.process.exitcode is not None:
                        running.remove(attempt)
                        outcome = self._reap(attempt, ledger)
                        self._settle(attempt.state, outcome, pending, results, ledger)
                    elif now >= attempt.deadline:
                        running.remove(attempt)
                        self._kill(attempt, ledger)
                        self._settle(attempt.state, None, pending, results, ledger)
        except KeyboardInterrupt:
            self._interrupt_requested = True
        finally:
            self._restore_signal_handlers(previous_handlers)

        interrupted = self._interrupt_requested
        if interrupted:
            for attempt in running:
                attempt.process.kill()
                attempt.process.join()
                attempt.conn.close()
                pending.append(attempt.state)
            for state in pending:
                result = TaskResult(
                    task=state.task,
                    fingerprint=state.fingerprint,
                    status=STATUS_INTERRUPTED,
                    level=self.ladder[min(state.level_index, len(self.ladder) - 1)].name,
                    attempts=state.total_attempts,
                    failures=state.failures,
                    elapsed=state.elapsed,
                )
                results[state.fingerprint] = result
                if ledger is not None:
                    ledger.append(result.as_record())
            if ledger is not None:
                ledger.append({"type": "batch", "event": "interrupted"})

        if ledger is not None:
            ledger.compact()
            ledger.close()
        # End-of-batch sweep: segments orphaned by killed processes (this
        # run's or a previous crashed run's) are unlinked here, so a
        # kill-and-resume cycle leaves /dev/shm clean.
        self._reap_shared_memory()
        ordered = [results[f] for f in order if f in results]
        return BatchReport(ordered, interrupted=interrupted, torn_tail=torn_tail)

    @staticmethod
    def _reap_shared_memory() -> None:
        """Unlink shared-memory segments whose creator process is dead."""
        try:
            from repro.runtime.parallel import reap_stale_segments

            reap_stale_segments()
        except Exception:
            # Reaping is best-effort hygiene; a failure here must never
            # turn a finished batch into an error.
            pass

    def _settle(
        self,
        state: _TaskState,
        outcome: Optional[TaskResult],
        pending: List[_TaskState],
        results: Dict[str, TaskResult],
        ledger: Optional[BatchLedger],
    ) -> None:
        """Route one attempt's outcome: done, retry, or terminal failure."""
        if outcome is None and self._exhausted(state):
            outcome = self._finalise_failure(state)
        if outcome is None:
            pending.append(state)  # retry after its backoff delay
            return
        results[state.fingerprint] = outcome
        if ledger is not None:
            ledger.append(outcome.as_record())
