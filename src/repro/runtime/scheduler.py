"""Multi-query batch solving: plan, hot memo, duplicate fan-out, scheduling.

One production client rarely asks for one decomposition — it brings a
workload's whole query set, full of repeated and near-repeated shapes.
This module turns such a set into a :class:`BatchSolvePlan`:

1. **Canonicalise up front.**  Every query hypergraph gets its
   isomorphism-invariant canonical form (:func:`repro.hypergraph.
   canonical.canonical_form`) — the same fingerprints the persistent
   decomposition cache is keyed by, computed once per query.
2. **Group exact duplicates.**  Queries with equal ``(fingerprint,
   cache kind)`` are the same solve up to vertex renaming; each group is
   solved once through its *representative* (the first member in input
   order) and fanned out to every other member through that member's own
   relabeling permutation, with per-member re-certification
   (:func:`repro.core.solve.serve_canonical_record`) — a fanned-out
   result is held to exactly the cache trust model: the record is
   evidence, the per-query certificate is the proof.  Requests whose
   kind is ``None`` (``soft-width``, data preferences without a
   ``data_key``) are never grouped or memoised.
3. **Schedule by similarity.**  Groups are ordered greedily by Jaccard
   similarity of their canonical edge-encoding sets, starting from the
   lexicographically smallest fingerprint — near-identical shapes run
   adjacently, which keeps the persistent cache's working set and the
   in-process :class:`HotMemo` maximally warm across repeated plans.

:func:`run_plan` executes a plan: hot memo → persistent cache →
representative solve (inline, or dispatched to a spawn worker pool via
the supervised batch runtime's worker runner), then fan-out.  Results
crossing a process boundary are independently re-certified by the
parent before they are memoised or served.  Fan-out only ever applies
*complete* results — a budget-truncated (anytime) representative answer
is never replicated to other queries; those members are solved
individually under their own caps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.solve import (
    SolveRequest,
    _record_for,
    serve_canonical_record,
)
from repro.hypergraph.canonical import CanonicalForm, canonical_form

__all__ = [
    "HotMemo",
    "PlanItem",
    "PlanGroup",
    "BatchSolvePlan",
    "BatchReport",
    "run_plan",
]


class HotMemo:
    """In-process ``(fingerprint, kind) → canonical record`` memo.

    The per-plan (or per-service) twin of the persistent decomposition
    cache: records live only in this process, store bags as canonical
    vertex indices and are re-certified against each caller's hypergraph
    on every serve — never trusted.  Counters mirror the persistent
    cache's hit metrics.
    """

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, str], Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, fingerprint: str, kind: Optional[str]) -> Optional[Dict[str, object]]:
        if kind is None:
            return None
        record = self._records.get((fingerprint, kind))
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, fingerprint: str, kind: Optional[str], record: Dict[str, object]) -> None:
        if kind is None:
            return
        self._records[(fingerprint, kind)] = record
        self.stores += 1

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class PlanItem:
    """One query of the plan: its task dict, request and canonical form."""

    index: int
    task: Dict[str, object]
    request: SolveRequest
    canonical: CanonicalForm
    kind: Optional[str]

    @property
    def fingerprint(self) -> str:
        return self.canonical.fingerprint


@dataclass
class PlanGroup:
    """All queries sharing one ``(fingerprint, kind)`` — one solve."""

    fingerprint: str
    kind: str
    items: List[PlanItem] = field(default_factory=list)

    @property
    def representative(self) -> PlanItem:
        """The group's solved member: the first in input order."""
        return self.items[0]


def _similarity(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two canonical edge-encoding sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


class BatchSolvePlan:
    """A workload's query set, canonicalised, grouped and scheduled."""

    def __init__(self, items: List[PlanItem]):
        self.items = items
        groups: Dict[Tuple[str, str], PlanGroup] = {}
        self.ungrouped: List[PlanItem] = []
        for item in items:
            if item.kind is None:
                # No cache kind — the answer may depend on more than the
                # shape (soft-width sub-searches, data preferences without
                # a named database), so sharing one solve across members
                # would not be sound.  Solved individually.
                self.ungrouped.append(item)
                continue
            key = (item.fingerprint, item.kind)
            group = groups.get(key)
            if group is None:
                group = groups[key] = PlanGroup(item.fingerprint, item.kind)
            group.items.append(item)
        self.groups = self._schedule(list(groups.values()))

    @classmethod
    def from_tasks(cls, tasks: Sequence[Dict[str, object]]) -> "BatchSolvePlan":
        """Build a plan from batch task dicts (``request`` wire payloads).

        Accepts the same specs the supervised batch runtime consumes
        (:func:`repro.experiments.harness.batch_task_specs`); malformed
        request payloads raise :class:`ValueError` — a batch must fail
        loudly at plan time, not mid-run.
        """
        items: List[PlanItem] = []
        for index, task in enumerate(tasks):
            request = SolveRequest.from_payload(task.get("request"))
            canonical = canonical_form(request.hypergraph)
            items.append(
                PlanItem(
                    index=index,
                    task=dict(task),
                    request=request,
                    canonical=canonical,
                    kind=request.cache_kind(),
                )
            )
        return cls(items)

    @staticmethod
    def _schedule(groups: List[PlanGroup]) -> List[PlanGroup]:
        """Greedy similarity order over canonical edge-encoding sets.

        Deterministic: start at the lexicographically smallest
        fingerprint, then repeatedly append the unvisited group most
        similar to the last scheduled one (ties broken by fingerprint,
        then kind).  O(n²) in the number of *distinct* shapes, which is
        the small side of a deduplicated workload.
        """
        if not groups:
            return []
        remaining = sorted(groups, key=lambda g: (g.fingerprint, g.kind))
        signatures = {
            id(group): frozenset(group.representative.canonical.encoding)
            for group in remaining
        }
        ordered = [remaining.pop(0)]
        while remaining:
            last = signatures[id(ordered[-1])]
            best_index = 0
            best_similarity = -1.0
            for i, group in enumerate(remaining):
                similarity = _similarity(last, signatures[id(group)])
                # Higher similarity wins; fingerprint ascending breaks ties
                # (``remaining`` is kept fingerprint-sorted, so the first
                # of equals is already the lexicographic winner).
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_index = i
            ordered.append(remaining.pop(best_index))
        return ordered

    @property
    def query_count(self) -> int:
        return len(self.items)

    @property
    def solve_count(self) -> int:
        """Distinct solves the plan needs (groups + ungrouped queries)."""
        return len(self.groups) + len(self.ungrouped)

    def describe(self) -> str:
        return (
            f"{self.query_count} queries -> {len(self.groups)} shape groups "
            f"+ {len(self.ungrouped)} ungrouped solves"
        )


@dataclass
class BatchReport:
    """What one :func:`run_plan` produced, in the plan's input order."""

    results: List[Optional[Dict[str, object]]]
    counters: Dict[str, int]
    elapsed: float

    @property
    def queries_per_second(self) -> float:
        return len(self.results) / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "queries": len(self.results),
            "elapsed_s": round(self.elapsed, 6),
            "queries_per_second": round(self.queries_per_second, 3),
            **self.counters,
        }


def _wire(item: PlanItem, result, cache_label: str) -> Dict[str, object]:
    """A per-query wire dict (the supervised batch result format)."""
    wire = result.to_payload()
    wire["query"] = item.task.get("query") or item.request.label or f"q{item.index}"
    wire["cache"] = cache_label
    return wire


def _solve_inline(item: PlanItem, cache, shards: int, pool) -> "object":
    from repro.core.solve import DATA_PREFERENCES, execute

    database = query = None
    if item.request.preference in DATA_PREFERENCES and item.task.get("query"):
        # Cost preferences rank by database statistics; benchmark tasks
        # carry their workload coordinates, and the module-level memo in
        # the harness makes repeated loads of one workload free.
        from repro.experiments.harness import load_benchmark_workload

        database, query, _ = load_benchmark_workload(
            str(item.task["query"]),
            scale=float(item.task.get("scale") or 1.0),
            seed=item.task.get("seed"),
        )
    return execute(
        item.request,
        database=database,
        query=query,
        cache=cache,
        shards=shards,
        pool=pool,
    )


def _record_from_result(item: PlanItem, result) -> Optional[Dict[str, object]]:
    """The canonical record of a complete, positive representative solve."""
    if not result.decided or not result.outcome.complete or not result.decompositions:
        return None
    return _record_for(item.canonical, result.decompositions, int(result.width))


def _fan_out(
    member: PlanItem, record: Dict[str, object], counters: Dict[str, int], label: str
) -> Optional[Dict[str, object]]:
    """Serve one member from a canonical record, re-certifying for *it*.

    Returns ``None`` when the record does not certify against this
    member's hypergraph (fingerprint collision, corrupt memo) — the
    caller then solves the member individually; a bad record degrades to
    a miss, never a wrong answer.
    """
    try:
        served = serve_canonical_record(
            member.request, member.canonical, record, time.perf_counter(), label
        )
    except (KeyError, TypeError, ValueError):
        counters["fanout_rejected"] += 1
        return None
    counters["fanout"] += 1
    return _wire(member, served, label)


def _pool_payload(item: PlanItem, shards: int, cache) -> Dict[str, object]:
    payload = dict(item.task)
    payload["request"] = item.request.to_payload()
    payload.setdefault("mode", "ranked")
    payload["shards"] = shards
    # The worker must mirror this plan's cache decision: a cache=None run
    # (benchmarks, equivalence tests) would otherwise read and write the
    # persistent cache through its workers.  (Custom cache objects are not
    # shipped — workers then use their default resolution.)
    if cache is None:
        payload["cache_off"] = True
    return payload


def _certify_pool_result(item: PlanItem, wire: object):
    """Re-certify a worker's wire result against the parent's own request.

    The parent built the request itself, so the trusted hypergraph is the
    request's — the worker only contributed the decomposition claim.
    Returns a parent-side :class:`~repro.core.solve.SolveResult`, or
    ``None`` if the claim does not certify (the caller then solves the
    representative inline: a lying worker degrades to a retry, never a
    wrong answer).
    """
    from repro.core.certify import certify_ctd, decomposition_from_payload
    from repro.core.solve import SolveResult, constraint_object
    from repro.runtime.budget import SolveOutcome

    if not isinstance(wire, dict) or not wire.get("ok"):
        return None
    hypergraph = item.request.hypergraph
    payloads = wire.get("decompositions") or (
        [wire["decomposition"]] if wire.get("decomposition") else []
    )
    outcome_dict = wire.get("outcome") or {}
    outcome = SolveOutcome(
        status=str(outcome_dict.get("status", "complete")),
        work=int(outcome_dict.get("work") or 0),
        elapsed=float(outcome_dict.get("elapsed") or 0.0),
    )
    decided = bool(wire.get("decided"))
    width = wire.get("width")
    decompositions = []
    try:
        constraint = constraint_object(
            item.request.constraint,
            hypergraph,
            int(width if width is not None else item.request.width or 1),
        )
        for payload in payloads:
            ctd = decomposition_from_payload(hypergraph, payload)
            certification = certify_ctd(
                hypergraph,
                ctd,
                constraint=constraint,
                width_claim=int(width) if width is not None else None,
            )
            if not certification:
                return None
            decompositions.append(ctd)
    except (KeyError, TypeError, ValueError):
        return None
    if decided and not decompositions:
        return None
    return SolveResult(
        request=item.request,
        decided=decided,
        decompositions=decompositions,
        width=int(width) if width is not None and decided else None,
        outcome=outcome,
    )


def run_plan(
    plan: BatchSolvePlan,
    workers: int = 0,
    shards: int = 1,
    cache="auto",
    memo: Optional[HotMemo] = None,
) -> BatchReport:
    """Execute a plan and return per-query results plus reuse counters.

    ``workers > 1`` dispatches representative solves to a spawn worker
    pool (the supervised batch runtime's worker runner,
    :func:`repro.experiments.harness.execute_batch_task`); anything a
    worker returns is re-certified by the parent before it is memoised
    or served.  ``workers <= 1`` solves inline.  ``shards`` is threaded
    into each solve's pre-fixpoint stages.  ``memo`` carries the hot
    memo across plans (a fresh one is used per call by default).

    Results are deterministic in the plan's input order and independent
    of ``workers`` and of the group schedule: grouping, representative
    choice and fan-out permutations are all fixed by the plan itself.
    """
    started = time.perf_counter()
    memo = memo if memo is not None else HotMemo()
    counters = {
        "solves": 0,
        "memo_hits": 0,
        "cache_hits": 0,
        "fanout": 0,
        "fanout_rejected": 0,
        "solve_errors": 0,
        "groups": len(plan.groups),
        "grouped_queries": sum(len(g.items) for g in plan.groups),
        "ungrouped_queries": len(plan.ungrouped),
    }
    results: List[Optional[Dict[str, object]]] = [None] * len(plan.items)

    def solve_member(item: PlanItem):
        result = _solve_inline(item, cache, shards, None)
        counters["solves"] += 1
        if result.cache_status == "hit":
            counters["cache_hits"] += 1
        results[item.index] = _wire(item, result, result.cache_status)
        return result

    # -- representatives needing a real solve ---------------------------------
    pending: List[PlanGroup] = []
    for group in plan.groups:
        record = memo.get(group.fingerprint, group.kind)
        if record is not None:
            counters["memo_hits"] += 1
            served_all = True
            for member in group.items:
                wire = _fan_out(member, record, counters, "memo")
                if wire is None:
                    served_all = False
                    solve_member(member)
                else:
                    results[member.index] = wire
            if served_all:
                continue
        else:
            pending.append(group)

    if workers > 1 and pending:
        from repro.experiments.harness import execute_batch_task
        from repro.runtime.parallel import get_pool

        pool = get_pool(workers)
        payloads = [
            _pool_payload(group.representative, shards, cache) for group in pending
        ]
        wires = pool.map(execute_batch_task, payloads)
        rep_results = []
        for group, wire in zip(pending, wires):
            certified = _certify_pool_result(group.representative, wire)
            rep_results.append(certified)
            counters["solves"] += 1
            if certified is None and isinstance(wire, dict) and not wire.get("ok"):
                counters["solve_errors"] += 1
    else:
        rep_results = [None] * len(pending)

    for group, pooled in zip(pending, rep_results):
        rep = group.representative
        if pooled is not None:
            rep_result = pooled
            results[rep.index] = _wire(rep, rep_result, "miss")
        else:
            rep_result = solve_member(rep)
        record = _record_from_result(rep, rep_result)
        if record is not None:
            memo.put(group.fingerprint, group.kind, record)
            for member in group.items[1:]:
                wire = _fan_out(member, record, counters, "fanout")
                if wire is None:
                    solve_member(member)
                else:
                    results[member.index] = wire
        elif (
            not rep_result.decided
            and rep_result.outcome.complete
            and len(group.items) > 1
        ):
            # A *complete* negative is a fact about the shape: every
            # isomorphic member shares it.  (Anytime negatives are
            # inconclusive and must not be replicated.)
            for member in group.items[1:]:
                counters["fanout"] += 1
                results[member.index] = _wire(member, rep_result, "fanout")
        else:
            # Anytime representative answer: other members get their own
            # governed solves rather than a replicated partial result.
            for member in group.items[1:]:
                solve_member(member)

    # -- ungrouped (kind None) queries ----------------------------------------
    for item in plan.ungrouped:
        solve_member(item)

    return BatchReport(
        results=results,
        counters=counters,
        elapsed=time.perf_counter() - started,
    )
