"""Fractional edge covers and fractional hypertree width bounds.

``ρ*(B)`` — the fractional edge cover number of a vertex set ``B`` — is the
optimum of the LP ``min Σ x_e`` subject to ``Σ_{e ∋ v} x_e ≥ 1`` for every
``v ∈ B`` and ``x ≥ 0``.  The fractional hypertree width of a decomposition
is the maximum ``ρ*`` over its bags; ``fhw(H)`` is the minimum over all
decompositions.  Computing ``fhw`` exactly is intractable; the paper only
needs the hierarchy ``fhw ≤ ghw ≤ shw ≤ hw``, which we can exhibit by
evaluating ``ρ*`` on the bags of the decompositions the other algorithms
produce.

The LP is solved with ``scipy.optimize.linprog`` when SciPy is importable and
with a small exact simplex-free fallback (brute force over vertex subsets of
the dual) otherwise, so the module works in minimal environments too.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition


def fractional_cover_number(
    hypergraph: Hypergraph, bag: Iterable[Vertex]
) -> float:
    """``ρ*(bag)``: the fractional edge cover number of the bag."""
    bag_set = frozenset(bag)
    if not bag_set:
        return 0.0
    relevant = [e for e in hypergraph.edges if e.vertices & bag_set]
    if not relevant:
        raise ValueError("bag contains vertices not covered by any edge")
    vertices = sorted(map(str, bag_set))
    vertex_index = {v: i for i, v in enumerate(vertices)}
    try:
        return _lp_cover(relevant, bag_set, vertex_index)
    except ImportError:
        return _greedy_cover_bound(hypergraph, bag_set)


def _lp_cover(relevant, bag_set, vertex_index) -> float:
    from scipy.optimize import linprog

    num_edges = len(relevant)
    num_vertices = len(vertex_index)
    # Minimise sum(x_e) s.t. for each vertex v in bag: sum_{e: v in e} x_e >= 1.
    c = [1.0] * num_edges
    a_ub = [[0.0] * num_edges for _ in range(num_vertices)]
    for j, edge in enumerate(relevant):
        for v in edge.vertices & bag_set:
            a_ub[vertex_index[str(v)]][j] = -1.0
    b_ub = [-1.0] * num_vertices
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * num_edges, method="highs")
    if not result.success:
        raise RuntimeError(f"LP for fractional cover failed: {result.message}")
    return float(result.fun)


def _greedy_cover_bound(hypergraph: Hypergraph, bag_set: FrozenSet[Vertex]) -> float:
    """Fallback: the (integral) greedy cover size, an upper bound on ρ*."""
    from repro.core.covers import minimum_edge_cover

    cover = minimum_edge_cover(hypergraph, bag_set)
    if cover is None:
        raise ValueError("bag has no edge cover")
    return float(len(cover))


def fhw_upper_bound(decomposition: TreeDecomposition) -> float:
    """The fractional width of a decomposition: ``max_u ρ*(B_u)``.

    This is an upper bound on ``fhw`` of the underlying hypergraph.
    """
    return max(
        fractional_cover_number(decomposition.hypergraph, bag)
        for bag in decomposition.bags()
    )
