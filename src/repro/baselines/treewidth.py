"""Treewidth of (the Gaifman graph of) a hypergraph.

Treewidth is not central to the paper, but it anchors the width hierarchy
(``fhw ≤ ghw ≤ shw ≤ hw`` all relate to bags that are unions of few edges,
whereas treewidth counts vertices) and the Bouchitté–Todinca line of work the
CandidateTD framework builds on.  We provide an exact elimination-ordering
dynamic program for small vertex counts and the classical min-fill heuristic
as an upper bound for everything else.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.hypergraph.gaifman import gaifman_graph


def _adjacency(hypergraph: Hypergraph) -> Dict[Vertex, Set[Vertex]]:
    return {v: set(neigh) for v, neigh in gaifman_graph(hypergraph).items()}


def treewidth_min_fill(hypergraph: Hypergraph) -> int:
    """An upper bound on treewidth via the min-fill elimination heuristic."""
    adjacency = _adjacency(hypergraph)
    width = 0
    while adjacency:
        # Pick the vertex whose elimination adds the fewest fill edges.
        def fill_cost(vertex: Vertex) -> int:
            neighbours = adjacency[vertex]
            missing = 0
            neighbour_list = list(neighbours)
            for i, u in enumerate(neighbour_list):
                for w in neighbour_list[i + 1:]:
                    if w not in adjacency[u]:
                        missing += 1
            return missing

        vertex = min(adjacency, key=lambda v: (fill_cost(v), len(adjacency[v]), str(v)))
        neighbours = adjacency[vertex]
        width = max(width, len(neighbours))
        neighbour_list = list(neighbours)
        for i, u in enumerate(neighbour_list):
            for w in neighbour_list[i + 1:]:
                adjacency[u].add(w)
                adjacency[w].add(u)
        for u in neighbour_list:
            adjacency[u].discard(vertex)
        del adjacency[vertex]
    return width


def treewidth_exact(hypergraph: Hypergraph, max_vertices: int = 18) -> int:
    """Exact treewidth via the Held–Karp style elimination DP.

    Exponential in the number of vertices; refuses inputs larger than
    ``max_vertices``.
    """
    vertices = sorted(map(str, hypergraph.vertices))
    n = len(vertices)
    if n > max_vertices:
        raise ValueError(
            f"exact treewidth limited to {max_vertices} vertices, got {n}"
        )
    index = {v: i for i, v in enumerate(vertices)}
    adjacency_sets = [0] * n
    base = _adjacency(hypergraph)
    reverse = {str(v): v for v in hypergraph.vertices}
    for v_str, i in index.items():
        for u in base[reverse[v_str]]:
            adjacency_sets[i] |= 1 << index[str(u)]

    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def q_set(subset: int, vertex: int) -> int:
        """Vertices outside ``subset`` reachable from ``vertex`` through ``subset``."""
        seen = 1 << vertex
        frontier = [vertex]
        reach = 0
        while frontier:
            current = frontier.pop()
            neighbours = adjacency_sets[current]
            inside = neighbours & subset
            outside = neighbours & ~subset & ~ (1 << vertex)
            reach |= outside
            rest = inside & ~seen
            while rest:
                low = rest & -rest
                rest ^= low
                nxt = low.bit_length() - 1
                seen |= low
                frontier.append(nxt)
        return reach & ~(1 << vertex)

    @lru_cache(maxsize=None)
    def tw(subset: int) -> int:
        """Treewidth of the graph where ``subset`` vertices are eliminated first."""
        if subset == 0:
            return -1
        best = n
        rest = subset
        while rest:
            low = rest & -rest
            rest ^= low
            vertex = low.bit_length() - 1
            cost = bin(q_set(subset & ~(1 << vertex), vertex)).count("1")
            best = min(best, max(cost, tw(subset & ~(1 << vertex))))
        return best

    return tw(full)
