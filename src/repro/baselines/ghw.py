"""Generalised hypertree width for small hypergraphs.

Deciding ``ghw(H) ≤ k`` is NP-complete even for ``k = 2``, so there is no
polynomial algorithm to implement.  For the small hypergraphs used in the
paper's examples and the benchmark queries, we exploit Theorem 7 of the
paper: ``ghw(H) = shw_∞(H)``.  We iterate the candidate-bag construction to
its fixpoint (Lemma 6 bounds the number of iterations) and run the
CandidateTD solver.  A ``max_subedges`` cap keeps the computation bounded on
larger inputs; when the cap is hit, the result is an upper bound on ``ghw``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.decompositions.td import TreeDecomposition
from repro.core.candidate_bags import SoftBagGenerator
from repro.core.ctd import CandidateTDSolver
from repro.baselines.acyclic import is_alpha_acyclic


def ghw_leq(
    hypergraph: Hypergraph,
    k: int,
    max_iterations: Optional[int] = None,
    max_subedges: Optional[int] = 20000,
) -> Optional[TreeDecomposition]:
    """A width-``k`` GHD-style decomposition (as a CTD), or ``None``.

    Exact for hypergraphs small enough that the subedge fixpoint is reached
    within the caps; otherwise the check is sound but not complete (``None``
    does not prove ``ghw > k``).
    """
    if k < 1:
        return None
    if k == 1:
        if not is_alpha_acyclic(hypergraph):
            return None
    generator = SoftBagGenerator(hypergraph, k, max_subedges=max_subedges)
    limit = max_iterations
    if limit is None:
        limit = 3 * max(hypergraph.num_vertices(), hypergraph.num_edges())
    bags = generator.fixpoint_candidate_bags(max_level=limit)
    return CandidateTDSolver(hypergraph, bags).solve()


def generalized_hypertree_width(
    hypergraph: Hypergraph,
    max_k: Optional[int] = None,
    max_subedges: Optional[int] = 20000,
) -> Tuple[int, TreeDecomposition]:
    """``ghw(H)`` (for small hypergraphs) with a witnessing decomposition."""
    limit = max_k if max_k is not None else max(1, hypergraph.num_edges())
    for k in range(1, limit + 1):
        decomposition = ghw_leq(hypergraph, k, max_subedges=max_subedges)
        if decomposition is not None:
            return k, decomposition
    raise ValueError(f"generalised hypertree width exceeds {limit}")
