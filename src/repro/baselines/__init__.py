"""Baseline width algorithms the paper compares against.

* hypertree width via a det-k-decomp-style backtracking search,
* generalised hypertree width via the ``shw_∞`` fixpoint (Theorem 7) for
  small instances,
* α-acyclicity (GYO reduction) and join trees,
* treewidth (exact dynamic program for small hypergraphs and a min-fill
  heuristic upper bound),
* fractional edge covers / an fhw upper bound via linear programming.
"""

from repro.baselines.acyclic import gyo_reduction, is_alpha_acyclic, join_tree
from repro.baselines.detkdecomp import hypertree_width, hw_leq, hd_of_width
from repro.baselines.ghw import generalized_hypertree_width, ghw_leq
from repro.baselines.treewidth import treewidth_exact, treewidth_min_fill
from repro.baselines.fhw import fractional_cover_number, fhw_upper_bound

__all__ = [
    "gyo_reduction",
    "is_alpha_acyclic",
    "join_tree",
    "hypertree_width",
    "hw_leq",
    "hd_of_width",
    "generalized_hypertree_width",
    "ghw_leq",
    "treewidth_exact",
    "treewidth_min_fill",
    "fractional_cover_number",
    "fhw_upper_bound",
]
