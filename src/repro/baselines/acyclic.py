"""α-acyclicity, GYO reduction and join trees.

α-acyclic hypergraphs are exactly the hypergraphs of hypertree width 1 and
the queries for which Yannakakis' algorithm applies directly.  The GYO
(Graham / Yu–Özsoyoğlu) reduction repeatedly removes *ears*; the hypergraph
is α-acyclic iff the reduction ends with a single empty edge set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode


def gyo_reduction(hypergraph: Hypergraph) -> List[FrozenSet[Vertex]]:
    """Run the GYO reduction and return the remaining edge vertex sets.

    An empty result means the hypergraph is α-acyclic.  Edges that become
    empty or duplicates during the reduction are dropped.
    """
    edges: List[FrozenSet[Vertex]] = []
    for edge in hypergraph.edges:
        if edge.vertices not in edges:
            edges.append(edge.vertices)
    changed = True
    while changed:
        changed = False
        # Remove vertices that occur in exactly one edge.
        occurrence: Dict[Vertex, int] = {}
        for edge in edges:
            for v in edge:
                occurrence[v] = occurrence.get(v, 0) + 1
        reduced = []
        for edge in edges:
            new_edge = frozenset(v for v in edge if occurrence[v] > 1)
            if new_edge != edge:
                changed = True
            reduced.append(new_edge)
        edges = [e for e in reduced if e]
        # Remove edges contained in another edge (ears).  Equal edges must
        # not eliminate each other (both being "contained" in the other), so
        # among duplicates only the first occurrence survives.
        kept: List[FrozenSet[Vertex]] = []
        for i, edge in enumerate(edges):
            contained = any(
                edge < other or (edge == other and j < i)
                for j, other in enumerate(edges)
                if i != j
            )
            if contained:
                changed = True
            else:
                kept.append(edge)
        # Deduplicate while preserving order.
        seen = set()
        edges = []
        for edge in kept:
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
    return edges


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph is α-acyclic (GYO reduces to nothing)."""
    return not gyo_reduction(hypergraph)


def join_tree(hypergraph: Hypergraph) -> Optional[TreeDecomposition]:
    """A join tree of an α-acyclic hypergraph, or ``None`` if it is cyclic.

    The join tree is returned as a tree decomposition whose bags are exactly
    the hyperedges (every bag single-edge covered), which is what the
    Yannakakis executor consumes.
    """
    if not is_alpha_acyclic(hypergraph):
        return None
    # Maximum-weight spanning tree on the edge intersection graph gives a
    # join tree for acyclic hypergraphs (standard construction).
    edges = list(hypergraph.edges)
    if not edges:
        return None
    in_tree = {0}
    parents: Dict[int, Optional[int]] = {0: None}
    while len(in_tree) < len(edges):
        best: Optional[Tuple[int, int, int]] = None
        for i in in_tree:
            for j, other in enumerate(edges):
                if j in in_tree:
                    continue
                weight = len(edges[i].vertices & other.vertices)
                if best is None or weight > best[0]:
                    best = (weight, i, j)
        assert best is not None
        _, i, j = best
        in_tree.add(j)
        parents[j] = i
    tree = RootedTree()
    nodes: Dict[int, TreeNode] = {}
    order = sorted(parents, key=lambda idx: 0 if parents[idx] is None else 1)
    # Build parents before children (BFS over the parent map).
    remaining = set(parents)
    while remaining:
        for idx in sorted(remaining):
            parent_idx = parents[idx]
            if parent_idx is None:
                nodes[idx] = tree.new_node(None, bag=edges[idx].vertices, edge=edges[idx])
                remaining.discard(idx)
            elif parent_idx in nodes:
                nodes[idx] = tree.new_node(
                    nodes[parent_idx], bag=edges[idx].vertices, edge=edges[idx]
                )
                remaining.discard(idx)
    del order
    return TreeDecomposition(hypergraph, tree)
