"""Hypertree width via a det-k-decomp-style backtracking search.

The search follows the normal form of Gottlob, Leone and Scarcello: an HD of
width ≤ k exists iff the recursive procedure ``decompose(C, conn)`` succeeds,
where ``C`` is an edge component still to be covered and ``conn`` the
interface to the parent bag.  At each step the procedure guesses a λ-label of
at most ``k`` edges covering ``conn``, sets the bag to
``(⋃λ) ∩ (V(C) ∪ conn)`` (which makes the special condition hold by
construction), and recurses into the [bag]-components of ``C``.

The procedure is exponential only in ``k`` (the number of λ-guesses is
``O(|E|^k)`` per recursion node) and is memoised on (component, interface),
which matches the behaviour of the published ``det-k-decomp`` tool.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.hypergraph.hypergraph import Edge, Hypergraph, Vertex
from repro.hypergraph.components import edge_components
from repro.decompositions.ghd import HypertreeDecomposition
from repro.decompositions.tree import RootedTree, TreeNode

ComponentKey = FrozenSet[str]
Interface = FrozenSet[Vertex]


class _DetKDecomp:
    def __init__(self, hypergraph: Hypergraph, k: int):
        self.hypergraph = hypergraph
        self.k = k
        self.edges = list(hypergraph.edges)
        self._memo: Dict[Tuple[ComponentKey, Interface], Optional[Tuple]] = {}

    def _lambda_choices(self) -> List[Tuple[Edge, ...]]:
        choices = []
        for size in range(1, min(self.k, len(self.edges)) + 1):
            choices.extend(combinations(self.edges, size))
        return choices

    def _component_vertices(self, component: Tuple[Edge, ...]) -> FrozenSet[Vertex]:
        return self.hypergraph.vertices_of(component)

    def decompose(
        self, component: Tuple[Edge, ...], interface: Interface
    ) -> Optional[Tuple]:
        """Return a decomposition fragment for the component, or ``None``.

        A fragment is a nested tuple ``(bag, cover_names, children)``.
        """
        key = (frozenset(e.name for e in component), interface)
        if key in self._memo:
            return self._memo[key]
        component_vertices = self._component_vertices(component)
        result: Optional[Tuple] = None
        for lam in self._lambda_choices():
            cover_union = self.hypergraph.vertices_of(lam)
            if not interface <= cover_union:
                continue
            bag = cover_union & (component_vertices | interface)
            if not bag & component_vertices:
                continue
            restricted = self.hypergraph.restrict_edges(e.name for e in component)
            sub_components = edge_components(restricted, bag)
            # Progress check: every remaining component must be strictly smaller.
            if any(len(sub) >= len(component) for sub in sub_components):
                continue
            children = []
            feasible = True
            for sub in sub_components:
                sub_vertices = self.hypergraph.vertices_of(sub)
                child = self.decompose(tuple(sub), frozenset(bag & sub_vertices))
                if child is None:
                    feasible = False
                    break
                children.append(child)
            if feasible:
                result = (bag, tuple(e.name for e in lam), tuple(children))
                break
        self._memo[key] = result
        return result

    def solve(self) -> Optional[HypertreeDecomposition]:
        top_components = edge_components(self.hypergraph, frozenset())
        fragments = []
        for component in top_components:
            fragment = self.decompose(tuple(component), frozenset())
            if fragment is None:
                return None
            fragments.append(fragment)
        if not fragments:
            return None
        return self._build(fragments)

    def _build(self, fragments: List[Tuple]) -> HypertreeDecomposition:
        tree = RootedTree()

        def attach(fragment: Tuple, parent: Optional[TreeNode]) -> TreeNode:
            bag, cover_names, children = fragment
            cover = tuple(self.hypergraph.edge(name) for name in cover_names)
            node = tree.new_node(parent, bag=frozenset(bag), cover=cover)
            for child in children:
                attach(child, node)
            return node

        root = attach(fragments[0], None)
        for fragment in fragments[1:]:
            attach(fragment, root)
        return HypertreeDecomposition(self.hypergraph, tree)


def hw_leq(hypergraph: Hypergraph, k: int) -> bool:
    """Decide ``hw(H) ≤ k``."""
    return hd_of_width(hypergraph, k) is not None


def hd_of_width(hypergraph: Hypergraph, k: int) -> Optional[HypertreeDecomposition]:
    """An HD of width ≤ k, or ``None`` if none exists."""
    if k < 1:
        return None
    return _DetKDecomp(hypergraph, k).solve()


def hypertree_width(hypergraph: Hypergraph, max_k: Optional[int] = None) -> int:
    """``hw(H)`` by increasing ``k`` until an HD is found."""
    limit = max_k if max_k is not None else max(1, hypergraph.num_edges())
    for k in range(1, limit + 1):
        if hw_leq(hypergraph, k):
            return k
    raise ValueError(f"hypertree width exceeds {limit}")
