"""A database: a catalogue of named relations plus schema metadata."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.db.relation import Relation


class Database:
    """Named relations with optional primary-key metadata.

    Primary keys matter for the actual-cardinality cost function of
    Appendix C.2.2, whose ``ReduceAttrs`` definition distinguishes attributes
    that are primary keys of their relation (semijoins along such attributes
    are assumed not to reduce the parent).
    """

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._primary_keys: Dict[str, str] = {}

    # -- schema management -------------------------------------------------------

    def add_relation(
        self, relation: Relation, primary_key: Optional[str] = None
    ) -> None:
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        if primary_key is not None:
            if primary_key not in relation.attributes:
                raise ValueError(
                    f"primary key {primary_key!r} is not an attribute of "
                    f"{relation.name!r}"
                )
            self._primary_keys[relation.name] = primary_key

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable,
        primary_key: Optional[str] = None,
    ) -> Relation:
        relation = Relation(name, attributes, rows)
        self.add_relation(relation, primary_key=primary_key)
        return relation

    # -- lookup ---------------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"no relation named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def primary_key(self, name: str) -> Optional[str]:
        return self._primary_keys.get(name)

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def __repr__(self) -> str:
        return (
            f"Database(relations={len(self._relations)}, rows={self.total_rows()})"
        )
