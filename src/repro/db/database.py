"""A database: a catalogue of named relations plus schema metadata.

The database owns the :class:`~repro.db.interner.ValueInterner` that
dictionary-encodes every column of every relation it holds, so all relations
of one database live in a single code space and the columnar operators can
join and semi-join raw code arrays.  ``relation_cls`` selects the engine:
the columnar :class:`repro.db.relation.Relation` by default, or the
tuple-at-a-time :class:`repro.db.reference.ReferenceRelation` spec (used by
the equivalence tests and the join benchmark).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.db.interner import ValueInterner
from repro.db.relation import Relation


class Database:
    """Named relations with optional primary-key metadata.

    Primary keys matter for the actual-cardinality cost function of
    Appendix C.2.2, whose ``ReduceAttrs`` definition distinguishes attributes
    that are primary keys of their relation (semijoins along such attributes
    are assumed not to reduce the parent).
    """

    def __init__(self, relation_cls: Optional[Type] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._primary_keys: Dict[str, str] = {}
        self.relation_cls: Type = relation_cls or Relation
        self.interner = ValueInterner()

    # -- schema management -------------------------------------------------------

    def add_relation(
        self, relation: Relation, primary_key: Optional[str] = None
    ) -> None:
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name!r} already exists")
        if (
            hasattr(relation, "with_interner")
            and getattr(relation, "interner", None) is not self.interner
        ):
            # Re-encode foreign-interner relations into this database's code
            # space so joins inside the database never need translation.
            relation = relation.with_interner(self.interner)
        self._relations[relation.name] = relation
        if primary_key is not None:
            if primary_key not in relation.attributes:
                raise ValueError(
                    f"primary key {primary_key!r} is not an attribute of "
                    f"{relation.name!r}"
                )
            self._primary_keys[relation.name] = primary_key

    def new_relation(
        self, name: str, attributes: Sequence[str], rows: Iterable
    ) -> Relation:
        """Build (but do not register) a relation in this database's engine."""
        return self.relation_cls(name, attributes, rows, interner=self.interner)

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable,
        primary_key: Optional[str] = None,
    ) -> Relation:
        relation = self.new_relation(name, attributes, rows)
        self.add_relation(relation, primary_key=primary_key)
        return relation

    def create_table_columns(
        self,
        name: str,
        attributes: Sequence[str],
        columns: Sequence[Sequence],
        primary_key: Optional[str] = None,
    ) -> Relation:
        """Create a table straight from value columns (ingest fast path).

        The columnar engine interns each column in one pass without ever
        materialising row tuples; engines without a ``from_columns``
        constructor (the reference spec) get the zipped rows instead.
        """
        from_columns = getattr(self.relation_cls, "from_columns", None)
        if from_columns is not None:
            relation = from_columns(
                name, attributes, columns, interner=self.interner
            )
        else:
            rows = list(zip(*columns)) if columns else []
            relation = self.relation_cls(
                name, attributes, rows, interner=self.interner
            )
        self.add_relation(relation, primary_key=primary_key)
        return relation

    # -- lookup ---------------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"no relation named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return sorted(self._relations)

    def primary_key(self, name: str) -> Optional[str]:
        return self._primary_keys.get(name)

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def __repr__(self) -> str:
        return (
            f"Database(relations={len(self._relations)}, rows={self.total_rows()})"
        )
