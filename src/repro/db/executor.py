"""Query executors: decomposition-guided vs. the DBMS-style baseline.

``DecompositionExecutor`` wraps the Yannakakis machinery of
:mod:`repro.db.yannakakis` and reports uniform execution metrics.  Both
executors run on whatever relation engine the database was built with — the
columnar code-array kernel by default, or the tuple-at-a-time spec of
:mod:`repro.db.reference` (see ``as_reference_database``).

``BaselineExecutor`` stands in for "just run the SQL query on PostgreSQL":
a greedy optimiser picks a join order using the cardinality *estimates* of
:class:`repro.db.stats.CardinalityEstimator` (with their independence
assumption), and the plan is then executed with hash joins.  On the cyclic,
skewed queries of the benchmark this reproduces the baseline behaviour of the
paper: large intermediate results and long run times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.decompositions.td import TreeDecomposition
from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.relation import Relation, WorkCounter
from repro.db.stats import CardinalityEstimator
from repro.db.yannakakis import YannakakisExecutor, atom_relation
from repro.runtime.budget import Budget, SolveOutcome, completed_outcome


@dataclass
class ExecutionMetrics:
    """Uniform result record for both executors.

    ``work`` (tuples read + written across all operators) is the primary,
    fully deterministic measure the benchmarks report; ``wall_time`` is also
    recorded for orientation.  A budget-cut run has ``outcome.partial``
    set and ``result=None`` (never a wrong partial answer).
    """

    result: object
    work: int
    wall_time: float
    max_intermediate: int
    total_intermediate: int
    outcome: SolveOutcome = field(default_factory=completed_outcome)

    def __repr__(self) -> str:
        return (
            f"ExecutionMetrics(result={self.result!r}, work={self.work}, "
            f"max_intermediate={self.max_intermediate}, "
            f"wall_time={self.wall_time:.4f}s)"
        )


class DecompositionExecutor:
    """Execute a query through a candidate tree decomposition."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        max_cover_size: Optional[int] = None,
        prefer_connected: bool = True,
    ):
        self.database = database
        self.query = query
        self._executor = YannakakisExecutor(
            database,
            query,
            max_cover_size=max_cover_size,
            prefer_connected=prefer_connected,
        )

    def execute(
        self,
        decomposition: TreeDecomposition,
        materialize_result: bool = False,
        budget: Optional[Budget] = None,
    ) -> ExecutionMetrics:
        run = self._executor.execute(
            decomposition, materialize_result=materialize_result, budget=budget
        )
        return ExecutionMetrics(
            result=run.result,
            work=run.work,
            wall_time=run.wall_time,
            max_intermediate=run.max_intermediate,
            total_intermediate=sum(run.node_sizes.values()),
            outcome=run.outcome,
        )


class BaselineExecutor:
    """A DBMS-style baseline: estimate-driven greedy join order, hash joins."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        estimator: Optional[CardinalityEstimator] = None,
    ):
        self.database = database
        self.query = query
        self.estimator = estimator or CardinalityEstimator(database)

    def execute(self) -> ExecutionMetrics:
        counter = WorkCounter()
        start = time.perf_counter()
        order = self.estimator.greedy_join_order(self.query.atoms)
        relation: Optional[Relation] = None
        max_intermediate = 0
        total_intermediate = 0
        for atom in order:
            operand = atom_relation(self.database, atom)
            if relation is None:
                relation = operand
            else:
                relation = relation.natural_join(operand, counter)
            max_intermediate = max(max_intermediate, len(relation))
            total_intermediate += len(relation)
        assert relation is not None
        if self.query.aggregate is not None:
            function, variable = self.query.aggregate
            result: object = relation.aggregate(function, variable)
        else:
            result = relation
        wall_time = time.perf_counter() - start
        return ExecutionMetrics(
            result=result,
            work=counter.total,
            wall_time=wall_time,
            max_intermediate=max_intermediate,
            total_intermediate=total_intermediate,
        )
