"""Dictionary encoding for the columnar relation engine.

A :class:`ValueInterner` maps each distinct Python value to a dense ``int64``
code (assigned in first-seen order) and back.  Every relation of a database
shares the database's interner, so equal values always carry equal codes and
the relational operators can compare, hash and sort raw code arrays without
ever touching the underlying Python objects.

Codes are only meaningful relative to the interner that produced them;
:meth:`translate` re-encodes a foreign column when two relations with
different interners meet in a binary operator (which only happens for
standalone relations — everything inside a :class:`repro.db.Database` shares
one interner).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

CODE_DTYPE = np.int64


class ValueInterner:
    """A bijection between distinct values and dense ``int64`` codes."""

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict = {}
        self._values: List[object] = []

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ValueInterner(|values|={len(self._values)})"

    # -- encoding ----------------------------------------------------------

    def code(self, value: object) -> int:
        """The code of ``value``, interning it on first sight."""
        code = self._codes.get(value, -1)
        if code < 0:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def encode_column(self, values: Sequence[object]) -> np.ndarray:
        """Encode a whole column of Python values into an ``int64`` array."""
        code = self.code
        return np.fromiter((code(v) for v in values), dtype=CODE_DTYPE, count=len(values))

    # -- decoding ----------------------------------------------------------

    def value(self, code: int) -> object:
        """The value behind ``code``."""
        return self._values[code]

    def values(self) -> List[object]:
        """All interned values, in code order (do not mutate)."""
        return self._values

    def decode_column(self, codes: np.ndarray) -> List[object]:
        """Decode a code array back into a list of Python values."""
        values = self._values
        return [values[c] for c in codes.tolist()]

    # -- cross-interner translation ---------------------------------------

    def translate(self, columns: Iterable[np.ndarray], target: "ValueInterner"):
        """Re-encode code columns of this interner into ``target``'s codes.

        Unseen values are interned into ``target``; the translation is a
        single ``np.take`` per column through a lookup table.
        """
        if target is self:
            return [np.asarray(column) for column in columns]
        code = target.code
        table = np.fromiter(
            (code(v) for v in self._values), dtype=CODE_DTYPE, count=len(self._values)
        )
        return [
            table[column] if len(column) else np.empty(0, dtype=CODE_DTYPE)
            for column in columns
        ]
