"""Dictionary encoding for the columnar relation engine.

A :class:`ValueInterner` maps each distinct Python value to a dense ``int64``
code (assigned in first-seen order) and back.  Every relation of a database
shares the database's interner, so equal values always carry equal codes and
the relational operators can compare, hash and sort raw code arrays without
ever touching the underlying Python objects.

Codes are only meaningful relative to the interner that produced them;
:meth:`translate` re-encodes a foreign column when two relations with
different interners meet in a binary operator (which only happens for
standalone relations — everything inside a :class:`repro.db.Database` shares
one interner).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

CODE_DTYPE = np.int64


class ValueInterner:
    """A bijection between distinct values and dense ``int64`` codes.

    The value→code dictionary is rebuilt lazily after
    :meth:`from_values` (the snapshot-load constructor): a database
    restored from an on-disk snapshot only needs the code→value direction
    until somebody interns a *new* value, so deferring the dict keeps
    snapshot hits close to a raw ``np.load``.
    """

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: Optional[dict] = {}
        self._values: List[object] = []

    @classmethod
    def from_values(cls, values: Iterable[object]) -> "ValueInterner":
        """Rebuild an interner from its value table (code = list position).

        Used when loading a workload snapshot: the codes dict is not built
        until the first :meth:`code` call on a value, so loads that only
        decode (the common case) never pay for it.
        """
        interner = cls()
        interner._values = list(values)
        interner._codes = None
        return interner

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ValueInterner(|values|={len(self._values)})"

    # -- encoding ----------------------------------------------------------

    def _code_table(self) -> dict:
        if self._codes is None:
            self._codes = {value: i for i, value in enumerate(self._values)}
        return self._codes

    def code(self, value: object) -> int:
        """The code of ``value``, interning it on first sight."""
        codes = self._code_table()
        code = codes.get(value, -1)
        if code < 0:
            code = len(self._values)
            codes[value] = code
            self._values.append(value)
        return code

    def encode_column(self, values: Sequence[object]) -> np.ndarray:
        """Encode a whole column of values into an ``int64`` code array.

        Numpy arrays take a vectorised path: only the *distinct* values are
        interned (via ``np.unique``), so encoding a generated column is
        ``O(n log n)`` array work plus a Python loop over the distinct
        values only.  Any other sequence is interned value by value.
        """
        if isinstance(values, np.ndarray):
            return self._encode_array(values)
        code = self.code
        return np.fromiter((code(v) for v in values), dtype=CODE_DTYPE, count=len(values))

    def _encode_array(self, values: np.ndarray) -> np.ndarray:
        if values.size == 0:
            return np.empty(0, dtype=CODE_DTYPE)
        if values.dtype == object:
            # Iterating an object array yields the raw Python objects (no
            # ``.item()``, possibly unsortable under np.unique) — intern
            # them one by one like any other sequence.
            code = self.code
            return np.fromiter(
                (code(v) for v in values.tolist()),
                dtype=CODE_DTYPE,
                count=values.size,
            )
        uniques, inverse = np.unique(values, return_inverse=True)
        code = self.code
        # ``.item()`` interns native Python scalars, keeping decoded rows
        # (and figure output) free of numpy scalar types.
        table = np.fromiter(
            (code(v.item()) for v in uniques), dtype=CODE_DTYPE, count=len(uniques)
        )
        return table[inverse.reshape(values.shape)]

    # -- decoding ----------------------------------------------------------

    def value(self, code: int) -> object:
        """The value behind ``code``."""
        return self._values[code]

    def values(self) -> List[object]:
        """All interned values, in code order (do not mutate)."""
        return self._values

    def decode_column(self, codes: np.ndarray) -> List[object]:
        """Decode a code array back into a list of Python values."""
        values = self._values
        return [values[c] for c in codes.tolist()]

    # -- cross-interner translation ---------------------------------------

    def translate(self, columns: Iterable[np.ndarray], target: "ValueInterner"):
        """Re-encode code columns of this interner into ``target``'s codes.

        Unseen values are interned into ``target``; the translation is a
        single ``np.take`` per column through a lookup table.
        """
        if target is self:
            return [np.asarray(column) for column in columns]
        code = target.code
        table = np.fromiter(
            (code(v) for v in self._values), dtype=CODE_DTYPE, count=len(self._values)
        )
        return [
            table[column] if len(column) else np.empty(0, dtype=CODE_DTYPE)
            for column in columns
        ]
