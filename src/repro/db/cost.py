"""The two cost functions of Appendix C.2, plus Preference adapters.

Both functions assign a cost to a (partial) tree decomposition of a query's
hypergraph; lower cost should mean faster decomposition-guided execution.

* :func:`estimate_cost` — Appendix C.2.1 (Equations 5 and 6): node costs are
  the optimiser's *estimated* cost of the bag join (our stand-in for
  PostgreSQL ``EXPLAIN``), and subtree costs add estimated semi-join costs.
* :func:`cardinality_cost` — Appendix C.2.2 (Equations 7, 8 and 9): an
  "omniscient" cost based on the *actual* cardinality of every bag join,
  with the ``ReducedSz`` model for how much the bottom-up semi-joins shrink
  each child before it is probed.

Both are strongly monotone in the sense of Section 6.1, so wrapping them in a
:class:`repro.core.preferences.CostPreference` yields a preference-complete
toptd usable by Algorithm 2 and the ranked enumerator.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import TreeNode
from repro.core.preferences import CostPreference, MonotoneCostPreference
from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.db.relation import Relation
from repro.db.stats import CardinalityEstimator
from repro.db.yannakakis import atom_relation, choose_cover

Bag = FrozenSet[Vertex]


def _log(value: float) -> float:
    return math.log2(value) if value > 1 else 0.0


class _CostModelBase:
    """Shared plumbing: bag covers and atom lookup for a fixed query."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Database,
        max_cover_size: Optional[int] = None,
        prefer_connected: bool = True,
    ):
        self.query = query
        self.database = database
        self.hypergraph = query.hypergraph()
        self.max_cover_size = max_cover_size
        self.prefer_connected = prefer_connected
        self._cover_cache: Dict[Bag, Tuple[str, ...]] = {}

    def cover_of(self, bag: Bag) -> Tuple[str, ...]:
        if bag not in self._cover_cache:
            if not bag:
                self._cover_cache[bag] = ()
            else:
                self._cover_cache[bag] = tuple(
                    choose_cover(
                        self.hypergraph,
                        bag,
                        max_size=self.max_cover_size,
                        prefer_connected=self.prefer_connected,
                    )
                )
        return self._cover_cache[bag]

    def cover_atoms(self, bag: Bag) -> List[Atom]:
        return [self.query.atom(alias) for alias in self.cover_of(bag)]


class EstimateCostModel(_CostModelBase):
    """Appendix C.2.1: costs derived from the optimiser's estimates."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Database,
        estimator: Optional[CardinalityEstimator] = None,
        max_cover_size: Optional[int] = None,
        prefer_connected: bool = True,
    ):
        super().__init__(query, database, max_cover_size, prefer_connected)
        self.estimator = estimator or CardinalityEstimator(database)
        # Plan costs are pure functions of the atom set; Algorithm 2 asks for
        # the same bags and (parent, child) pairs over and over.
        self._plan_cost_cache: Dict[Tuple[str, ...], float] = {}
        self._semijoin_cache: Dict[Tuple[Bag, Bag], float] = {}

    def _plan_cost(self, atoms: Sequence[Atom]) -> float:
        key = tuple(atom.alias for atom in atoms)
        cost = self._plan_cost_cache.get(key)
        if cost is None:
            cost = self.estimator.estimate_plan_cost(atoms)
            self._plan_cost_cache[key] = cost
        return cost

    def node_cost(self, bag: Bag) -> float:
        """Equation (5): the estimated cost of the bag join (0 for single atoms)."""
        atoms = self.cover_atoms(bag)
        if len(atoms) <= 1:
            return 0.0
        return self._plan_cost(atoms)

    def _semijoin_extra_cost(self, parent_bag: Bag, child_bag: Bag) -> float:
        """``C(J_p ⋉ J_c) − C(J_p) − C(J_c)``, clamped to at least 1.

        ``C(J_p ⋉ J_c)`` is the optimiser's estimated cost of the semi-join
        query, which we stand in for with the estimated plan cost of the join
        over the union of the two bags' cover atoms.  That estimate includes
        re-evaluating both bag joins, so the paper subtracts their costs; the
        clamp guards against noisy estimates driving the total negative
        (Appendix C.2.1 — the paper's formula prints ``min``, but a lower
        clamp is the only reading that "avoids the total cost becoming
        negative").
        """
        cached = self._semijoin_cache.get((parent_bag, child_bag))
        if cached is not None:
            return cached
        parent_atoms = self.cover_atoms(parent_bag)
        child_atoms = self.cover_atoms(child_bag)
        if not parent_atoms or not child_atoms:
            cost = 1.0
        else:
            combined: List[Atom] = list(parent_atoms)
            seen = {atom.alias for atom in combined}
            for atom in child_atoms:
                if atom.alias not in seen:
                    seen.add(atom.alias)
                    combined.append(atom)
            semijoin = self._plan_cost(combined)
            parent_cost = self._plan_cost(parent_atoms)
            child_cost = self._plan_cost(child_atoms)
            cost = max(semijoin - parent_cost - child_cost, 1.0)
        self._semijoin_cache[(parent_bag, child_bag)] = cost
        return cost

    def subtree_cost(self, decomposition: TreeDecomposition, node: TreeNode) -> float:
        """Equation (6): recursive subtree cost."""
        bag = decomposition.bag(node)
        total = self.node_cost(bag)
        for child in node.children:
            total += self.subtree_cost(decomposition, child)
            total += self._semijoin_extra_cost(bag, decomposition.bag(child))
        return total

    def decomposition_cost(self, decomposition: TreeDecomposition) -> float:
        return self.subtree_cost(decomposition, decomposition.tree.root)

    def as_preference(self) -> MonotoneCostPreference:
        """Equation (6) as a *monotone* preference for Algorithm 2.

        The recursion is exactly node costs plus parent→child semi-join
        terms, so the constrained solver can compose keys bottom-up from
        ``(bag, cost)`` fragment states instead of re-walking subtrees.
        """
        return MonotoneCostPreference(self.node_cost, self._semijoin_extra_cost)


class CardinalityCostModel(_CostModelBase):
    """Appendix C.2.2: an omniscient cost based on actual cardinalities."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Database,
        max_cover_size: Optional[int] = None,
        prefer_connected: bool = True,
    ):
        super().__init__(query, database, max_cover_size, prefer_connected)
        self._bag_size_cache: Dict[Bag, int] = {}
        self._atom_relation_cache: Dict[str, Relation] = {}

    # -- actual bag cardinalities -------------------------------------------------

    def _atom_relation(self, alias: str) -> Relation:
        if alias not in self._atom_relation_cache:
            self._atom_relation_cache[alias] = atom_relation(
                self.database, self.query.atom(alias)
            )
        return self._atom_relation_cache[alias]

    def bag_cardinality(self, bag: Bag) -> int:
        """``|J_u|``: the actual size of the bag join projected onto the bag."""
        if bag not in self._bag_size_cache:
            aliases = self.cover_of(bag)
            if not aliases:
                self._bag_size_cache[bag] = 0
            else:
                relation = self._atom_relation(aliases[0])
                for alias in aliases[1:]:
                    relation = relation.natural_join(self._atom_relation(alias))
                relation = relation.project(
                    [a for a in relation.attributes if a in bag]
                )
                self._bag_size_cache[bag] = len(relation)
        return self._bag_size_cache[bag]

    # -- Equation (7): node cost ----------------------------------------------------

    def node_cost(self, bag: Bag) -> float:
        aliases = self.cover_of(bag)
        if len(aliases) <= 1:
            return 0.0
        cost = float(self.bag_cardinality(bag))
        for alias in aliases:
            size = len(self.database.relation(self.query.atom(alias).relation))
            cost += size * _log(size)
        return cost

    # -- Equation (8): reduced sizes -----------------------------------------------------

    def _subtree_aliases(self, decomposition: TreeDecomposition, node: TreeNode) -> List[str]:
        aliases: List[str] = []
        for descendant in decomposition.tree.preorder(node):
            for alias in self.cover_of(decomposition.bag(descendant)):
                if alias not in aliases:
                    aliases.append(alias)
        return aliases

    def reduce_attributes(
        self, decomposition: TreeDecomposition, node: TreeNode
    ) -> FrozenSet[str]:
        """``ReduceAttrs(p)``: bag variables expected to be reduced by children.

        A variable qualifies if it occurs, in a subtree rooted at a child, in
        an atom whose relation does not have the corresponding attribute as
        its primary key.
        """
        bag = decomposition.bag(node)
        result = set()
        for child in node.children:
            for alias in self._subtree_aliases(decomposition, child):
                atom = self.query.atom(alias)
                primary_key = self.database.primary_key(atom.relation)
                for attribute, variable in zip(atom.attributes, atom.variables):
                    if variable in bag and attribute != primary_key:
                        result.add(variable)
        return frozenset(result)

    def reduced_size(
        self, decomposition: TreeDecomposition, node: TreeNode
    ) -> float:
        for child in node.children:
            if self.reduced_size(decomposition, child) == 0:
                return 0.0
        bag = decomposition.bag(node)
        cardinality = self.bag_cardinality(bag)
        if cardinality == 0:
            return 0.0
        return cardinality / (1 + len(self.reduce_attributes(decomposition, node)))

    def scan_cost(self, decomposition: TreeDecomposition, node: TreeNode) -> float:
        children = node.children
        if children and min(
            self.reduced_size(decomposition, child) for child in children
        ) == 0:
            return 0.0
        cardinality = self.bag_cardinality(decomposition.bag(node))
        return cardinality * _log(cardinality)

    # -- Equation (9): subtree cost ---------------------------------------------------------

    def subtree_cost(self, decomposition: TreeDecomposition, node: TreeNode) -> float:
        total = self.node_cost(decomposition.bag(node))
        total += self.scan_cost(decomposition, node)
        for child in node.children:
            total += self.subtree_cost(decomposition, child)
            reduced = self.reduced_size(decomposition, child)
            total += reduced * _log(reduced)
        return total

    def decomposition_cost(self, decomposition: TreeDecomposition) -> float:
        return self.subtree_cost(decomposition, decomposition.tree.root)


def estimate_cost(
    decomposition: TreeDecomposition,
    query: ConjunctiveQuery,
    database: Database,
    estimator: Optional[CardinalityEstimator] = None,
) -> float:
    """Equations (5)–(6): estimate-based cost of a decomposition."""
    model = EstimateCostModel(query, database, estimator=estimator)
    return model.decomposition_cost(decomposition)


def cardinality_cost(
    decomposition: TreeDecomposition,
    query: ConjunctiveQuery,
    database: Database,
) -> float:
    """Equations (7)–(9): actual-cardinality cost of a decomposition."""
    model = CardinalityCostModel(query, database)
    return model.decomposition_cost(decomposition)


def make_cost_preference(
    kind: str,
    query: ConjunctiveQuery,
    database: Database,
    estimator: Optional[CardinalityEstimator] = None,
    max_cover_size: Optional[int] = None,
) -> CostPreference:
    """A :class:`CostPreference` over partial TDs for Algorithm 2 / enumeration.

    ``kind`` is ``"estimates"`` (Appendix C.2.1) or ``"cardinalities"``
    (Appendix C.2.2).  The same model instance is reused across calls so the
    per-bag caches are shared while ranking many decompositions.  The
    estimate cost composes bottom-up (Equation (6) is node costs plus
    parent→child semi-join terms), so it is returned as a monotone
    preference; the cardinality cost's ``ReducedSz`` model inspects whole
    subtrees and stays a materialising :class:`CostPreference`.
    """
    if kind == "estimates":
        return EstimateCostModel(
            query, database, estimator=estimator, max_cover_size=max_cover_size
        ).as_preference()
    if kind == "cardinalities":
        model = CardinalityCostModel(query, database, max_cover_size=max_cover_size)
        return CostPreference(model.decomposition_cost)
    raise ValueError(f"unknown cost kind {kind!r}; use 'estimates' or 'cardinalities'")
