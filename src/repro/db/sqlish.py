"""A parser for the simple SQL dialect used by the paper's benchmark queries.

Supported shape (sufficient for the evaluation queries and the JOB-lite
workload):

.. code-block:: sql

    SELECT MIN(col) FROM t1, t2 AS a, t3 AS b
    WHERE a.x = b.y AND col2 = a.z ...

    SELECT MIN(col) FROM t1 AS a JOIN t2 AS b ON a.x = b.y JOIN ...

    SELECT * FROM t1 AS a JOIN t2 AS b ON a.x = b.y

``SELECT *`` yields an aggregate-free query whose answer is the full
join (one query variable per join-equivalence class).

Identifiers may be double-quoted or backtick-quoted (``"title"``);
``INNER JOIN`` is accepted as a synonym for ``JOIN`` and every ``JOIN``
must carry an ``ON`` clause.  Column references may be qualified
(``alias.column``) or unqualified, in which case they are resolved against
the database schema (they must be unambiguous, which holds for
TPC-DS-style schemas).  The parser produces a
:class:`repro.db.query.ConjunctiveQuery`: join equalities induce variable
equivalence classes; each table occurrence becomes one atom over the
variables of its referenced columns.

Everything outside that shape — outer joins, disjunctions, comparisons
other than ``=``, constants, grouping/ordering, subqueries — is rejected
with :class:`SqlError`, which is both a :class:`ValueError` (so library
callers can keep catching that) and a
:class:`repro.runtime.errors.UserError` (so the CLI reports it as a
one-line ``error: ...`` with exit code 2 instead of a traceback).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.runtime.errors import UserError

__all__ = ["SqlError", "parse_select_query"]


class SqlError(UserError, ValueError):
    """A query outside the supported dialect (or referencing unknown schema).

    Subclasses :class:`ValueError` for backward compatibility with callers
    that predate the error taxonomy, and :class:`UserError` so the CLI
    boundary maps it to a one-line message with exit code 2.
    """


_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?:(?P<agg>MIN|MAX|COUNT)\s*\(\s*(?P<column>[\w.]+)\s*\)|\*)\s+"
    r"FROM\s+(?P<rest>.*)$",
    re.IGNORECASE | re.DOTALL,
)

#: One ``column = column`` equality — the only condition the dialect has.
#: Anchored: a conjunct must be *exactly* this, so stray operators or
#: constants are rejected instead of silently ignored.
_EQUALITY_RE = re.compile(r"^\s*([\w.]+)\s*=\s*([\w.]+)\s*$")

#: Quoted identifiers are normalised away up front: the dialect treats
#: ``"title"`` / `` `title` `` exactly like ``title``.
_QUOTED_IDENT_RE = re.compile(r'["`](\w+)["`]')

#: Constructs the dialect deliberately does not support, each rejected
#: with a targeted message instead of being half-parsed.  Checked on the
#: quote-normalised text, word-boundary anchored.
_UNSUPPORTED_CONSTRUCTS: Tuple[Tuple[str, str], ...] = (
    (r"\b(?:LEFT|RIGHT|FULL|OUTER|CROSS)\s+(?:OUTER\s+)?JOIN\b", "outer/cross joins"),
    (r"\bGROUP\s+BY\b", "GROUP BY"),
    (r"\bORDER\s+BY\b", "ORDER BY"),
    (r"\bLIMIT\b", "LIMIT"),
    (r"\bHAVING\b", "HAVING"),
    (r"\bUNION\b", "UNION"),
    (r"\bEXCEPT\b", "EXCEPT"),
    (r"\bINTERSECT\b", "INTERSECT"),
    (r"\bDISTINCT\b", "DISTINCT"),
    (r"\b(?:OR|NOT)\b", "OR/NOT conditions"),
    (r"\b(?:IN|LIKE|BETWEEN|EXISTS|IS)\b", "predicates other than equality"),
    (r"[<>]|!=", "comparison operators other than ="),
    (r"'", "string literals"),
)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def add(self, item: Tuple[str, str]) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Tuple[str, str]) -> Tuple[str, str]:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def items(self):
        return list(self._parent)


def _normalise(sql: str) -> str:
    """Strip a trailing semicolon and unquote ``"ident"`` / `` `ident` ``."""
    text = sql.strip().rstrip(";").strip()
    return _QUOTED_IDENT_RE.sub(r"\1", text)


def _reject_unsupported(text: str) -> None:
    for pattern, label in _UNSUPPORTED_CONSTRUCTS:
        if re.search(pattern, text, re.IGNORECASE):
            raise SqlError(
                f"unsupported SQL construct ({label}); the dialect is "
                "SELECT MIN|MAX|COUNT(col) FROM tables [WHERE col = col AND ...]"
            )
    # A second SELECT can only be a subquery (the leading one was consumed
    # by the caller's match before this check runs on the remainder).
    if re.search(r"\bSELECT\b", text, re.IGNORECASE):
        raise SqlError("unsupported SQL construct (subqueries)")


def _split_from_where(rest: str) -> Tuple[str, str]:
    """Split the text after FROM into the table list and the condition text."""
    match = re.search(r"\bWHERE\b", rest, re.IGNORECASE)
    if match:
        return rest[: match.start()], rest[match.end():]
    return rest, ""


def _parse_tables(from_clause: str) -> Tuple[List[Tuple[str, str]], str]:
    """Parse the FROM clause into (table, alias) pairs and ON conditions."""
    conditions: List[str] = []
    # Normalise JOIN ... ON ... into comma-separated tables + conditions.
    text = re.sub(r"\bINNER\s+JOIN\b", "JOIN", from_clause, flags=re.IGNORECASE)
    pieces = re.split(r"\bJOIN\b", text, flags=re.IGNORECASE)
    tables_text: List[str] = []
    for i, piece in enumerate(pieces):
        if i == 0:
            tables_text.append(piece)
            continue
        on_split = re.split(r"\bON\b", piece, flags=re.IGNORECASE, maxsplit=1)
        if len(on_split) < 2:
            raise SqlError(
                "JOIN without an ON clause; write explicit JOIN ... ON "
                "conditions (or use comma-separated tables with WHERE)"
            )
        tables_text.append(on_split[0])
        conditions.append(on_split[1])
    tables: List[Tuple[str, str]] = []
    for chunk in ",".join(tables_text).split(","):
        chunk = chunk.strip()
        if not chunk:
            raise SqlError("empty table reference in FROM clause")
        parts = re.split(r"\s+AS\s+|\s+", chunk, flags=re.IGNORECASE)
        parts = [p for p in parts if p and p.upper() != "AS"]
        if len(parts) > 2:
            raise SqlError(
                f"cannot parse table reference {chunk!r}; expected "
                "'table' or 'table AS alias'"
            )
        if len(parts) == 1:
            tables.append((parts[0], parts[0]))
        else:
            tables.append((parts[0], parts[1]))
    if not tables:
        raise SqlError("FROM clause names no tables")
    return tables, " AND ".join(conditions)


def _check_tables(tables: List[Tuple[str, str]], database: Database) -> None:
    """Unknown tables and duplicate aliases are schema errors, not crashes."""
    seen: Dict[str, str] = {}
    for table, alias in tables:
        if table not in database:
            raise SqlError(
                f"unknown table {table!r}; known: {sorted(database.relation_names())}"
            )
        if alias in seen:
            raise SqlError(
                f"duplicate table alias {alias!r} in FROM clause "
                f"(tables {seen[alias]!r} and {table!r}); "
                "give each occurrence a distinct alias"
            )
        seen[alias] = table


def _resolve_column(
    reference: str,
    tables: List[Tuple[str, str]],
    database: Database,
) -> Tuple[str, str]:
    """Resolve a column reference to (alias, column)."""
    alias_to_table = dict((alias, table) for table, alias in tables)
    if "." in reference:
        alias, column = reference.split(".", 1)
        if alias not in alias_to_table:
            raise SqlError(
                f"unknown table alias in column reference {reference!r}; "
                f"FROM binds: {sorted(alias_to_table)}"
            )
        if column not in database.relation(alias_to_table[alias]).attributes:
            raise SqlError(
                f"table {alias_to_table[alias]!r} (alias {alias!r}) has no "
                f"column {column!r}"
            )
        return alias, column
    candidates = []
    for table, alias in tables:
        if reference in database.relation(table).attributes:
            candidates.append((alias, reference))
    if not candidates:
        raise SqlError(f"column {reference!r} not found in any FROM table")
    if len({alias for alias, _ in candidates}) > 1:
        raise SqlError(
            f"column {reference!r} is ambiguous; qualify it with one of: "
            f"{sorted({alias for alias, _ in candidates})}"
        )
    return candidates[0]


def _parse_conditions(condition_text: str) -> List[Tuple[str, str]]:
    """Split a WHERE/ON conjunction into strict ``col = col`` equalities."""
    equalities: List[Tuple[str, str]] = []
    for conjunct in re.split(r"\bAND\b", condition_text, flags=re.IGNORECASE):
        conjunct = conjunct.strip()
        if not conjunct:
            continue
        match = _EQUALITY_RE.match(conjunct)
        if not match:
            raise SqlError(
                f"unsupported condition {conjunct!r}; only column = column "
                "equalities joined by AND are supported"
            )
        left, right = match.group(1), match.group(2)
        if left[0].isdigit() or right[0].isdigit():
            raise SqlError(
                f"unsupported condition {conjunct!r}; constants are not "
                "supported, only column = column equalities"
            )
        equalities.append((left, right))
    return equalities


def parse_select_query(
    sql: str, database: Database, name: Optional[str] = None
) -> ConjunctiveQuery:
    """Parse an aggregate equijoin query into a :class:`ConjunctiveQuery`.

    Raises :class:`SqlError` (a ``ValueError`` and ``UserError``) on any
    query outside the supported dialect, with a message naming the
    offending construct.
    """
    text = _normalise(sql)
    match = _SELECT_RE.match(text)
    if not match:
        raise SqlError(
            "query must be of the form SELECT AGG(col) FROM ... [WHERE ...] "
            "or SELECT * FROM ... [WHERE ...]"
        )
    aggregate_function = match.group("agg")
    if aggregate_function is not None:
        aggregate_function = aggregate_function.upper()
    aggregate_column = match.group("column")
    rest = match.group("rest")
    _reject_unsupported(rest)
    from_clause, where_clause = _split_from_where(rest)
    tables, join_conditions = _parse_tables(from_clause)
    _check_tables(tables, database)
    condition_text = " AND ".join(filter(None, [join_conditions, where_clause]))

    union_find = _UnionFind()
    for left, right in _parse_conditions(condition_text):
        left_ref = _resolve_column(left, tables, database)
        right_ref = _resolve_column(right, tables, database)
        union_find.union(left_ref, right_ref)
    aggregate_ref: Optional[Tuple[str, str]] = None
    if aggregate_function is not None:
        aggregate_ref = _resolve_column(aggregate_column, tables, database)
        union_find.add(aggregate_ref)

    # Assign variable names per equivalence class.
    class_names: Dict[Tuple[str, str], str] = {}

    def variable_for(reference: Tuple[str, str]) -> str:
        root = union_find.find(reference)
        if root not in class_names:
            class_names[root] = f"v{len(class_names)}"
        return class_names[root]

    atoms: List[Atom] = []
    for table, alias in tables:
        used_columns: List[str] = []
        if aggregate_function is None:
            # SELECT *: the answer is the full join, so every attribute of
            # every table occurrence becomes a query variable (join columns
            # keep their shared equivalence class, the rest get their own).
            for column in database.relation(table).attributes:
                union_find.add((alias, column))
                used_columns.append(column)
        for alias_ref, column in union_find.items():
            if alias_ref == alias and column not in used_columns:
                used_columns.append(column)
        if not used_columns:
            # A table with no join column would be a Cartesian factor; keep it
            # connected through its first attribute so the query stays well
            # formed (none of the benchmark queries trigger this).
            used_columns = [database.relation(table).attributes[0]]
            union_find.add((alias, used_columns[0]))
        attributes = tuple(used_columns)
        variables = tuple(variable_for((alias, column)) for column in used_columns)
        atoms.append(
            Atom(alias=alias, relation=table, attributes=attributes, variables=variables)
        )

    aggregate: Optional[Tuple[str, str]] = None
    if aggregate_ref is not None:
        aggregate = (aggregate_function, variable_for(aggregate_ref))
    return ConjunctiveQuery(
        atoms=atoms,
        aggregate=aggregate,
        name=name or "query",
    )
