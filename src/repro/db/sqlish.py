"""A parser for the simple SQL dialect used by the paper's benchmark queries.

Supported shape (sufficient for the six evaluation queries):

.. code-block:: sql

    SELECT MIN(col) FROM t1, t2 AS a, t3 AS b
    WHERE a.x = b.y AND col2 = a.z ...

    SELECT MIN(col) FROM t1 AS a JOIN t2 AS b ON a.x = b.y JOIN ...

Column references may be qualified (``alias.column``) or unqualified, in
which case they are resolved against the database schema (they must be
unambiguous, which holds for TPC-DS-style schemas).  The parser produces a
:class:`repro.db.query.ConjunctiveQuery`: join equalities induce variable
equivalence classes; each table occurrence becomes one atom over the
variables of its referenced columns.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery

_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?P<agg>MIN|MAX|COUNT)\s*\(\s*(?P<column>[\w.]+)\s*\)\s+"
    r"FROM\s+(?P<rest>.*)$",
    re.IGNORECASE | re.DOTALL,
)
_EQUALITY_RE = re.compile(r"([\w.]+)\s*=\s*([\w.]+)")


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def add(self, item: Tuple[str, str]) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Tuple[str, str]) -> Tuple[str, str]:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def items(self):
        return list(self._parent)


def _split_from_where(rest: str) -> Tuple[str, str]:
    """Split the text after FROM into the table list and the condition text."""
    match = re.search(r"\bWHERE\b", rest, re.IGNORECASE)
    if match:
        return rest[: match.start()], rest[match.end():]
    return rest, ""


def _parse_tables(from_clause: str) -> Tuple[List[Tuple[str, str]], str]:
    """Parse the FROM clause into (table, alias) pairs and ON conditions."""
    conditions: List[str] = []
    # Normalise JOIN ... ON ... into comma-separated tables + conditions.
    text = from_clause
    pieces = re.split(r"\bJOIN\b", text, flags=re.IGNORECASE)
    tables_text: List[str] = []
    for i, piece in enumerate(pieces):
        if i == 0:
            tables_text.append(piece)
            continue
        on_split = re.split(r"\bON\b", piece, flags=re.IGNORECASE, maxsplit=1)
        tables_text.append(on_split[0])
        if len(on_split) > 1:
            conditions.append(on_split[1])
    tables: List[Tuple[str, str]] = []
    for chunk in ",".join(tables_text).split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = re.split(r"\s+AS\s+|\s+", chunk, flags=re.IGNORECASE)
        parts = [p for p in parts if p and p.upper() != "AS"]
        if len(parts) == 1:
            tables.append((parts[0], parts[0]))
        else:
            tables.append((parts[0], parts[1]))
    return tables, " AND ".join(conditions)


def _resolve_column(
    reference: str,
    tables: List[Tuple[str, str]],
    database: Database,
) -> Tuple[str, str]:
    """Resolve a column reference to (alias, column)."""
    if "." in reference:
        alias, column = reference.split(".", 1)
        return alias, column
    candidates = []
    for table, alias in tables:
        if reference in database.relation(table).attributes:
            candidates.append((alias, reference))
    if not candidates:
        raise ValueError(f"column {reference!r} not found in any FROM table")
    if len({alias for alias, _ in candidates}) > 1:
        raise ValueError(f"column {reference!r} is ambiguous")
    return candidates[0]


def parse_select_query(
    sql: str, database: Database, name: Optional[str] = None
) -> ConjunctiveQuery:
    """Parse an aggregate equijoin query into a :class:`ConjunctiveQuery`."""
    match = _SELECT_RE.match(sql.strip())
    if not match:
        raise ValueError("query must be of the form SELECT AGG(col) FROM ... [WHERE ...]")
    aggregate_function = match.group("agg").upper()
    aggregate_column = match.group("column")
    rest = match.group("rest")
    from_clause, where_clause = _split_from_where(rest)
    tables, join_conditions = _parse_tables(from_clause)
    condition_text = " AND ".join(filter(None, [join_conditions, where_clause]))

    alias_to_table = {alias: table for table, alias in tables}
    if len(alias_to_table) != len(tables):
        raise ValueError("duplicate table aliases in FROM clause")

    union_find = _UnionFind()
    for left, right in _EQUALITY_RE.findall(condition_text):
        left_ref = _resolve_column(left, tables, database)
        right_ref = _resolve_column(right, tables, database)
        union_find.union(left_ref, right_ref)
    aggregate_ref = _resolve_column(aggregate_column, tables, database)
    union_find.add(aggregate_ref)

    # Assign variable names per equivalence class.
    class_names: Dict[Tuple[str, str], str] = {}

    def variable_for(reference: Tuple[str, str]) -> str:
        root = union_find.find(reference)
        if root not in class_names:
            class_names[root] = f"v{len(class_names)}"
        return class_names[root]

    atoms: List[Atom] = []
    for table, alias in tables:
        used_columns: List[str] = []
        for alias_ref, column in union_find.items():
            if alias_ref == alias and column not in used_columns:
                used_columns.append(column)
        if not used_columns:
            # A table with no join column would be a Cartesian factor; keep it
            # connected through its first attribute so the query stays well
            # formed (none of the benchmark queries trigger this).
            used_columns = [database.relation(table).attributes[0]]
            union_find.add((alias, used_columns[0]))
        attributes = tuple(used_columns)
        variables = tuple(variable_for((alias, column)) for column in used_columns)
        atoms.append(
            Atom(alias=alias, relation=table, attributes=attributes, variables=variables)
        )

    aggregate_variable = variable_for(aggregate_ref)
    return ConjunctiveQuery(
        atoms=atoms,
        aggregate=(aggregate_function, aggregate_variable),
        name=name or "query",
    )
