"""The seed tuple-at-a-time relational engine, kept as the executable spec.

This is the pre-columnar :class:`Relation` implementation, preserved verbatim
(mirroring how :mod:`repro.core.reference` preserves the frozenset kernel):
every operator loops over Python tuples and builds dict/set hash tables.  The
columnar engine in :mod:`repro.db.relation` must be observationally
equivalent — identical row *sets*, identical :class:`WorkCounter` totals,
identical aggregates — which
``tests/property/test_property_relation_equivalence.py`` asserts on
randomized databases and queries, and which
``benchmarks/test_bench_join.py`` re-asserts while timing both engines on
the paper's workload joins.

``interner`` is accepted (and ignored) by the constructor so that
:class:`repro.db.database.Database` can instantiate either engine through
the same ``relation_cls`` factory hook.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.relation import Row, Value, WorkCounter

__all__ = ["ReferenceRelation", "as_reference_database"]


class ReferenceRelation:
    """A named relation: attribute names plus a list of value tuples."""

    __slots__ = ("name", "attributes", "rows")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Row],
        interner: object = None,
    ):
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names in relation {name!r}")
        self.rows: List[Row] = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.attributes):
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(self.attributes)} in relation {name!r}"
                )

    # -- basics -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def cardinality(self) -> int:
        return len(self.rows)

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise KeyError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from exc

    def column(self, attribute: str) -> List[Value]:
        index = self.attribute_index(attribute)
        return [row[index] for row in self.rows]

    def distinct_count(self, attribute: str) -> int:
        index = self.attribute_index(attribute)
        return len({row[index] for row in self.rows})

    def distinct_counts(self) -> Dict[str, int]:
        """Per-attribute distinct counts (one pass per attribute)."""
        return {a: self.distinct_count(a) for a in self.attributes}

    def rename(
        self, new_name: str, mapping: Optional[Dict[str, str]] = None
    ) -> "ReferenceRelation":
        """A renamed copy; ``mapping`` renames individual attributes."""
        mapping = mapping or {}
        attributes = [mapping.get(a, a) for a in self.attributes]
        return ReferenceRelation(new_name, attributes, self.rows)

    # -- unary operators ------------------------------------------------------------

    def project(
        self, attributes: Sequence[str], counter: Optional[WorkCounter] = None
    ) -> "ReferenceRelation":
        """Duplicate-eliminating projection onto the given attributes."""
        indices = [self.attribute_index(a) for a in attributes]
        seen = set()
        rows = []
        for row in self.rows:
            projected = tuple(row[i] for i in indices)
            if projected not in seen:
                seen.add(projected)
                rows.append(projected)
        if counter is not None:
            counter.record(len(self.rows), len(rows))
        return ReferenceRelation(f"π({self.name})", attributes, rows)

    def select(
        self, predicate: Callable[[Dict[str, Value]], bool],
        counter: Optional[WorkCounter] = None,
    ) -> "ReferenceRelation":
        """Filter rows by a predicate over attribute-name dictionaries."""
        rows = []
        for row in self.rows:
            binding = dict(zip(self.attributes, row))
            if predicate(binding):
                rows.append(row)
        if counter is not None:
            counter.record(len(self.rows), len(rows))
        return ReferenceRelation(f"σ({self.name})", self.attributes, rows)

    def distinct(self, counter: Optional[WorkCounter] = None) -> "ReferenceRelation":
        return self.project(self.attributes, counter=counter)

    # -- joins ------------------------------------------------------------------------

    def _shared_attributes(self, other: "ReferenceRelation") -> List[str]:
        return [a for a in self.attributes if a in other.attributes]

    def natural_join(
        self, other: "ReferenceRelation", counter: Optional[WorkCounter] = None
    ) -> "ReferenceRelation":
        """Hash-based natural join on all shared attribute names.

        With no shared attributes this degenerates to the Cartesian product,
        exactly the situation the ConCov constraint is designed to avoid.
        """
        shared = self._shared_attributes(other)
        own_indices = [self.attribute_index(a) for a in shared]
        other_indices = [other.attribute_index(a) for a in shared]
        other_extra = [
            i for i, a in enumerate(other.attributes) if a not in shared
        ]
        attributes = list(self.attributes) + [other.attributes[i] for i in other_extra]
        # Build the hash table on the smaller input.
        build_on_other = len(other.rows) <= len(self.rows)
        rows: List[Row] = []
        if build_on_other:
            table: Dict[Row, List[Row]] = {}
            for row in other.rows:
                key = tuple(row[i] for i in other_indices)
                table.setdefault(key, []).append(row)
            for row in self.rows:
                key = tuple(row[i] for i in own_indices)
                for match in table.get(key, ()):
                    rows.append(tuple(row) + tuple(match[i] for i in other_extra))
        else:
            table = {}
            for row in self.rows:
                key = tuple(row[i] for i in own_indices)
                table.setdefault(key, []).append(row)
            for row in other.rows:
                key = tuple(row[i] for i in other_indices)
                extra = tuple(row[i] for i in other_extra)
                for match in table.get(key, ()):
                    rows.append(tuple(match) + extra)
        if counter is not None:
            counter.record(len(self.rows) + len(other.rows), len(rows))
        return ReferenceRelation(f"({self.name}⋈{other.name})", attributes, rows)

    def semijoin(
        self, other: "ReferenceRelation", counter: Optional[WorkCounter] = None
    ) -> "ReferenceRelation":
        """Keep the rows of ``self`` that join with at least one row of ``other``."""
        shared = self._shared_attributes(other)
        if not shared:
            # Semi-join with no shared attributes keeps everything unless the
            # other side is empty (PostgreSQL behaves the same way).
            rows = list(self.rows) if other.rows else []
            if counter is not None:
                counter.record(len(self.rows) + len(other.rows), len(rows))
            return ReferenceRelation(f"({self.name}⋉{other.name})", self.attributes, rows)
        own_indices = [self.attribute_index(a) for a in shared]
        other_indices = [other.attribute_index(a) for a in shared]
        keys = {tuple(row[i] for i in other_indices) for row in other.rows}
        rows = [
            row for row in self.rows if tuple(row[i] for i in own_indices) in keys
        ]
        if counter is not None:
            counter.record(len(self.rows) + len(other.rows), len(rows))
        return ReferenceRelation(f"({self.name}⋉{other.name})", self.attributes, rows)

    # -- aggregation -------------------------------------------------------------------

    def aggregate(self, function: str, attribute: str) -> Optional[Value]:
        """``MIN``/``MAX``/``COUNT`` over a column (``None`` on empty input)."""
        if function.upper() == "COUNT":
            return len(self.rows)
        if not self.rows:
            return None
        values = self.column(attribute)
        if function.upper() == "MIN":
            return min(values)
        if function.upper() == "MAX":
            return max(values)
        raise ValueError(f"unsupported aggregate {function!r}")

    def __repr__(self) -> str:
        return (
            f"ReferenceRelation({self.name!r}, |rows|={len(self.rows)}, "
            f"attrs={self.attributes})"
        )


def as_reference_database(database):
    """A deep copy of ``database`` running on the reference tuple engine.

    The copy has the same relations (rows decoded back to Python values) and
    the same primary keys, but its ``relation_cls`` is
    :class:`ReferenceRelation`, so every executor driven through it exercises
    the tuple-at-a-time spec instead of the columnar kernel.
    """
    from repro.db.database import Database

    reference = Database(relation_cls=ReferenceRelation)
    for name in database.relation_names():
        relation = database.relation(name)
        reference.create_table(
            name,
            relation.attributes,
            relation.rows,
            primary_key=database.primary_key(name),
        )
    return reference
