"""The end-to-end query front door: SQL → hypergraph → cached CTD → Yannakakis.

Every earlier layer of the pipeline is reachable on its own — the SQL-ish
parser (:mod:`repro.db.sqlish`), the canonical solve front door
(:mod:`repro.core.solve`) with its persistent re-certified decomposition
cache, and the columnar Yannakakis executor
(:mod:`repro.db.yannakakis`).  This module stitches them into one API:

* :func:`plan_query` — parse (or accept) a conjunctive query, derive its
  join hypergraph, and obtain a decomposition through
  :func:`repro.core.solve.execute`.  Isomorphic query shapes therefore
  hit the persistent CTD cache, and every hit is mapped through the
  caller's variable names and **re-certified** before it is trusted
  (the cache-is-never-an-authority model); the resulting
  :class:`QueryPlan` records where the decomposition came from
  (``provenance``: ``cache`` or ``solve``), the canonical hypergraph
  fingerprint, the achieved width and the per-node λ-covers.
* :func:`run_query` — plan, lower the CTD to a Yannakakis plan, and
  execute it on the columnar engine under the ``Budget``/``SolveOutcome``
  contract: one budget governs decomposition *and* execution, a cut run
  returns ``rows=None``/``value=None`` with honest counters (never a
  wrong partial answer), and the outcome maps to the documented exit
  codes at the CLI.

Rows are returned in a canonical form — projected onto the sorted output
variables, de-duplicated, sorted — so two executions of the same query
are byte-comparable regardless of which (correct) decomposition served
them or whether it came from the cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.solve import SolveRequest, SolveResult, execute
from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.db.yannakakis import NodePlan, YannakakisExecutor
from repro.decompositions.td import TreeDecomposition
from repro.hypergraph.canonical import hypergraph_fingerprint
from repro.hypergraph.hypergraph import Hypergraph
from repro.runtime.budget import Budget, SolveOutcome, completed_outcome
from repro.runtime.errors import UserError

__all__ = ["QueryPlan", "QueryResult", "plan_query", "run_query"]

#: What a planning/execution call accepts as the query.
QuerySource = Union[str, ConjunctiveQuery]


def _as_query(
    source: QuerySource, database: Database, name: Optional[str]
) -> ConjunctiveQuery:
    if isinstance(source, ConjunctiveQuery):
        return source
    return parse_select_query(source, database, name=name)


def _row_sort_key(row: Tuple) -> Tuple:
    # Mixed-type columns (interned ints and strings) must still sort
    # deterministically; keying by (type name, repr) is total and stable.
    return tuple((type(value).__name__, repr(value)) for value in row)


def canonical_rows(relation, columns: Sequence[str]) -> List[Tuple]:
    """The relation as a sorted, de-duplicated list of ``columns`` tuples."""
    projected = relation.project(list(columns))
    return sorted(projected.rows, key=_row_sort_key)


@dataclass
class QueryPlan:
    """The decomposition half of one front-door run.

    ``provenance`` is ``"cache"`` when the decomposition was served from
    the persistent CTD store (and re-certified on the way out) and
    ``"solve"`` when it was computed this call; ``fingerprint`` is the
    canonical (isomorphism-invariant) hypergraph fingerprint — the cache
    key isomorphic query shapes share.  ``node_plans`` carries the
    lowered Yannakakis plan: one entry per decomposition node with its
    bag, chosen λ-cover and semi-join-enforced atoms.
    """

    query: ConjunctiveQuery
    hypergraph: Hypergraph
    request: SolveRequest
    solve: SolveResult
    fingerprint: str
    decomposition: Optional[TreeDecomposition] = None
    width: Optional[int] = None
    provenance: str = "none"
    node_plans: List[NodePlan] = field(default_factory=list)

    @property
    def cache_stats(self) -> Optional[Dict[str, int]]:
        return self.solve.cache_stats

    def describe(self) -> str:
        """The stable ``--explain`` rendering: CTD + plan, no execution."""
        lines = [
            f"query: {self.query.name}",
            f"atoms: {len(self.query.atoms)}  "
            f"variables: {self.hypergraph.num_vertices()}",
            f"fingerprint: {self.fingerprint[:16]}",
        ]
        if self.decomposition is None:
            lines.append("decomposition: none")
            return "\n".join(lines)
        lines.append(
            f"decomposition: width={self.width} provenance={self.provenance}"
        )
        order = {
            plan.node.node_id: index
            for index, plan in enumerate(self.node_plans)
        }
        parent_of: Dict[int, Optional[int]] = {}
        for plan in self.node_plans:
            for child in plan.node.children:
                parent_of[child.node_id] = order[plan.node.node_id]
        for index, plan in enumerate(self.node_plans):
            bag = ", ".join(sorted(map(str, plan.bag)))
            parent = parent_of.get(plan.node.node_id)
            origin = "root" if parent is None else f"parent={parent}"
            line = (
                f"  node {index} ({origin}): bag=[{bag}] "
                f"cover=[{', '.join(plan.cover)}]"
            )
            if plan.enforced_atoms:
                line += f" enforce=[{', '.join(sorted(plan.enforced_atoms))}]"
            lines.append(line)
        return "\n".join(lines)


@dataclass
class QueryResult:
    """What one :func:`run_query` produced.

    ``value`` is the aggregate result for ``SELECT AGG(col)`` queries
    (``rows`` is then the single ``[(value,)]`` row); for non-aggregate
    queries ``rows`` is the canonical sorted distinct row list over
    ``columns``.  A budget-cut run has ``outcome.partial`` set and
    ``rows is None`` / ``value is None`` with honest work counters.
    ``execution_work`` counts tuples read + written by the executor;
    ``solve_work`` is the decomposition search's governed work.
    """

    plan: QueryPlan
    columns: Tuple[str, ...] = ()
    rows: Optional[List[Tuple]] = None
    value: object = None
    execution_work: int = 0
    solve_work: int = 0
    outcome: SolveOutcome = field(default_factory=completed_outcome)
    elapsed: float = 0.0

    @property
    def provenance(self) -> str:
        return self.plan.provenance

    @property
    def width(self) -> Optional[int]:
        return self.plan.width

    @property
    def complete(self) -> bool:
        return self.outcome.complete

    @property
    def row_count(self) -> Optional[int]:
        return None if self.rows is None else len(self.rows)


def plan_query(
    source: QuerySource,
    database: Database,
    width: Optional[int] = None,
    name: Optional[str] = None,
    cache: object = "auto",
    budget: Optional[Budget] = None,
) -> QueryPlan:
    """Parse, derive the hypergraph, and obtain a decomposition.

    With ``width`` the solve is the fixed-width Algorithm 1 request (a
    cacheable ``decide``); without it a least-width search runs
    (``soft-width``, whose positive level is itself served from / stored
    into the cache).  ``cache`` follows
    :func:`repro.core.cache.resolve_cache` (``"auto"`` honours
    ``REPRO_CTD_CACHE_OFF``); ``budget`` governs the search and is shared
    with the subsequent execution by :func:`run_query`.
    """
    query = _as_query(source, database, name)
    hypergraph = query.hypergraph()
    if width is not None:
        request = SolveRequest(hypergraph=hypergraph, mode="decide", width=width)
    else:
        request = SolveRequest(hypergraph=hypergraph, mode="soft-width")
    solve = execute(request, database=database, query=query, cache=cache, budget=budget)
    decomposition = solve.decomposition
    provenance = "none"
    node_plans: List[NodePlan] = []
    if decomposition is not None:
        provenance = "cache" if solve.cache_status == "hit" else "solve"
        node_plans = YannakakisExecutor(database, query).plan(decomposition)
    return QueryPlan(
        query=query,
        hypergraph=hypergraph,
        request=request,
        solve=solve,
        fingerprint=hypergraph_fingerprint(hypergraph),
        decomposition=decomposition,
        width=solve.width,
        provenance=provenance,
        node_plans=node_plans,
    )


def run_query(
    source: QuerySource,
    database: Database,
    width: Optional[int] = None,
    name: Optional[str] = None,
    cache: object = "auto",
    budget: Optional[Budget] = None,
) -> QueryResult:
    """The whole pipeline: parse → (cached) CTD → Yannakakis → rows.

    One ``budget`` governs both phases: the decomposition search charges
    it through the solve front door and the execution through
    :class:`~repro.db.yannakakis.BudgetedWorkCounter`, so exhaustion at
    any point yields the anytime contract (``rows=None`` with honest
    counters and a ``partial`` outcome).  Raises
    :class:`~repro.runtime.errors.UserError` when a *complete* search
    proves there is no decomposition of the requested width — that is a
    bad request, not a failed run.
    """
    started = time.perf_counter()
    plan = plan_query(
        source, database, width=width, name=name, cache=cache, budget=budget
    )
    query = plan.query
    if plan.decomposition is None:
        if plan.solve.outcome.complete:
            raise UserError(
                f"no decomposition of width <= {width} exists for query "
                f"{query.name!r}; raise --width or omit it for a least-width search"
            )
        return QueryResult(
            plan=plan,
            solve_work=plan.solve.outcome.work,
            outcome=plan.solve.outcome,
            elapsed=time.perf_counter() - started,
        )

    executor = YannakakisExecutor(database, query)
    run = executor.execute(
        plan.decomposition,
        materialize_result=query.aggregate is None,
        budget=budget,
    )
    if run.outcome.partial:
        return QueryResult(
            plan=plan,
            execution_work=run.work,
            solve_work=plan.solve.outcome.work,
            outcome=run.outcome,
            elapsed=time.perf_counter() - started,
        )

    if query.aggregate is None:
        columns = tuple(sorted(map(str, query.variables())))
        rows = canonical_rows(run.result, columns)
        value: object = len(rows)
    else:
        function, variable = query.aggregate
        columns = (f"{function.lower()}_{variable}",)
        value = run.result
        rows = [(value,)]
    outcome = (
        budget.outcome()
        if budget is not None
        else completed_outcome(
            work=run.work, elapsed=time.perf_counter() - started
        )
    )
    return QueryResult(
        plan=plan,
        columns=columns,
        rows=rows,
        value=value,
        execution_work=run.work,
        solve_work=plan.solve.outcome.work,
        outcome=outcome,
        elapsed=time.perf_counter() - started,
    )
