"""Conjunctive queries and their hypergraphs.

A conjunctive query is a set of atoms ``alias: relation(var_1, ..., var_n)``
with an optional aggregate over one variable (the paper's benchmark queries
are all ``SELECT MIN(...)``/``MAX(...)`` over a join).  Every atom becomes a
hyperedge named by its alias, so self-joins (the Hetionet queries join the
same edge table several times) yield distinct hyperedges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class Atom:
    """One atom of a conjunctive query.

    ``alias`` names the atom (unique within the query), ``relation`` is the
    database relation it refers to, and ``variables`` maps the relation's
    attributes to query variables: ``variables[i]`` is the query variable
    bound to the ``i``-th attribute listed in ``attributes``.  Attributes not
    mentioned are simply not used by the query.
    """

    alias: str
    relation: str
    attributes: Tuple[str, ...]
    variables: Tuple[str, ...]

    def __post_init__(self):
        if len(self.attributes) != len(self.variables):
            raise ValueError(
                f"atom {self.alias!r}: {len(self.attributes)} attributes but "
                f"{len(self.variables)} variables"
            )

    def variable_of(self, attribute: str) -> str:
        return self.variables[self.attributes.index(attribute)]

    def attribute_of(self, variable: str) -> str:
        return self.attributes[self.variables.index(variable)]


@dataclass
class ConjunctiveQuery:
    """A conjunctive (join) query with an optional aggregate output."""

    atoms: List[Atom]
    aggregate: Optional[Tuple[str, str]] = None  # (function, variable)
    name: str = "query"

    def __post_init__(self):
        aliases = [atom.alias for atom in self.atoms]
        if len(set(aliases)) != len(aliases):
            raise ValueError("atom aliases must be unique within a query")

    # -- accessors -----------------------------------------------------------------

    def atom(self, alias: str) -> Atom:
        for atom in self.atoms:
            if atom.alias == alias:
                return atom
        raise KeyError(f"no atom with alias {alias!r}")

    def variables(self) -> List[str]:
        seen = []
        for atom in self.atoms:
            for variable in atom.variables:
                if variable not in seen:
                    seen.append(variable)
        return seen

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph: one edge per atom, vertices are variables."""
        return Hypergraph(
            {atom.alias: list(dict.fromkeys(atom.variables)) for atom in self.atoms}
        )

    def partition_labels(
        self, relation_partition: Mapping[str, str]
    ) -> Dict[str, str]:
        """Translate a relation-level partitioning into edge (alias) labels."""
        return {
            atom.alias: relation_partition[atom.relation]
            for atom in self.atoms
            if atom.relation in relation_partition
        }

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self.name!r}, atoms={len(self.atoms)})"


def atom(
    alias: str,
    relation: str,
    bindings: Mapping[str, str],
) -> Atom:
    """Convenience constructor: ``bindings`` maps attribute name -> variable."""
    attributes = tuple(bindings.keys())
    variables = tuple(bindings.values())
    return Atom(alias=alias, relation=relation, attributes=attributes, variables=variables)
