"""Yannakakis' algorithm over a (candidate) tree decomposition.

Decomposition-guided query evaluation works in three stages (Section 1 and 7
of the paper, following the SQL-rewriting line of work it builds on):

1. *Local joins*: for every decomposition node ``u``, materialise the bag
   relation ``J_u`` — the join of the node's λ-cover atoms projected onto the
   bag — and enforce every query atom at some node whose bag contains all of
   its variables (a semi-join, since the atom's variables are a subset of the
   bag).  This turns the cyclic query into an acyclic one over the ``J_u``.
2. *Full reducer*: Yannakakis' bottom-up and top-down semi-join passes.
3. *Answer extraction*: after the full reducer every remaining tuple
   participates in at least one answer, so MIN/MAX aggregates can be read off
   any node containing the aggregated variable; the full join result can also
   be materialised bottom-up if needed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import TreeNode
from repro.core.covers import connected_covers, enumerate_covers, minimum_edge_cover
from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.db.relation import Relation, WorkCounter
from repro.runtime.budget import Budget, BudgetExceeded, SolveOutcome, completed_outcome

Bag = FrozenSet[Vertex]


class BudgetedWorkCounter(WorkCounter):
    """A :class:`WorkCounter` that charges every increment to a budget.

    This makes the engine's own work measure (tuples read + written) the
    budget's work unit: every relational operator already records through
    the counter, so a single hook governs all of Yannakakis execution.
    ``charge`` also reads the clock (operators are chunky), so deadlines
    are honoured operator-by-operator.
    """

    def __init__(self, budget: Budget):
        super().__init__()
        self.budget = budget

    def record(self, read: int, written: int) -> None:
        super().record(read, written)
        self.budget.charge(read + written)


def atom_relation(database: Database, atom: Atom) -> Relation:
    """The atom's relation renamed to query variables and projected to them.

    A variable repeated within the atom (``R(x, x)`` — e.g. a WHERE clause
    that transitively equates two columns of the same table occurrence) is
    a selection: only rows where those columns agree participate, and one
    representative column carries the variable.
    """
    relation = database.relation(atom.relation)
    by_variable: Dict[str, List[str]] = {}
    for attribute, variable in zip(atom.attributes, atom.variables):
        by_variable.setdefault(variable, []).append(attribute)
    duplicated = [attrs for attrs in by_variable.values() if len(attrs) > 1]
    if duplicated:
        relation = relation.select(
            lambda row: all(
                len({row[a] for a in attrs}) == 1 for attrs in duplicated
            )
        )
    projected = relation.project([attrs[0] for attrs in by_variable.values()])
    return projected.rename(
        atom.alias, {attrs[0]: v for v, attrs in by_variable.items()}
    )


def choose_cover(
    hypergraph: Hypergraph,
    bag: Bag,
    max_size: Optional[int] = None,
    prefer_connected: bool = True,
) -> List[str]:
    """Pick a λ-cover (list of atom aliases) for a bag.

    Prefers a connected cover of minimal size when one exists (matching the
    ConCov constraint's intent); falls back to a minimum cover otherwise.
    """
    if not bag:
        return []
    limit = max_size if max_size is not None else hypergraph.num_edges()
    if prefer_connected:
        for size in range(1, limit + 1):
            connected = connected_covers(hypergraph, bag, size)
            if connected:
                best = min(connected, key=lambda cover: (len(cover), [e.name for e in cover]))
                return [edge.name for edge in best]
    cover = minimum_edge_cover(hypergraph, bag, upper_bound=limit)
    if cover is None:
        raise ValueError(f"bag {sorted(map(str, bag))} has no edge cover of size <= {limit}")
    return [edge.name for edge in cover]


@dataclass
class NodePlan:
    """Execution plan entry for one decomposition node."""

    node: TreeNode
    bag: Bag
    cover: List[str]
    enforced_atoms: List[str] = field(default_factory=list)


@dataclass
class YannakakisRun:
    """The outcome of one decomposition-guided execution.

    ``outcome.partial`` marks a run a budget cut short: ``result`` is then
    ``None`` (never a silently wrong partial answer) and the size maps
    cover only the stages that completed.
    """

    result: object
    counter: WorkCounter
    wall_time: float
    node_sizes: Dict[int, int]
    reduced_sizes: Dict[int, int]
    max_intermediate: int
    outcome: SolveOutcome = completed_outcome()

    @property
    def work(self) -> int:
        return self.counter.total


class YannakakisExecutor:
    """Executes a conjunctive query through a tree decomposition."""

    def __init__(
        self,
        database: Database,
        query: ConjunctiveQuery,
        max_cover_size: Optional[int] = None,
        prefer_connected: bool = True,
    ):
        self.database = database
        self.query = query
        self.hypergraph = query.hypergraph()
        self.max_cover_size = max_cover_size
        self.prefer_connected = prefer_connected
        self._atom_relations: Dict[str, Relation] = {}
        self._cover_cache: Dict[Bag, Tuple[str, ...]] = {}

    def _atom_relation(self, alias: str) -> Relation:
        if alias not in self._atom_relations:
            self._atom_relations[alias] = atom_relation(
                self.database, self.query.atom(alias)
            )
        return self._atom_relations[alias]

    # -- planning -----------------------------------------------------------------

    def _choose_cover(self, bag: Bag) -> List[str]:
        """A λ-cover for ``bag``, memoised per bag.

        Bags repeat across nodes in real decompositions (and across the many
        decompositions one executor ranks), and ``connected_covers``
        re-enumerates from scratch on every call — so the cache turns repeat
        planning into a dict lookup.
        """
        cover = self._cover_cache.get(bag)
        if cover is None:
            cover = tuple(
                choose_cover(
                    self.hypergraph,
                    bag,
                    max_size=self.max_cover_size,
                    prefer_connected=self.prefer_connected,
                )
            )
            self._cover_cache[bag] = cover
        return list(cover)

    def plan(self, decomposition: TreeDecomposition) -> List[NodePlan]:
        """Assign covers and atom enforcement to decomposition nodes."""
        nodes = decomposition.tree.nodes()
        plans = [
            NodePlan(
                node=node,
                bag=decomposition.bag(node),
                cover=self._choose_cover(decomposition.bag(node)),
            )
            for node in nodes
        ]
        variables_of = {
            atom.alias: frozenset(atom.variables) for atom in self.query.atoms
        }
        for alias, variables in variables_of.items():
            target = None
            for plan in plans:
                if variables <= plan.bag:
                    target = plan
                    break
            if target is None:
                raise ValueError(
                    f"decomposition does not cover atom {alias!r}; not a valid TD "
                    "of the query hypergraph"
                )
            # The target bag already contains all atom variables, so the atom
            # is satisfied by the local join exactly when it is part of the
            # cover; anything else must be enforced with a semi-join.
            if alias not in target.cover:
                target.enforced_atoms.append(alias)
        return plans

    # -- execution ------------------------------------------------------------------

    def execute(
        self,
        decomposition: TreeDecomposition,
        materialize_result: bool = False,
        budget: Optional[Budget] = None,
    ) -> YannakakisRun:
        """Run the three stages and return the aggregate (or materialised) result.

        With a ``budget``, work is metered in the engine's own units
        (tuples read + written, via :class:`BudgetedWorkCounter`) and the
        deadline is checked per operator.  An exhausted run returns
        ``result=None`` with the honest partial counters — never a wrong
        partial answer — and ``outcome`` says why it stopped.
        """
        counter = WorkCounter() if budget is None else BudgetedWorkCounter(budget)
        start = time.perf_counter()
        try:
            return self._execute_stages(
                decomposition, materialize_result, counter, start
            )
        except BudgetExceeded:
            pass
        except KeyboardInterrupt:
            if budget is None:
                raise
            budget.mark_interrupted()
        return YannakakisRun(
            result=None,
            counter=counter,
            wall_time=time.perf_counter() - start,
            node_sizes={},
            reduced_sizes={},
            max_intermediate=0,
            outcome=budget.outcome(),
        )

    def _execute_stages(
        self,
        decomposition: TreeDecomposition,
        materialize_result: bool,
        counter: WorkCounter,
        start: float,
    ) -> YannakakisRun:
        plans = self.plan(decomposition)
        plan_by_id = {plan.node.node_id: plan for plan in plans}
        bag_relations: Dict[int, Relation] = {}
        node_sizes: Dict[int, int] = {}
        max_intermediate = 0

        # Stage 1: local joins.
        for plan in plans:
            relation = self._materialize_bag(plan, counter)
            bag_relations[plan.node.node_id] = relation
            node_sizes[plan.node.node_id] = len(relation)
            max_intermediate = max(max_intermediate, len(relation))

        tree = decomposition.tree
        # Stage 2a: bottom-up semi-joins.
        for node in tree.postorder():
            for child in node.children:
                bag_relations[node.node_id] = bag_relations[node.node_id].semijoin(
                    bag_relations[child.node_id], counter
                )
        # Stage 2b: top-down semi-joins.
        for node in tree.preorder():
            for child in node.children:
                bag_relations[child.node_id] = bag_relations[child.node_id].semijoin(
                    bag_relations[node.node_id], counter
                )
        reduced_sizes = {
            node_id: len(relation) for node_id, relation in bag_relations.items()
        }

        # Stage 3: answer extraction.
        if materialize_result or self.query.aggregate is None:
            result_relation = self._materialize_join(tree, bag_relations, counter)
            max_intermediate = max(max_intermediate, len(result_relation))
            if self.query.aggregate is None:
                result: object = result_relation
            else:
                function, variable = self.query.aggregate
                result = result_relation.aggregate(function, variable)
        else:
            function, variable = self.query.aggregate
            if function.upper() == "COUNT":
                result_relation = self._materialize_join(tree, bag_relations, counter)
                max_intermediate = max(max_intermediate, len(result_relation))
                result = result_relation.aggregate(function, variable)
            else:
                result = self._aggregate_from_reduced(
                    plans, bag_relations, function, variable
                )
        wall_time = time.perf_counter() - start
        outcome = (
            counter.budget.outcome()
            if isinstance(counter, BudgetedWorkCounter)
            else completed_outcome(work=counter.total, elapsed=wall_time)
        )
        return YannakakisRun(
            result=result,
            counter=counter,
            wall_time=wall_time,
            node_sizes=node_sizes,
            reduced_sizes=reduced_sizes,
            max_intermediate=max_intermediate,
            outcome=outcome,
        )

    # -- helpers --------------------------------------------------------------------

    def _materialize_bag(self, plan: NodePlan, counter: WorkCounter) -> Relation:
        bag_attributes = sorted(map(str, plan.bag))
        if not plan.cover:
            return self.database.new_relation(
                f"J{plan.node.node_id}",
                bag_attributes,
                [()] if not bag_attributes else [],
            )
        relation = self._atom_relation(plan.cover[0])
        for alias in plan.cover[1:]:
            relation = relation.natural_join(self._atom_relation(alias), counter)
        relation = relation.project(
            [a for a in relation.attributes if a in plan.bag], counter
        )
        for alias in plan.enforced_atoms:
            relation = relation.semijoin(self._atom_relation(alias), counter)
        return relation

    def _materialize_join(
        self,
        tree,
        bag_relations: Dict[int, Relation],
        counter: WorkCounter,
    ) -> Relation:
        result: Optional[Relation] = None
        for node in tree.postorder():
            relation = bag_relations[node.node_id]
            result = relation if result is None else result.natural_join(relation, counter)
        assert result is not None
        return result

    def _aggregate_from_reduced(
        self,
        plans: Sequence[NodePlan],
        bag_relations: Dict[int, Relation],
        function: str,
        variable: str,
    ) -> object:
        for plan in plans:
            if variable in plan.bag:
                return bag_relations[plan.node.node_id].aggregate(function, variable)
        raise ValueError(
            f"aggregate variable {variable!r} does not occur in any bag"
        )


def run_yannakakis(
    database: Database,
    query: ConjunctiveQuery,
    decomposition: TreeDecomposition,
    max_cover_size: Optional[int] = None,
    prefer_connected: bool = True,
    budget: Optional[Budget] = None,
) -> YannakakisRun:
    """Convenience wrapper: execute ``query`` through ``decomposition``."""
    executor = YannakakisExecutor(
        database,
        query,
        max_cover_size=max_cover_size,
        prefer_connected=prefer_connected,
    )
    return executor.execute(decomposition, budget=budget)
