"""Table statistics and a textbook cardinality estimator.

The estimate-based cost function of Appendix C.2.1 relies on the DBMS's own
cost model (PostgreSQL ``EXPLAIN`` estimates).  Our substitute is the classic
System-R style estimator: per-column distinct counts plus the attribute
independence assumption.  This reproduces, by construction, the failure mode
the paper reports — estimates are systematically off for cyclic, skewed join
queries — which is exactly what Figure 5 (middle) illustrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery


@dataclass
class TableStatistics:
    """Row count and per-attribute distinct counts of one relation."""

    name: str
    row_count: int
    distinct_counts: Dict[str, int]

    def distinct(self, attribute: str) -> int:
        return max(1, self.distinct_counts.get(attribute, 1))


class CardinalityEstimator:
    """Cardinality and plan-cost estimates under the independence assumption."""

    #: cost charged per tuple scanned (mirrors PostgreSQL's cpu_tuple_cost
    #: relative to a unit page cost; only relative magnitudes matter here).
    SCAN_COST_PER_TUPLE = 1.0
    #: cost charged per tuple produced by a join.
    JOIN_COST_PER_TUPLE = 1.0

    def __init__(self, database: Database):
        self.database = database
        self._stats: Dict[str, TableStatistics] = {}

    # -- statistics --------------------------------------------------------------

    def statistics(self, relation_name: str) -> TableStatistics:
        if relation_name not in self._stats:
            relation = self.database.relation(relation_name)
            # One vectorised np.unique pass per code column on the columnar
            # engine (the reference spec falls back to per-attribute sets).
            distinct = relation.distinct_counts()
            self._stats[relation_name] = TableStatistics(
                name=relation_name,
                row_count=len(relation),
                distinct_counts=distinct,
            )
        return self._stats[relation_name]

    # -- cardinality estimation ----------------------------------------------------

    def atom_cardinality(self, atom: Atom) -> int:
        return self.statistics(atom.relation).row_count

    def _variable_distincts(self, atoms: Sequence[Atom]) -> Dict[str, List[int]]:
        """For each variable, the distinct counts of the columns bound to it."""
        result: Dict[str, List[int]] = {}
        for atom in atoms:
            stats = self.statistics(atom.relation)
            for attribute, variable in zip(atom.attributes, atom.variables):
                result.setdefault(variable, []).append(stats.distinct(attribute))
        return result

    def estimate_join_cardinality(self, atoms: Sequence[Atom]) -> float:
        """Estimated size of the natural join of the given atoms.

        Textbook formula: the product of the relation sizes divided, for each
        join variable, by the product of all but the smallest of the distinct
        counts of the columns bound to the variable.
        """
        atoms = list(atoms)
        if not atoms:
            return 0.0
        size = 1.0
        for atom in atoms:
            size *= max(1, self.atom_cardinality(atom))
        for variable, distincts in self._variable_distincts(atoms).items():
            if len(distincts) <= 1:
                continue
            distincts = sorted(distincts)
            for value in distincts[1:]:
                size /= max(1, value)
        return max(size, 1.0)

    def estimate_semijoin_selectivity(
        self, atoms: Sequence[Atom], reducer_atoms: Sequence[Atom]
    ) -> float:
        """Rough selectivity of semi-joining a join result with another join."""
        shared = {
            v for atom in atoms for v in atom.variables
        } & {v for atom in reducer_atoms for v in atom.variables}
        if not shared:
            return 1.0
        # Under independence, each shared variable keeps roughly the fraction
        # of values that also occur on the reducer side.
        selectivity = 1.0
        own = self._variable_distincts(list(atoms))
        other = self._variable_distincts(list(reducer_atoms))
        for variable in shared:
            own_d = min(own.get(variable, [1]))
            other_d = min(other.get(variable, [1]))
            selectivity *= min(1.0, other_d / max(1, own_d))
        return selectivity

    # -- plan cost estimation -----------------------------------------------------------

    def estimate_plan_cost(self, atoms: Sequence[Atom]) -> float:
        """Estimated total cost of evaluating the join of ``atoms``.

        Mirrors what ``EXPLAIN`` reports for a join query: scan costs of the
        base relations plus, for a greedy (estimate-driven) join order, the
        estimated size of every intermediate result.
        """
        atoms = list(atoms)
        if not atoms:
            return 0.0
        cost = sum(
            self.SCAN_COST_PER_TUPLE * self.atom_cardinality(atom) for atom in atoms
        )
        if len(atoms) == 1:
            return cost
        remaining = list(atoms)
        joined: List[Atom] = [self._pick_smallest(remaining)]
        remaining.remove(joined[0])
        while remaining:
            best_atom = None
            best_size = None
            for atom in remaining:
                size = self.estimate_join_cardinality(joined + [atom])
                if best_size is None or size < best_size:
                    best_atom, best_size = atom, size
            assert best_atom is not None and best_size is not None
            joined.append(best_atom)
            remaining.remove(best_atom)
            cost += self.JOIN_COST_PER_TUPLE * best_size
        return cost

    def _pick_smallest(self, atoms: Sequence[Atom]) -> Atom:
        return min(atoms, key=self.atom_cardinality)

    def greedy_join_order(self, atoms: Sequence[Atom]) -> List[Atom]:
        """The join order an estimate-driven greedy optimiser would pick.

        Starts from the smallest relation and repeatedly adds the atom whose
        inclusion yields the smallest estimated intermediate result.  This is
        the plan the baseline executor runs.
        """
        remaining = list(atoms)
        if not remaining:
            return []
        order = [self._pick_smallest(remaining)]
        remaining.remove(order[0])
        while remaining:
            best_atom = None
            best_size = None
            for atom in remaining:
                size = self.estimate_join_cardinality(order + [atom])
                if best_size is None or size < best_size:
                    best_atom, best_size = atom, size
            assert best_atom is not None
            order.append(best_atom)
            remaining.remove(best_atom)
        return order
