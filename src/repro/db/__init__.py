"""An in-memory relational substrate.

The paper's experiments run SQL join queries on PostgreSQL, both directly
(the baseline) and through a Yannakakis-style rewriting guided by a candidate
tree decomposition.  This package replaces PostgreSQL with a small, fully
deterministic relational engine:

* :class:`repro.db.Relation` / :class:`repro.db.Database` — named in-memory
  relations over dictionary-encoded numpy code columns (the database owns the
  :class:`repro.db.ValueInterner`), with vectorised joins, semi-joins,
  projections and aggregation, plus operation counters so experiments can
  report deterministic work measures alongside wall-clock time; the seed
  tuple-at-a-time engine survives as :class:`repro.db.ReferenceRelation` in
  :mod:`repro.db.reference`, the executable spec the columnar kernel is
  property-tested against;
* :class:`repro.db.ConjunctiveQuery` — join queries as sets of atoms, with
  hypergraph extraction (every atom becomes a hyperedge named by its alias);
* :mod:`repro.db.sqlish` — a parser for the simple SELECT/FROM/WHERE equijoin
  SQL dialect the paper's benchmark queries are written in;
* :mod:`repro.db.stats` — table statistics and a textbook cardinality
  estimator (independence assumption), playing the role of the DBMS's
  optimiser estimates;
* :mod:`repro.db.yannakakis` — Yannakakis' algorithm over a decomposition;
* :mod:`repro.db.executor` — decomposition-guided execution and the greedy
  pairwise-join baseline standing in for the DBMS's own plan;
* :mod:`repro.db.cost` — the two cost functions of Appendix C.2.
"""

from repro.db.interner import ValueInterner
from repro.db.relation import Relation, WorkCounter
from repro.db.reference import ReferenceRelation, as_reference_database
from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.db.stats import CardinalityEstimator, TableStatistics
from repro.db.yannakakis import YannakakisRun, run_yannakakis
from repro.db.executor import (
    BaselineExecutor,
    DecompositionExecutor,
    ExecutionMetrics,
)
from repro.db.cost import (
    cardinality_cost,
    estimate_cost,
    make_cost_preference,
)

__all__ = [
    "Relation",
    "WorkCounter",
    "ValueInterner",
    "ReferenceRelation",
    "as_reference_database",
    "Database",
    "Atom",
    "ConjunctiveQuery",
    "parse_select_query",
    "TableStatistics",
    "CardinalityEstimator",
    "YannakakisRun",
    "run_yannakakis",
    "DecompositionExecutor",
    "BaselineExecutor",
    "ExecutionMetrics",
    "estimate_cost",
    "cardinality_cost",
    "make_cost_preference",
]
