"""Columnar in-memory relations with the operators the executors need.

A :class:`Relation` stores dictionary-encoded columns: every value is mapped
to a dense ``int64`` code by a :class:`repro.db.interner.ValueInterner`
(shared per database) and each attribute is held as a numpy code array.  The
hot operators run entirely on codes:

* **semi-join** — single-key membership via ``np.isin`` when one attribute is
  shared, packed-key membership otherwise;
* **projection with dedup** — ``np.unique`` over (packed) key columns,
  preserving first-occurrence order;
* **natural join** — build-side stable sort + binary-search grouping, probe
  expansion with ``np.repeat``/fancy indexing;
* **MIN/MAX/COUNT aggregates** — ``np.unique`` on codes, decoded once.

The public row-oriented API is unchanged from the seed tuple engine (which
lives on as the executable spec in :mod:`repro.db.reference`): ``rows`` is
still a list of value tuples (decoded lazily), all operators report the same
:class:`WorkCounter` totals, and execution cost stays roughly linear in the
sizes of the inputs and outputs — the same asymptotics a real DBMS achieves —
which keeps the *shape* of the experimental results comparable to the
paper's PostgreSQL numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.interner import CODE_DTYPE, ValueInterner

Row = Tuple
Value = object


class WorkCounter:
    """Accumulates the amount of work done by relational operators."""

    def __init__(self) -> None:
        self.tuples_read = 0
        self.tuples_written = 0
        self.operations = 0

    def record(self, read: int, written: int) -> None:
        self.tuples_read += read
        self.tuples_written += written
        self.operations += 1

    @property
    def total(self) -> int:
        """A single scalar work measure (tuples read + written)."""
        return self.tuples_read + self.tuples_written

    def __repr__(self) -> str:
        return (
            f"WorkCounter(read={self.tuples_read}, written={self.tuples_written}, "
            f"ops={self.operations})"
        )


def _pack_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Fold several non-empty code columns into one injective ``int64`` key.

    Each fold first densifies the accumulated key (``np.unique`` ranks keep
    its magnitude below the row count) and then mixes in the next column, so
    the product ``rank * (max_code + 1) + code`` can never overflow ``int64``
    for any realistic interner size.
    """
    key = columns[0]
    for column in columns[1:]:
        _, key = np.unique(key, return_inverse=True)
        key = key.astype(CODE_DTYPE) * (int(column.max()) + 1) + column
    return key


def _pack_pair(
    left: Sequence[np.ndarray], right: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack multi-column join keys consistently across two relations.

    The columns are packed *jointly* (concatenated before folding) so equal
    code tuples on the two sides map to the same packed key.  Both sides
    must be non-empty.
    """
    if len(left) == 1:
        return left[0], right[0]
    split = len(left[0])
    combined = [np.concatenate((l, r)) for l, r in zip(left, right)]
    key = _pack_columns(combined)
    return key[:split], key[split:]


class Relation:
    """A named relation: attribute names plus dictionary-encoded columns."""

    __slots__ = ("name", "attributes", "_interner", "_columns", "_length", "_rows")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Row],
        interner: Optional[ValueInterner] = None,
    ):
        self.name = name
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self._check_attributes()
        self._interner = interner if interner is not None else ValueInterner()
        materialized: List[Row] = [tuple(row) for row in rows]
        arity = len(self.attributes)
        for row in materialized:
            if len(row) != arity:
                raise ValueError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{arity} in relation {name!r}"
                )
        code = self._interner.code
        self._columns: Tuple[np.ndarray, ...] = tuple(
            np.fromiter(
                (code(row[i]) for row in materialized),
                dtype=CODE_DTYPE,
                count=len(materialized),
            )
            for i in range(arity)
        )
        self._length = len(materialized)
        self._rows: Optional[List[Row]] = materialized

    # -- alternative constructors ------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        attributes: Sequence[str],
        columns: Sequence[Sequence[Value]],
        interner: Optional[ValueInterner] = None,
    ) -> "Relation":
        """Build a relation straight from value columns (no row tuples).

        This is the ingest fast path the workload generators use: each column
        is interned in one pass and never materialised as Python row tuples
        unless ``rows`` is later asked for.
        """
        if len(columns) != len(attributes):
            raise ValueError(
                f"{len(columns)} columns do not match schema arity "
                f"{len(attributes)} in relation {name!r}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns in relation {name!r}: lengths {lengths}")
        interner = interner if interner is not None else ValueInterner()
        encoded = tuple(interner.encode_column(column) for column in columns)
        length = lengths.pop() if lengths else 0
        return cls._from_codes(name, attributes, encoded, length, interner)

    @classmethod
    def _from_codes(
        cls,
        name: str,
        attributes: Sequence[str],
        columns: Sequence[np.ndarray],
        length: int,
        interner: ValueInterner,
    ) -> "Relation":
        """Trusted internal constructor from already-encoded columns."""
        relation = cls.__new__(cls)
        relation.name = name
        relation.attributes = tuple(attributes)
        relation._check_attributes()
        relation._interner = interner
        relation._columns = tuple(columns)
        relation._length = length
        relation._rows = None
        return relation

    def _check_attributes(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names in relation {self.name!r}")

    # -- basics -----------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        """The rows as value tuples, decoded from the code columns on demand."""
        if self._rows is None:
            if not self._columns:
                self._rows = [()] * self._length
            elif self._length == 0:
                self._rows = []
            else:
                decoded = [
                    self._interner.decode_column(column) for column in self._columns
                ]
                self._rows = list(zip(*decoded))
        return self._rows

    @property
    def interner(self) -> ValueInterner:
        return self._interner

    def codes(self, attribute: str) -> np.ndarray:
        """The raw code column of an attribute (kernel-internal view)."""
        return self._columns[self.attribute_index(attribute)]

    def __len__(self) -> int:
        return self._length

    def cardinality(self) -> int:
        return self._length

    def attribute_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise KeyError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from exc

    def column(self, attribute: str) -> List[Value]:
        return self._interner.decode_column(
            self._columns[self.attribute_index(attribute)]
        )

    def distinct_count(self, attribute: str) -> int:
        return len(np.unique(self._columns[self.attribute_index(attribute)]))

    def distinct_counts(self) -> Dict[str, int]:
        """Per-attribute distinct counts, one vectorised pass per column."""
        return {
            attribute: len(np.unique(column))
            for attribute, column in zip(self.attributes, self._columns)
        }

    def with_interner(self, interner: ValueInterner) -> "Relation":
        """This relation re-encoded against another interner."""
        if interner is self._interner:
            return self
        columns = self._interner.translate(self._columns, interner)
        return Relation._from_codes(
            self.name, self.attributes, columns, self._length, interner
        )

    def rename(self, new_name: str, mapping: Optional[Dict[str, str]] = None) -> "Relation":
        """A renamed copy; ``mapping`` renames individual attributes."""
        mapping = mapping or {}
        attributes = [mapping.get(a, a) for a in self.attributes]
        renamed = Relation._from_codes(
            new_name, attributes, self._columns, self._length, self._interner
        )
        renamed._rows = self._rows
        return renamed

    # -- unary operators ------------------------------------------------------------

    def _take(self, name: str, indices: np.ndarray) -> "Relation":
        """A relation holding the rows of ``self`` at ``indices`` (in order)."""
        return Relation._from_codes(
            name,
            self.attributes,
            tuple(column[indices] for column in self._columns),
            len(indices),
            self._interner,
        )

    def project(
        self, attributes: Sequence[str], counter: Optional[WorkCounter] = None
    ) -> "Relation":
        """Duplicate-eliminating projection onto the given attributes."""
        indices = [self.attribute_index(a) for a in attributes]
        columns = [self._columns[i] for i in indices]
        name = f"π({self.name})"
        if self._length == 0:
            result = Relation._from_codes(
                name,
                attributes,
                tuple(np.empty(0, dtype=CODE_DTYPE) for _ in indices),
                0,
                self._interner,
            )
        elif not columns:
            # Zero-arity projection of a non-empty relation: the single empty
            # tuple (the relational "true").
            result = Relation._from_codes(name, attributes, (), 1, self._interner)
        else:
            key = _pack_columns(columns)
            _, first = np.unique(key, return_index=True)
            first.sort()  # keep first-occurrence order, like the spec
            result = Relation._from_codes(
                name,
                attributes,
                tuple(column[first] for column in columns),
                len(first),
                self._interner,
            )
        if counter is not None:
            counter.record(self._length, len(result))
        return result

    def select(
        self, predicate: Callable[[Dict[str, Value]], bool],
        counter: Optional[WorkCounter] = None,
    ) -> "Relation":
        """Filter rows by a predicate over attribute-name dictionaries."""
        attributes = self.attributes
        keep = [
            i
            for i, row in enumerate(self.rows)
            if predicate(dict(zip(attributes, row)))
        ]
        indices = np.asarray(keep, dtype=CODE_DTYPE)
        result = Relation._from_codes(
            f"σ({self.name})",
            attributes,
            tuple(column[indices] for column in self._columns),
            len(keep),
            self._interner,
        )
        if counter is not None:
            counter.record(self._length, len(keep))
        return result

    def distinct(self, counter: Optional[WorkCounter] = None) -> "Relation":
        return self.project(self.attributes, counter=counter)

    # -- joins ------------------------------------------------------------------------

    def _shared_attributes(self, other: "Relation") -> List[str]:
        return [a for a in self.attributes if a in other.attributes]

    def _key_columns(self, other: "Relation", shared: Sequence[str]):
        own = [self._columns[self.attribute_index(a)] for a in shared]
        theirs = [other._columns[other.attribute_index(a)] for a in shared]
        return own, theirs

    def natural_join(
        self, other: "Relation", counter: Optional[WorkCounter] = None
    ) -> "Relation":
        """Code-level natural join on all shared attribute names.

        With no shared attributes this degenerates to the Cartesian product,
        exactly the situation the ConCov constraint is designed to avoid.
        """
        other = other.with_interner(self._interner)
        shared = self._shared_attributes(other)
        other_extra = [i for i, a in enumerate(other.attributes) if a not in shared]
        attributes = list(self.attributes) + [other.attributes[i] for i in other_extra]
        name = f"({self.name}⋈{other.name})"
        read = self._length + other._length
        if self._length == 0 or other._length == 0:
            empty = np.empty(0, dtype=CODE_DTYPE)
            if counter is not None:
                counter.record(read, 0)
            return Relation._from_codes(
                name, attributes, tuple(empty for _ in attributes), 0, self._interner
            )
        if not shared:
            left_index = np.repeat(
                np.arange(self._length, dtype=CODE_DTYPE), other._length
            )
            right_index = np.tile(
                np.arange(other._length, dtype=CODE_DTYPE), self._length
            )
        else:
            own_keys, other_keys = self._key_columns(other, shared)
            left_key, right_key = _pack_pair(own_keys, other_keys)
            # Group the build side by key with a stable sort, then expand
            # every probe row by its matching group via searchsorted ranges.
            order = np.argsort(right_key, kind="stable")
            right_sorted = right_key[order]
            lo = np.searchsorted(right_sorted, left_key, side="left")
            hi = np.searchsorted(right_sorted, left_key, side="right")
            matches = hi - lo
            total = int(matches.sum())
            left_index = np.repeat(
                np.arange(self._length, dtype=CODE_DTYPE), matches
            )
            if total:
                group_starts = np.cumsum(matches) - matches
                within = np.arange(total, dtype=CODE_DTYPE) - np.repeat(
                    group_starts, matches
                )
                right_index = order[np.repeat(lo, matches) + within]
            else:
                right_index = np.empty(0, dtype=CODE_DTYPE)
        columns = [column[left_index] for column in self._columns]
        columns.extend(other._columns[i][right_index] for i in other_extra)
        if counter is not None:
            counter.record(read, len(left_index))
        return Relation._from_codes(
            name, attributes, tuple(columns), len(left_index), self._interner
        )

    def semijoin(
        self, other: "Relation", counter: Optional[WorkCounter] = None
    ) -> "Relation":
        """Keep the rows of ``self`` that join with at least one row of ``other``."""
        other = other.with_interner(self._interner)
        shared = self._shared_attributes(other)
        name = f"({self.name}⋉{other.name})"
        read = self._length + other._length
        if not shared:
            # Semi-join with no shared attributes keeps everything unless the
            # other side is empty (PostgreSQL behaves the same way).
            if other._length:
                result = self._take(name, np.arange(self._length, dtype=CODE_DTYPE))
            else:
                result = self._take(name, np.empty(0, dtype=CODE_DTYPE))
            if counter is not None:
                counter.record(read, len(result))
            return result
        if self._length == 0 or other._length == 0:
            result = self._take(name, np.empty(0, dtype=CODE_DTYPE))
            if counter is not None:
                counter.record(read, 0)
            return result
        own_keys, other_keys = self._key_columns(other, shared)
        left_key, right_key = _pack_pair(own_keys, other_keys)
        keep = np.flatnonzero(np.isin(left_key, right_key))
        result = self._take(name, keep)
        if counter is not None:
            counter.record(read, len(keep))
        return result

    # -- aggregation -------------------------------------------------------------------

    def aggregate(self, function: str, attribute: str) -> Optional[Value]:
        """``MIN``/``MAX``/``COUNT`` over a column (``None`` on empty input)."""
        if function.upper() == "COUNT":
            return self._length
        if not self._length:
            return None
        codes = np.unique(self._columns[self.attribute_index(attribute)])
        values = self._interner.decode_column(codes)
        if function.upper() == "MIN":
            return min(values)
        if function.upper() == "MAX":
            return max(values)
        raise ValueError(f"unsupported aggregate {function!r}")

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, |rows|={self._length}, attrs={self.attributes})"
