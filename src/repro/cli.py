"""Command-line interface.

The CLI mirrors how the published decomposition tools (detkdecomp,
BalancedGo, the paper's own prototype) are driven: hypergraphs come in as
HyperBench-format text files, widths and decompositions go out as text.

Usage (also available as ``python -m repro``)::

    python -m repro width QUERY.hg --measure shw -k 3
    python -m repro decompose QUERY.hg -k 2 --concov --timeout 30
    python -m repro enumerate QUERY.hg -k 2 --limit 5 --max-work 1000000
    python -m repro stats QUERY.hg
    python -m repro query --sql "SELECT MIN(t_year) FROM title, movie_companies ..."
    python -m repro query --name jl04 --explain
    python -m repro experiment q_hto3 --limit 5
    python -m repro table1
    python -m repro batch --queries q_hto q_hto2 --timeout 30 --workers 2
    python -m repro workloads build --scale 10
    python -m repro workloads list --strict
    python -m repro workloads clean
    python -m repro cache list
    python -m repro cache clean

Every solving verb builds one canonical :class:`repro.core.solve.SolveRequest`
and routes it through :func:`repro.core.solve.execute` — the same front
door the experiment harness and the supervised batch runtime use.  Solved
decompositions are persisted in an on-disk cache keyed by the hypergraph's
canonical (isomorphism-invariant) fingerprint, so repeated shapes across
runs are served from disk (after re-certification) instead of re-solved;
``repro cache list``/``clean`` inspect and reset that cache, and
``REPRO_CTD_CACHE``/``REPRO_CTD_CACHE_OFF`` relocate or disable it.

Resource governance: the solving verbs (``width``, ``decompose``,
``enumerate``, ``experiment``) accept ``--timeout SECONDS`` and
``--max-work N``.  A governed run prints a one-line ``outcome:`` status
and maps it to the exit code: 0 for ``complete``, 124 for ``deadline``
(as ``timeout(1)``), 125 for ``budget_exhausted``, 130 for
``interrupted`` (Ctrl-C).  Results printed by a non-complete run are
anytime results: valid as far as they go, not necessarily the full
answer.

``batch`` runs a set of benchmark queries under the supervised batch
runtime (worker processes, hard timeouts, retries with a degradation
ladder, independent result certification) with a durable checkpoint
ledger: re-running the same batch resumes, skipping certified completed
tasks.  Exit codes: 0 all ok, 1 some task failed, 130 interrupted.

Expected user-level failures (missing files, unknown names, a corrupt
ledger) are reported as a one-line ``error: ...`` with exit code 2 via
the :class:`repro.runtime.errors.ReproError` taxonomy — tracebacks are
reserved for actual bugs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.hypergraph.io import parse_hyperbench
from repro.hypergraph.stats import hypergraph_statistics


def _load_hypergraph(path: str):
    from repro.runtime.errors import UserError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return parse_hyperbench(handle.read())
    except OSError as exc:
        raise UserError(f"cannot read hypergraph file {path!r}: {exc}") from exc


# -- resource governance ---------------------------------------------------


def _budget_arguments(parser) -> None:
    """Attach ``--timeout`` / ``--max-work`` to a governed verb."""
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; stopping yields the anytime result and exit code 124",
    )
    parser.add_argument(
        "--max-work",
        type=int,
        default=None,
        dest="max_work",
        metavar="N",
        help="work-unit cap; stopping yields the anytime result and exit code 125",
    )


def _make_budget(args):
    """A Budget from the verb's --timeout/--max-work flags, or ``None``."""
    if args.timeout is None and args.max_work is None:
        return None
    from repro.runtime.budget import Budget

    return Budget(deadline=args.timeout, max_work=args.max_work)


def _finish(budget, out, ok: int = 0) -> int:
    """Print the outcome line of a governed run and pick the exit code.

    Ungoverned runs stay silent and keep the handler's own code; governed
    runs report their :class:`SolveOutcome` and map any early stop to the
    status' distinct exit code.
    """
    if budget is None:
        return ok
    outcome = budget.outcome()
    print(outcome.describe(), file=out)
    return outcome.exit_code if outcome.partial else ok


def _print_decomposition(decomposition, out) -> None:
    def walk(node, depth=0):
        bag = ", ".join(sorted(map(str, decomposition.bag(node))))
        print("  " * depth + f"[{bag}]", file=out)
        for child in node.children:
            walk(child, depth + 1)

    walk(decomposition.tree.root)


def _cmd_width(args, out) -> int:
    hypergraph = _load_hypergraph(args.hypergraph)
    if args.measure == "shw":
        from repro.core.solve import SolveRequest, execute

        budget = _make_budget(args)
        result = execute(
            SolveRequest(
                hypergraph=hypergraph,
                mode="soft-width",
                width=args.max_k,
                iterations=args.iterations,
            ),
            budget=budget,
        )
        if not result.decided:
            if budget is not None and budget.exhausted:
                print("width undetermined: run stopped early", file=out)
                return _finish(budget, out)
            print(f"no soft decomposition of width <= {args.max_k}", file=out)
            return 1
        print(f"{args.measure} = {result.width}", file=out)
        return _finish(budget, out)
    if args.measure == "hw":
        from repro.baselines.detkdecomp import hypertree_width

        width = hypertree_width(hypergraph, max_k=args.max_k)
    elif args.measure == "ghw":
        from repro.baselines.ghw import generalized_hypertree_width

        width, _ = generalized_hypertree_width(hypergraph, max_k=args.max_k)
    else:
        from repro.baselines.treewidth import treewidth_min_fill

        width = treewidth_min_fill(hypergraph)
    if args.timeout is not None or args.max_work is not None:
        print(
            f"note: --timeout/--max-work only govern --measure shw; "
            f"{args.measure} ran unbounded",
            file=out,
        )
    print(f"{args.measure} = {width}", file=out)
    return 0


def _cmd_decompose(args, out) -> int:
    hypergraph = _load_hypergraph(args.hypergraph)
    from repro.core.solve import SolveRequest, execute

    budget = _make_budget(args)
    # Unconstrained: Algorithm 1's incremental fixpoint (mode "decide");
    # --concov routes through the constrained solver (mode "optimal").
    result = execute(
        SolveRequest(
            hypergraph=hypergraph,
            mode="optimal" if args.concov else "decide",
            width=args.width,
            constraint="concov" if args.concov else None,
        ),
        budget=budget,
    )
    if result.decomposition is None:
        label = "ConCov-shw" if args.concov else "shw"
        qualifier = (
            "run stopped early, result inconclusive: "
            if budget is not None and budget.exhausted
            else "no decomposition of "
        )
        print(f"{qualifier}{label} width <= {args.width}", file=out)
        return _finish(budget, out, ok=1)
    _print_decomposition(result.decomposition, out)
    return _finish(budget, out)


def _cmd_enumerate(args, out) -> int:
    hypergraph = _load_hypergraph(args.hypergraph)
    from repro.core.solve import SolveRequest, execute

    budget = _make_budget(args)
    if args.limit < 1:
        print(f"no decomposition of width <= {args.width}", file=out)
        return _finish(budget, out, ok=1)
    result = execute(
        SolveRequest(
            hypergraph=hypergraph,
            mode="enumerate",
            width=args.width,
            constraint="concov" if args.concov else None,
            preference="nodecount",
            limit=args.limit,
        ),
        budget=budget,
    )
    count = 0
    for count, decomposition in enumerate(result.decompositions, start=1):
        print(f"# decomposition {count}", file=out)
        _print_decomposition(decomposition, out)
    if count == 0:
        if budget is not None and budget.exhausted:
            print("run stopped early before the first decomposition", file=out)
        else:
            print(f"no decomposition of width <= {args.width}", file=out)
    return _finish(budget, out, ok=0 if count else 1)


def _cmd_stats(args, out) -> int:
    hypergraph = _load_hypergraph(args.hypergraph)
    for key, value in hypergraph_statistics(hypergraph).items():
        print(f"{key}: {value}", file=out)
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.experiments.harness import QueryExperiment
    from repro.experiments.report import format_figure_rows
    from repro.workloads.registry import benchmark_query

    entry = benchmark_query(args.query)
    budget = _make_budget(args)
    experiment = QueryExperiment.from_benchmark(
        entry, scale=args.scale, seed=args.seed, dump_path=args.dump, budget=budget
    )
    decompositions, elapsed = experiment.ranked_decompositions(limit=args.limit)
    evaluations = experiment.evaluate(decompositions)
    rows = [
        {
            "rank": evaluation.rank,
            "cost_cardinalities": evaluation.cardinality_cost,
            "cost_estimates": evaluation.estimate_cost,
            "work": evaluation.work,
            "result": evaluation.metrics.result,
        }
        for evaluation in evaluations
    ]
    baseline = experiment.baseline()
    text = format_figure_rows(
        f"{entry.name}: top-{len(rows)} ConCov-shw {entry.width} decompositions "
        f"(enumerated in {elapsed * 1000:.1f} ms)",
        rows,
        ["rank", "cost_cardinalities", "cost_estimates", "work", "result"],
        ["", f"Baseline: work={baseline.work}, result={baseline.result}"],
    )
    print(text, file=out)
    return _finish(budget, out)


def _cmd_query(args, out) -> int:
    from repro.db.frontdoor import plan_query, run_query
    from repro.runtime.errors import UserError

    selected = [s for s in (args.sql, args.file, args.name) if s]
    if len(selected) != 1:
        raise UserError("exactly one of --sql, --file or --name is required")

    if args.name is not None:
        from repro.workloads.registry import benchmark_query

        try:
            entry = benchmark_query(args.name)
        except KeyError as exc:
            raise UserError(str(exc.args[0]) if exc.args else str(exc)) from exc
        database, source = entry.load(scale=args.scale, seed=args.seed)
        query_name = args.name
    else:
        from repro.workloads.registry import workload_entry

        if args.sql is not None:
            source = args.sql
        else:
            try:
                with open(args.file, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise UserError(
                    f"cannot read query file {args.file!r}: {exc}"
                ) from exc
        try:
            workload = workload_entry(args.workload)
        except KeyError as exc:
            raise UserError(str(exc.args[0]) if exc.args else str(exc)) from exc
        database = workload.load(scale=args.scale, seed=args.seed)
        query_name = "query"

    cache = None if args.no_cache else (args.cache or "auto")
    budget = _make_budget(args)
    if args.explain:
        plan = plan_query(
            source,
            database,
            width=args.width,
            name=query_name,
            cache=cache,
            budget=budget,
        )
        print(plan.describe(), file=out)
        return _finish(budget, out, ok=0 if plan.decomposition is not None else 1)

    result = run_query(
        source,
        database,
        width=args.width,
        name=query_name,
        cache=cache,
        budget=budget,
    )
    if result.rows is None:
        print("result: none (run stopped early)", file=out)
    elif result.plan.query.aggregate is not None:
        print(f"{result.columns[0]} = {result.value}", file=out)
    else:
        print("\t".join(result.columns), file=out)
        for row in result.rows:
            print("\t".join(str(value) for value in row), file=out)
        print(f"{len(result.rows)} row(s)", file=out)
    print(
        f"width={result.width} provenance={result.provenance} "
        f"solve_work={result.solve_work} execution_work={result.execution_work}",
        file=out,
    )
    return _finish(budget, out)


def _cmd_table1(args, out) -> int:
    from repro.experiments.figures import render_table1

    print(render_table1(scale=args.scale), file=out)
    return 0


# -- supervised batch runtime ----------------------------------------------


def default_ledger_path(tasks) -> str:
    """A deterministic per-batch ledger path under ``workloads/.batches``.

    Derived from the task fingerprints, so the same batch invocation maps
    to the same ledger file — which is what makes bare re-runs resume.
    """
    import hashlib

    from repro.runtime.checkpoint import task_fingerprint

    digest = hashlib.sha256(
        ",".join(sorted(task_fingerprint(task) for task in tasks)).encode("utf-8")
    ).hexdigest()[:12]
    return os.path.join("workloads", ".batches", f"batch-{digest}.jsonl")


def _cmd_batch(args, out) -> int:
    from repro.experiments.harness import (
        BatchCertifier,
        BatchSolveCache,
        batch_task_specs,
    )
    from repro.runtime.checkpoint import BatchLedger
    from repro.runtime.errors import UserError
    from repro.runtime.supervisor import RetryPolicy, Supervisor

    try:
        tasks = batch_task_specs(
            queries=args.queries or None,
            scale=args.scale,
            seed=args.seed,
            deadline=args.timeout,
            max_work=args.max_work,
            shards=args.shards,
        )
    except KeyError as exc:
        raise UserError(str(exc.args[0]) if exc.args else str(exc)) from exc
    ledger = None
    ledger_path = None
    if not args.no_ledger:
        ledger_path = args.ledger or default_ledger_path(tasks)
        if args.fresh and os.path.exists(ledger_path):
            os.unlink(ledger_path)
        ledger = BatchLedger(ledger_path)
    supervisor = Supervisor(
        certifier=BatchCertifier(),
        max_workers=args.workers,
        hard_timeout=args.task_timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        # Pre-spawn probe into the persistent decomposition cache: a
        # certified hit satisfies a task without a worker process.
        cache_lookup=BatchSolveCache().lookup,
    )
    report = supervisor.run(tasks, ledger=ledger)
    print(report.describe(), file=out)
    if ledger_path is not None:
        print(f"ledger: {ledger_path}", file=out)
    return report.exit_code


def _cmd_throughput(args, out) -> int:
    from repro.experiments.harness import batch_task_specs
    from repro.runtime.errors import UserError
    from repro.runtime.scheduler import BatchSolvePlan, run_plan

    try:
        tasks = batch_task_specs(
            queries=args.queries or None,
            scale=args.scale,
            seed=args.seed,
            deadline=args.timeout,
            max_work=args.max_work,
            shards=args.shards,
        )
    except KeyError as exc:
        raise UserError(str(exc.args[0]) if exc.args else str(exc)) from exc
    if args.repeat > 1:
        # Replicated query sets model a workload that asks the same
        # shapes repeatedly — the scheduler answers the duplicates by
        # certified fan-out instead of re-solving.
        tasks = [dict(task) for _ in range(args.repeat) for task in tasks]
    plan = BatchSolvePlan.from_tasks(tasks)
    print(plan.describe(), file=out)
    report = run_plan(
        plan,
        workers=args.workers,
        shards=args.shards,
        cache=None if args.no_cache else "auto",
    )
    summary = report.summary()
    for key in sorted(summary):
        print(f"{key}: {summary[key]}", file=out)
    failures = [
        r for r in report.results if not (isinstance(r, dict) and r.get("ok"))
    ]
    if failures:
        print(f"failed queries: {len(failures)}", file=out)
        return 1
    return 0


# -- workload snapshot management ------------------------------------------


def _workload_cache(args):
    from repro.workloads.snapshot import SnapshotCache

    return SnapshotCache(args.cache)


def _cmd_workloads_build(args, out) -> int:
    import time

    from repro.workloads.registry import workload_entries, workload_entry

    if args.workload == "all":
        entries = list(workload_entries().values())
    else:
        entries = [workload_entry(args.workload)]
    cache = _workload_cache(args)
    for entry in entries:
        path = entry.snapshot_path(cache, args.scale, args.seed)
        if args.force and os.path.exists(path):
            os.unlink(path)
        start = time.perf_counter()
        database, hit = entry.load_with_status(
            scale=args.scale, seed=args.seed, cache=cache
        )
        elapsed = time.perf_counter() - start
        status = "snapshot hit" if hit else "cold build"
        print(
            f"{entry.name}: scale={args.scale:g} rows={database.total_rows()} "
            f"{status} in {elapsed * 1000:.1f} ms ({path})",
            file=out,
        )
    return 0


def _cmd_workloads_list(args, out) -> int:
    from repro.workloads.registry import workload_entries

    cache = _workload_cache(args)
    infos = cache.entries()
    stale_locks = cache.stale_locks()
    if not infos and not cache.quarantined() and not stale_locks:
        print(f"no snapshots under {cache.directory}", file=out)
        return 0
    current_hashes = {
        name: entry.schema_hash for name, entry in workload_entries().items()
    }
    stale_count = 0
    for info in infos:
        outdated_schema = (
            info.workload in current_hashes
            and info.schema_hash != current_hashes[info.workload]
        )
        stale = info.stale or outdated_schema
        stale_count += stale
        reason = ""
        if info.stale:
            reason = f"  STALE (format v{info.version}, current v{_snapshot_version()})"
        elif outdated_schema:
            reason = "  STALE (schema/generator changed)"
        print(
            f"{info.workload:<10} scale={info.scale:<6g} seed={info.seed} "
            f"rows={info.total_rows:<8} {info.size_bytes / 1024:.0f} KiB  "
            f"{os.path.basename(info.path)}{reason}",
            file=out,
        )
    quarantined = cache.quarantined()
    for path in quarantined:
        print(f"quarantined: {os.path.basename(path)}", file=out)
    for path in stale_locks:
        print(f"stale lock: {os.path.basename(path)}", file=out)
    print(
        f"{len(infos)} snapshot(s), {stale_count} stale, "
        f"{len(quarantined)} quarantined"
        + (f", {len(stale_locks)} stale lock(s)" if stale_locks else ""),
        file=out,
    )
    if args.strict and (stale_count or quarantined or stale_locks):
        return 1
    return 0


def _snapshot_version() -> int:
    from repro.workloads.snapshot import SNAPSHOT_VERSION

    return SNAPSHOT_VERSION


def _cmd_workloads_clean(args, out) -> int:
    cache = _workload_cache(args)
    report = cache.clean()
    print(
        f"removed {report.total} file(s) from {cache.directory} "
        f"({report.snapshots} snapshot(s), {report.quarantined} quarantined, "
        f"{report.temp} temp, {report.locks} lock(s))",
        file=out,
    )
    return 0


# -- decomposition cache management ------------------------------------------


def _ctd_cache(args):
    from repro.core.cache import DecompositionCache

    return DecompositionCache(args.cache or "")


def _summarise_kind(kind: str) -> str:
    """One compact human-readable token for a request-kind JSON string."""
    import json

    try:
        spec = json.loads(kind)
    except (TypeError, ValueError):
        return "unreadable"
    parts = [f"mode={spec.get('mode')}", f"k={spec.get('width')}"]
    if spec.get("iterations"):
        parts.append(f"i={spec['iterations']}")
    if spec.get("constraint"):
        parts.append(str(spec["constraint"]))
    if spec.get("preference"):
        parts.append(str(spec["preference"]))
    if spec.get("limit", 1) != 1:
        parts.append(f"limit={spec['limit']}")
    if spec.get("data_key"):
        parts.append(f"data={spec['data_key']}")
    return " ".join(parts)


def _cmd_cache_list(args, out) -> int:
    cache = _ctd_cache(args)
    infos = cache.entries()
    quarantined = cache.quarantined()
    if not infos and not quarantined:
        print(f"no cache entries under {cache.directory}", file=out)
        return 0
    for info in infos:
        if not info.readable:
            print(
                f"{os.path.basename(info.path)}  UNREADABLE "
                f"({info.size_bytes} B)",
                file=out,
            )
            continue
        print(
            f"{info.fingerprint[:16]}  {_summarise_kind(info.kind):<40} "
            f"width={info.width} decompositions={info.decompositions} "
            f"{info.size_bytes / 1024:.1f} KiB",
            file=out,
        )
    for path in quarantined:
        print(f"quarantined: {os.path.basename(path)}", file=out)
    print(
        f"{len(infos)} entr{'y' if len(infos) == 1 else 'ies'}, "
        f"{len(quarantined)} quarantined, "
        f"{cache.size_bytes() / 1024:.1f} KiB total",
        file=out,
    )
    return 0


def _cmd_cache_clean(args, out) -> int:
    cache = _ctd_cache(args)
    removed = cache.clean()
    print(f"removed {removed} cache file(s) from {cache.directory}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Soft and constrained hypertree decompositions (PODS 2025 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    width = subparsers.add_parser("width", help="compute a width measure of a hypergraph")
    width.add_argument("hypergraph", help="HyperBench-format hypergraph file")
    width.add_argument("--measure", choices=["shw", "hw", "ghw", "tw"], default="shw")
    width.add_argument("-k", "--max-k", type=int, default=None, dest="max_k")
    width.add_argument("--iterations", type=int, default=0, help="shw_i iteration level")
    _budget_arguments(width)
    width.set_defaults(handler=_cmd_width)

    decompose = subparsers.add_parser("decompose", help="compute a soft decomposition")
    decompose.add_argument("hypergraph")
    decompose.add_argument("-k", "--width", type=int, required=True)
    decompose.add_argument("--concov", action="store_true", help="require connected covers")
    _budget_arguments(decompose)
    decompose.set_defaults(handler=_cmd_decompose)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate ranked soft decompositions"
    )
    enumerate_parser.add_argument("hypergraph")
    enumerate_parser.add_argument("-k", "--width", type=int, required=True)
    enumerate_parser.add_argument(
        "--limit", type=int, default=5, help="how many decompositions to print"
    )
    enumerate_parser.add_argument(
        "--concov", action="store_true", help="require connected covers"
    )
    _budget_arguments(enumerate_parser)
    enumerate_parser.set_defaults(handler=_cmd_enumerate)

    stats = subparsers.add_parser("stats", help="structural statistics of a hypergraph")
    stats.add_argument("hypergraph")
    stats.set_defaults(handler=_cmd_stats)

    query = subparsers.add_parser(
        "query",
        help="run a SQL query through the front door: parse, cached CTD, Yannakakis",
    )
    query.add_argument("--sql", default=None, metavar="TEXT", help="SQL query text")
    query.add_argument(
        "--file", default=None, metavar="PATH", help="file containing the SQL query"
    )
    query.add_argument(
        "--name",
        default=None,
        metavar="QUERY",
        help="a registered benchmark query (q_ds .. q_lb, jl01 .. jl10)",
    )
    query.add_argument(
        "--workload",
        default="joblite",
        metavar="DATASET",
        help="dataset --sql/--file queries run against (default: joblite)",
    )
    query.add_argument("--scale", type=float, default=1.0)
    query.add_argument(
        "--seed", type=int, default=None, help="workload seed (default: per-workload)"
    )
    query.add_argument(
        "--width",
        type=int,
        default=None,
        metavar="K",
        help="decompose at exactly width K (default: least-width search)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the decomposition and execution plan without executing",
    )
    query.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="decomposition cache directory (default: $REPRO_CTD_CACHE)",
    )
    query.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="skip the persistent decomposition cache",
    )
    _budget_arguments(query)
    query.set_defaults(handler=_cmd_query)

    experiment = subparsers.add_parser(
        "experiment", help="run one benchmark query end to end"
    )
    experiment.add_argument(
        "query",
        choices=["q_ds", "q_hto", "q_hto2", "q_hto3", "q_hto4", "q_lb"]
        + [f"jl{i:02d}" for i in range(1, 11)],
    )
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--limit", type=int, default=5)
    experiment.add_argument(
        "--seed", type=int, default=None, help="workload seed (default: per-workload)"
    )
    experiment.add_argument(
        "--dump",
        default=None,
        metavar="DIR",
        help="load real dump files from DIR instead of generating",
    )
    _budget_arguments(experiment)
    experiment.set_defaults(handler=_cmd_experiment)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--scale", type=float, default=0.5)
    table1.set_defaults(handler=_cmd_table1)

    batch = subparsers.add_parser(
        "batch",
        help="run benchmark queries under the supervised batch runtime",
    )
    batch.add_argument(
        "--queries",
        nargs="*",
        default=None,
        metavar="QUERY",
        help="benchmark query names (default: all six)",
    )
    batch.add_argument("--scale", type=float, default=0.5)
    batch.add_argument(
        "--seed", type=int, default=None, help="workload seed (default: per-workload)"
    )
    _budget_arguments(batch)
    batch.add_argument(
        "--task-timeout",
        type=float,
        default=300.0,
        dest="task_timeout",
        metavar="SECONDS",
        help="hard wall-clock allowance per attempt; overrunning workers are killed",
    )
    batch.add_argument(
        "--workers", type=int, default=1, help="concurrent worker processes"
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=1,
        help="intra-solve shard count per worker (pre-fixpoint stages); "
        "non-semantic, so resumed ledgers still match",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=2,
        help="attempts per degradation level before descending",
    )
    batch.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="checkpoint ledger path (default: derived, under workloads/.batches)",
    )
    batch.add_argument(
        "--no-ledger",
        action="store_true",
        dest="no_ledger",
        help="run without a checkpoint ledger (no resume)",
    )
    batch.add_argument(
        "--fresh",
        action="store_true",
        help="delete an existing ledger instead of resuming from it",
    )
    batch.set_defaults(handler=_cmd_batch)

    throughput = subparsers.add_parser(
        "throughput",
        help="multi-query batch throughput via the similarity scheduler",
    )
    throughput.add_argument(
        "--queries",
        nargs="*",
        default=None,
        metavar="QUERY",
        help="benchmark query names (default: all six)",
    )
    throughput.add_argument("--scale", type=float, default=0.5)
    throughput.add_argument(
        "--seed", type=int, default=None, help="workload seed (default: per-workload)"
    )
    _budget_arguments(throughput)
    throughput.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for representative solves (0/1 = inline)",
    )
    throughput.add_argument(
        "--shards",
        type=int,
        default=1,
        help="intra-solve shard count (pre-fixpoint stages)",
    )
    throughput.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replicate the query set N times (duplicates answered by fan-out)",
    )
    throughput.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="skip the persistent decomposition cache",
    )
    throughput.set_defaults(handler=_cmd_throughput)

    workloads = subparsers.add_parser(
        "workloads", help="manage workload snapshot caches"
    )
    workload_commands = workloads.add_subparsers(dest="workloads_command", required=True)

    build = workload_commands.add_parser(
        "build", help="generate workloads and store snapshots"
    )
    build.add_argument(
        "--workload",
        choices=["all", "tpcds", "hetionet", "lsqb", "joblite"],
        default="all",
    )
    build.add_argument("--scale", type=float, default=10.0)
    build.add_argument("--seed", type=int, default=None)
    build.add_argument("--cache", default=None, help="cache directory")
    build.add_argument(
        "--force", action="store_true", help="rebuild even when a snapshot exists"
    )
    build.set_defaults(handler=_cmd_workloads_build)

    list_parser = workload_commands.add_parser("list", help="list cached snapshots")
    list_parser.add_argument("--cache", default=None)
    list_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when stale/quarantined snapshots or stale locks are present",
    )
    list_parser.set_defaults(handler=_cmd_workloads_list)

    clean = workload_commands.add_parser(
        "clean",
        help="delete cached snapshots, quarantined/temp leftovers and lock files",
    )
    clean.add_argument("--cache", default=None)
    clean.set_defaults(handler=_cmd_workloads_clean)

    cache_parser = subparsers.add_parser(
        "cache", help="manage the persistent decomposition cache"
    )
    cache_commands = cache_parser.add_subparsers(dest="cache_command", required=True)

    cache_list = cache_commands.add_parser("list", help="list cached decompositions")
    cache_list.add_argument(
        "--cache", default=None, help="cache directory (default: $REPRO_CTD_CACHE)"
    )
    cache_list.set_defaults(handler=_cmd_cache_list)

    cache_clean = cache_commands.add_parser(
        "clean", help="delete cached decompositions and quarantined entries"
    )
    cache_clean.add_argument(
        "--cache", default=None, help="cache directory (default: $REPRO_CTD_CACHE)"
    )
    cache_clean.set_defaults(handler=_cmd_cache_clean)

    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code.

    A Ctrl-C that escapes the governed solvers (e.g. during parsing or an
    ungoverned verb) still exits with the conventional 130 instead of a
    traceback; governed verbs convert it to an ``interrupted`` outcome with
    their partial results before it ever reaches here.
    """
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.runtime.errors import ReproError

    try:
        return args.handler(args, out)
    except ReproError as exc:
        # The expected-failure taxonomy: one structured line, typed exit
        # code, no traceback.
        print(f"error: {exc}", file=out)
        return exc.exit_code
    except FileNotFoundError as exc:
        # A missing input file at the CLI boundary is a user error even
        # when it surfaces from deep inside a loader.
        print(f"error: file not found: {exc.filename or exc}", file=out)
        return 2
    except KeyboardInterrupt:
        from repro.runtime.budget import EXIT_CODES, STATUS_INTERRUPTED

        print("interrupted", file=out)
        return EXIT_CODES[STATUS_INTERRUPTED]


if __name__ == "__main__":
    raise SystemExit(main())
