"""Synthetic stand-ins for the paper's benchmark datasets.

The paper evaluates on TPC-DS (scale factor 10), the Hetionet biomedical
knowledge graph and LSQB (scale factor 10).  None of these datasets are
shipped here; instead each module generates synthetic data with the same
schema and the same *structural* properties that make the paper's queries
interesting (cyclic join patterns, skewed non-key joins, hub-heavy graphs),
at any scale factor (generation is deterministic, seeded, chunked numpy —
see :mod:`repro.workloads.ingest`).  The SQL text of the six benchmark
queries is reproduced verbatim from Appendix D.2.

Large builds are cached on disk as versioned ``.npz`` snapshots
(:mod:`repro.workloads.snapshot`); :mod:`repro.workloads.registry` is the
front door: :func:`workload_entries` for the datasets (snapshot-aware
loading, real dump files), :func:`benchmark_queries` for the six paper
queries.
"""

from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds, QDS_SQL
from repro.workloads.hetionet import (
    build_hetionet_database,
    hetionet_query,
    HETIONET_QUERY_SQL,
)
from repro.workloads.lsqb import build_lsqb_database, lsqb_query_qlb, QLB_SQL
from repro.workloads.registry import (
    BenchmarkQuery,
    WorkloadEntry,
    benchmark_queries,
    benchmark_query,
    workload_entries,
    workload_entry,
)
from repro.workloads.snapshot import SnapshotCache

__all__ = [
    "build_tpcds_database",
    "tpcds_query_qds",
    "QDS_SQL",
    "build_hetionet_database",
    "hetionet_query",
    "HETIONET_QUERY_SQL",
    "build_lsqb_database",
    "lsqb_query_qlb",
    "QLB_SQL",
    "benchmark_queries",
    "benchmark_query",
    "BenchmarkQuery",
    "workload_entries",
    "workload_entry",
    "WorkloadEntry",
    "SnapshotCache",
]
