"""A registry of the six benchmark queries of the paper's evaluation.

Table 1 and Figures 5, 6 and 12–17 all range over the same six queries:
``q_ds`` (TPC-DS), ``q_hto`` .. ``q_hto4`` (Hetionet) and ``q_lb`` (LSQB).
The registry bundles each query with its database builder and the width
parameter ``k`` the paper uses for it (2 for all queries except ``q_lb``,
whose connected soft hypertree width is 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds
from repro.workloads.hetionet import build_hetionet_database, hetionet_query
from repro.workloads.lsqb import build_lsqb_database, lsqb_query_qlb


@dataclass
class BenchmarkQuery:
    """One benchmark query together with its data generator and parameters."""

    name: str
    dataset: str
    width: int
    build_database: Callable[..., Database]
    build_query: Callable[[Database], ConjunctiveQuery]

    def load(self, scale: float = 1.0, seed: Optional[int] = None):
        """Build (database, query); the seed defaults to the generator's own."""
        kwargs = {"scale": scale}
        if seed is not None:
            kwargs["seed"] = seed
        database = self.build_database(**kwargs)
        return database, self.build_query(database)


def benchmark_queries() -> List[BenchmarkQuery]:
    """The six queries of the paper's evaluation, in Table 1 order."""
    hetionet_entries = [
        BenchmarkQuery(
            name=name,
            dataset="hetionet",
            width=2,
            build_database=build_hetionet_database,
            build_query=lambda db, _name=name: hetionet_query(db, _name),
        )
        for name in ("q_hto", "q_hto2", "q_hto3", "q_hto4")
    ]
    return [
        BenchmarkQuery(
            name="q_ds",
            dataset="tpcds",
            width=2,
            build_database=build_tpcds_database,
            build_query=tpcds_query_qds,
        ),
        *hetionet_entries,
        BenchmarkQuery(
            name="q_lb",
            dataset="lsqb",
            width=3,
            build_database=build_lsqb_database,
            build_query=lsqb_query_qlb,
        ),
    ]


def benchmark_query(name: str) -> BenchmarkQuery:
    """Look up a benchmark query by name."""
    for entry in benchmark_queries():
        if entry.name == name:
            return entry
    raise KeyError(f"unknown benchmark query {name!r}")
