"""The workload registry: datasets, snapshot-aware loading, benchmark queries.

Two registries live here:

* :func:`workload_entries` — the **datasets** (``tpcds``, ``hetionet``,
  ``lsqb`` from the paper's evaluation, plus the front-door ``joblite``
  suite) as :class:`WorkloadEntry` records with a common
  loader interface: deterministic seeded generation at any scale factor
  (``scale >= 10`` is the paper's SF 10 regime), transparent snapshot
  caching (:mod:`repro.workloads.snapshot`) and loading of *real* dump
  files in place of synthetic generation.
* :func:`benchmark_queries` — the six **queries** of the paper's evaluation
  (Table 1 and Figures 5, 6 and 12–17): ``q_ds`` (TPC-DS), ``q_hto`` ..
  ``q_hto4`` (Hetionet) and ``q_lb`` (LSQB), each bundled with its dataset
  and the width parameter ``k`` the paper uses (2 everywhere except
  ``q_lb``, whose connected soft hypertree width is 3).

Scaling semantics: every generator multiplies its seed-state table sizes
(e.g. 900 web-sales rows, 2200 knows-edges, 450 edges per Hetionet
metaedge) by ``scale`` and clamps to a small minimum, so ``scale=10``
yields roughly 10× the rows of ``scale=1`` with identical schema and
distribution shape.  Seeding: each workload has a fixed default seed (7 /
11 / 23); the same ``(workload, scale, seed)`` triple produces
byte-identical code columns in any process — which is what makes the
snapshot cache sound.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.workloads.ingest import load_table_files
from repro.workloads.snapshot import SnapshotCache, schema_fingerprint
from repro.workloads.tpcds import (
    TPCDS_SCHEMA,
    build_tpcds_database,
    tpcds_query_qds,
)
from repro.workloads.tpcds import GENERATOR_VERSION as _TPCDS_VERSION
from repro.workloads.hetionet import (
    HETIONET_SCHEMA,
    build_hetionet_database,
    hetionet_query,
)
from repro.workloads.hetionet import GENERATOR_VERSION as _HETIONET_VERSION
from repro.workloads.lsqb import (
    LSQB_SCHEMA,
    build_lsqb_database,
    lsqb_query_qlb,
)
from repro.workloads.lsqb import GENERATOR_VERSION as _LSQB_VERSION
from repro.workloads.joblite import (
    JOBLITE_QUERY_WIDTHS,
    JOBLITE_SCHEMA,
    build_joblite_database,
    joblite_query,
)
from repro.workloads.joblite import GENERATOR_VERSION as _JOBLITE_VERSION

#: Snapshot caching in ``cache="auto"`` mode only kicks in at or above this
#: scale factor: tiny test-sized builds are faster to regenerate than to
#: round-trip through disk, and caching them would litter the cache dir.
AUTO_SNAPSHOT_MIN_SCALE = 2.0

#: Environment variable disabling snapshot caching entirely (``auto`` mode).
SNAPSHOT_DISABLE_ENV_VAR = "REPRO_WORKLOAD_SNAPSHOTS_OFF"

#: How a loader call selects snapshot behaviour (see WorkloadEntry.load).
CacheSpec = Union[None, bool, str, SnapshotCache]


@dataclass
class WorkloadEntry:
    """One dataset: schema, deterministic generator, snapshot-aware loader.

    ``schema`` maps every table to ``(attributes, primary_key)`` — it is
    both the generated schema and the expected layout of real dump files.
    ``default_seed`` is the seed the paper-figure pipeline uses; pass
    ``seed`` explicitly for independent replicas.
    """

    name: str
    schema: Dict[str, Tuple[Sequence[str], Optional[str]]]
    generator_version: int
    build_database: Callable[..., Database]
    default_seed: int
    schema_hash: str = field(init=False)

    def __post_init__(self) -> None:
        self.schema_hash = schema_fingerprint(self.schema, self.generator_version)

    # -- building ----------------------------------------------------------

    def build(self, scale: float = 1.0, seed: Optional[int] = None) -> Database:
        """Cold-build the synthetic database (no snapshot involvement)."""
        return self.build_database(scale=scale, seed=self._seed(seed))

    def _seed(self, seed: Optional[int]) -> int:
        return self.default_seed if seed is None else seed

    def snapshot_path(
        self, cache: SnapshotCache, scale: float, seed: Optional[int] = None
    ) -> str:
        """The snapshot file a ``load`` at these parameters reads/writes."""
        return cache.path_for(self.name, scale, self._seed(seed), self.schema_hash)

    def _resolve_cache(
        self, cache: CacheSpec, scale: float
    ) -> Optional[SnapshotCache]:
        if isinstance(cache, SnapshotCache):
            return cache
        if isinstance(cache, str) and cache != "auto":
            return SnapshotCache(cache)
        if cache is True:
            return SnapshotCache()
        if cache is False:
            return None
        # "auto" / None: cache large builds unless explicitly disabled.
        if os.environ.get(SNAPSHOT_DISABLE_ENV_VAR):
            return None
        if scale >= AUTO_SNAPSHOT_MIN_SCALE:
            return SnapshotCache()
        return None

    def load(
        self,
        scale: float = 1.0,
        seed: Optional[int] = None,
        cache: CacheSpec = "auto",
    ) -> Database:
        """The dataset at ``scale``, via the snapshot cache when enabled.

        ``cache`` is ``"auto"`` (cache at ``scale >=``
        :data:`AUTO_SNAPSHOT_MIN_SCALE`, honouring
        ``REPRO_WORKLOAD_SNAPSHOTS_OFF``), ``True``/``False`` (force
        on/off), a cache directory path, or a :class:`SnapshotCache`.
        """
        database, _ = self.load_with_status(scale=scale, seed=seed, cache=cache)
        return database

    def load_with_status(
        self,
        scale: float = 1.0,
        seed: Optional[int] = None,
        cache: CacheSpec = "auto",
    ) -> Tuple[Database, bool]:
        """Like :meth:`load` but also reports whether the snapshot hit."""
        resolved_seed = self._seed(seed)
        snapshot_cache = self._resolve_cache(cache, scale)
        if snapshot_cache is None:
            return self.build(scale=scale, seed=resolved_seed), False
        return snapshot_cache.load_or_build(
            self.name,
            scale,
            resolved_seed,
            self.schema_hash,
            lambda: self.build(scale=scale, seed=resolved_seed),
        )

    def load_dump(self, path: str) -> Database:
        """Load real dump files (one delimited file per table) from ``path``.

        The files must follow :attr:`schema` (see
        :func:`repro.workloads.ingest.load_table_files`); this is how the
        harness runs against actual LSQB / Hetionet exports instead of the
        synthetic stand-ins.
        """
        return load_table_files(Database(), path, self.schema)


def workload_entries() -> Dict[str, WorkloadEntry]:
    """The registered datasets, by name (paper evaluation + JOB-lite)."""
    return {
        "tpcds": WorkloadEntry(
            name="tpcds",
            schema=TPCDS_SCHEMA,
            generator_version=_TPCDS_VERSION,
            build_database=build_tpcds_database,
            default_seed=7,
        ),
        "hetionet": WorkloadEntry(
            name="hetionet",
            schema=HETIONET_SCHEMA,
            generator_version=_HETIONET_VERSION,
            build_database=build_hetionet_database,
            default_seed=11,
        ),
        "lsqb": WorkloadEntry(
            name="lsqb",
            schema=LSQB_SCHEMA,
            generator_version=_LSQB_VERSION,
            build_database=build_lsqb_database,
            default_seed=23,
        ),
        "joblite": WorkloadEntry(
            name="joblite",
            schema=JOBLITE_SCHEMA,
            generator_version=_JOBLITE_VERSION,
            build_database=build_joblite_database,
            default_seed=17,
        ),
    }


def workload_entry(name: str) -> WorkloadEntry:
    """Look up a dataset by name (``tpcds`` / ``hetionet`` / ``lsqb``)."""
    entries = workload_entries()
    try:
        return entries[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(entries)}"
        ) from exc


@dataclass
class BenchmarkQuery:
    """One benchmark query together with its dataset and parameters."""

    name: str
    dataset: str
    width: int
    build_query: Callable[[Database], ConjunctiveQuery]

    @property
    def workload(self) -> WorkloadEntry:
        return workload_entry(self.dataset)

    def load(
        self,
        scale: float = 1.0,
        seed: Optional[int] = None,
        cache: CacheSpec = "auto",
        dump_path: Optional[str] = None,
    ):
        """Build ``(database, query)`` through the workload loader.

        ``dump_path`` swaps the synthetic generator for real dump files;
        otherwise the dataset is generated (snapshot-cached per ``cache``,
        see :meth:`WorkloadEntry.load`) with the workload's default seed
        unless ``seed`` is given.
        """
        if dump_path is not None:
            database = self.workload.load_dump(dump_path)
        else:
            database = self.workload.load(scale=scale, seed=seed, cache=cache)
        return database, self.build_query(database)


def benchmark_queries() -> List[BenchmarkQuery]:
    """The six queries of the paper's evaluation, in Table 1 order."""
    hetionet_entries = [
        BenchmarkQuery(
            name=name,
            dataset="hetionet",
            width=2,
            build_query=lambda db, _name=name: hetionet_query(db, _name),
        )
        for name in ("q_hto", "q_hto2", "q_hto3", "q_hto4")
    ]
    return [
        BenchmarkQuery(
            name="q_ds",
            dataset="tpcds",
            width=2,
            build_query=tpcds_query_qds,
        ),
        *hetionet_entries,
        BenchmarkQuery(
            name="q_lb",
            dataset="lsqb",
            width=3,
            build_query=lsqb_query_qlb,
        ),
    ]


def joblite_benchmark_queries() -> List[BenchmarkQuery]:
    """The ten JOB-lite queries (``jl01`` .. ``jl10``) as benchmark entries.

    Kept out of :func:`benchmark_queries` — that list is pinned to the six
    queries of the paper's Table 1 — but resolvable through
    :func:`benchmark_query`, so the experiment / batch / throughput layers
    can schedule JOB-lite by name exactly like the paper queries.
    """
    return [
        BenchmarkQuery(
            name=name,
            dataset="joblite",
            width=width,
            build_query=lambda db, _name=name: joblite_query(db, _name),
        )
        for name, width in sorted(JOBLITE_QUERY_WIDTHS.items())
    ]


def benchmark_query(name: str) -> BenchmarkQuery:
    """Look up a benchmark query by name (paper Table 1 or JOB-lite)."""
    for entry in benchmark_queries() + joblite_benchmark_queries():
        if entry.name == name:
            return entry
    raise KeyError(f"unknown benchmark query {name!r}")
