"""On-disk snapshot cache for generated workload databases.

Building a workload at a large scale factor costs a full generation pass
(RNG streams, edge dedup, dictionary encoding).  All of that is a pure
function of ``(workload, scale, seed, schema)``, so the result is cached as
a versioned ``.npz`` dump of the *already encoded* state: one ``int64``
code array per column plus the interner's value table.  A cache hit
(:meth:`SnapshotCache.load`) bypasses generation entirely — it is a raw
``np.load`` plus metadata parsing; the interner's value→code dictionary is
rebuilt lazily (:meth:`repro.db.interner.ValueInterner.from_values`) only
if somebody interns a new value later.

Keying and staleness
--------------------

Snapshots are keyed by ``(workload, scale, seed, schema_hash)``; the hash
(:func:`schema_fingerprint`) covers the table schemas *and* the generator
version, so changing a generator invalidates its old snapshots by key.  The
file format itself carries :data:`SNAPSHOT_VERSION`; loading a snapshot
written by a different format version raises :class:`StaleSnapshotError`,
which :meth:`SnapshotCache.load_or_build` treats as a miss (the snapshot is
rebuilt and overwritten) and ``repro workloads list --strict`` treats as an
error (CI fails on stale files instead of silently regenerating forever).

The default cache directory is ``workloads/.cache`` under the current
working directory (gitignored), overridable with the
``REPRO_WORKLOAD_CACHE`` environment variable or per call.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.interner import CODE_DTYPE, ValueInterner
from repro.db.relation import Relation
from repro.runtime.faults import maybe_fail

logger = logging.getLogger(__name__)

#: Version of the on-disk format.  Bump on any layout change; old files
#: then raise :class:`StaleSnapshotError` instead of loading garbage.
SNAPSHOT_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_ENV_VAR = "REPRO_WORKLOAD_CACHE"

_META_KEY = "__meta__"
_VALUES_KEY = "__interner_values__"

#: Suffix appended to a snapshot file when it is quarantined: the cache
#: found it corrupt or stale and moved it aside so the next build cannot
#: trip over it again.  ``repro workloads clean`` deletes them.
QUARANTINE_SUFFIX = ".corrupt"


class StaleSnapshotError(RuntimeError):
    """A snapshot file exists but cannot be used: written by an
    incompatible format version, truncated, or not a snapshot at all.
    :meth:`SnapshotCache.load_or_build` treats it as a cache miss and
    rebuilds; ``repro workloads list --strict`` treats it as an error."""


def default_cache_dir() -> str:
    """``$REPRO_WORKLOAD_CACHE`` or ``workloads/.cache`` under the cwd."""
    return os.environ.get(CACHE_ENV_VAR) or os.path.join("workloads", ".cache")


def schema_fingerprint(
    schema: Dict[str, Tuple[Sequence[str], Optional[str]]],
    generator_version: int,
) -> str:
    """A short stable hash of a workload's schema + generator version."""
    canonical = json.dumps(
        {
            "generator_version": generator_version,
            "tables": {
                name: {"attributes": list(attributes), "primary_key": primary_key}
                for name, (attributes, primary_key) in sorted(schema.items())
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class CleanReport:
    """Per-category counts of what :meth:`SnapshotCache.clean` removed.

    ``snapshots`` are ``.npz`` files (readable or not), ``quarantined``
    the ``.corrupt`` files, ``temp`` the ``.npz.tmp*`` leftovers of
    writes killed mid-flight, and ``locks`` the ``.lock`` files of build
    lockers that never got to clean up (crashed or SIGKILLed builders).
    """

    snapshots: int = 0
    quarantined: int = 0
    temp: int = 0
    locks: int = 0

    @property
    def total(self) -> int:
        return self.snapshots + self.quarantined + self.temp + self.locks


@dataclass
class SnapshotInfo:
    """One snapshot file as reported by :meth:`SnapshotCache.entries`."""

    path: str
    workload: str
    scale: float
    seed: Optional[int]
    schema_hash: str
    version: int
    total_rows: int
    size_bytes: int

    @property
    def stale(self) -> bool:
        """Written by a different format version than this code understands."""
        return self.version != SNAPSHOT_VERSION


def _scale_token(scale: float) -> str:
    return format(float(scale), "g").replace(".", "_")


def snapshot_filename(
    workload: str, scale: float, seed: Optional[int], schema_hash: str
) -> str:
    """The cache filename for a ``(workload, scale, seed, schema_hash)`` key."""
    return f"{workload}-scale{_scale_token(scale)}-seed{seed}-{schema_hash}.npz"


# -- serialisation ---------------------------------------------------------


def _encode_interner(interner: ValueInterner) -> Tuple[str, np.ndarray]:
    values = interner.values()
    if all(type(v) is int for v in values):
        try:
            return "int64", np.asarray(values, dtype=np.int64)
        except OverflowError:
            pass  # an int past 2^63-1: fall through to the JSON encoding
    # Anything else (strings from real dumps, mixed types, huge ints) goes
    # through a JSON round-trip per value — lossless for everything json
    # supports.  Stored as a fixed-width unicode array, NOT object dtype:
    # object arrays round-trip through pickle, and the loader refuses
    # pickle for everything except the legacy-format fallback.
    return "json", np.asarray([json.dumps(v) for v in values], dtype=np.str_)


def _decode_interner(kind: str, stored: np.ndarray) -> ValueInterner:
    if kind == "int64":
        return ValueInterner.from_values(stored.tolist())
    return ValueInterner.from_values(json.loads(v) for v in stored.tolist())


def save_snapshot(
    path: str,
    database: Database,
    workload: str,
    scale: float,
    seed: Optional[int],
    schema_hash: str,
) -> str:
    """Write ``database`` (codes + interner + schema metadata) to ``path``.

    The write is atomic (temp file + rename), so a crashed build never
    leaves a half-written snapshot behind for later loads to trip over.
    """
    interner_kind, interner_values = _encode_interner(database.interner)
    arrays: Dict[str, np.ndarray] = {_VALUES_KEY: interner_values}
    tables = {}
    for name in database.relation_names():
        relation = database.relation(name)
        tables[name] = {
            "attributes": list(relation.attributes),
            "primary_key": database.primary_key(name),
            "rows": len(relation),
        }
        for attribute in relation.attributes:
            arrays[f"col::{name}::{attribute}"] = relation.codes(attribute)
    meta = {
        "version": SNAPSHOT_VERSION,
        "workload": workload,
        "scale": float(scale),
        "seed": seed,
        "schema_hash": schema_hash,
        "interner_kind": interner_kind,
        "tables": tables,
        "total_rows": database.total_rows(),
    }
    arrays[_META_KEY] = np.asarray(json.dumps(meta))
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    handle, temp_path = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".", suffix=".npz.tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            maybe_fail("snapshot.write")
            np.savez(stream, **arrays)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


def _open_archive(path: str):
    """``np.load`` the file, normalising corruption to StaleSnapshotError.

    Pickle is disabled: metadata is a JSON string array and columns are
    ``int64`` code arrays, so nothing in the current format needs it, and a
    crafted snapshot must not gain arbitrary code execution through
    ``np.load``.  The sole legacy exception (object-dtype interner values)
    is handled by :func:`_interner_values`, never here.
    """
    try:
        maybe_fail("snapshot.read")
        return np.load(path, allow_pickle=False)
    except Exception as exc:  # BadZipFile, EOFError, OSError, ...
        raise StaleSnapshotError(f"snapshot {path!r} is unreadable: {exc}") from exc


def _interner_values(archive, path: str) -> np.ndarray:
    """The interner value array, allowing pickle only for this one key.

    Current snapshots store JSON-encoded values as a unicode array, which
    loads fine with ``allow_pickle=False``.  Snapshots written before the
    pickle audit used an object-dtype array; for those — and only for that
    single array — the file is re-opened with pickle enabled.  Column and
    metadata arrays are never read through this path, so a pickled payload
    smuggled into any other key still raises.
    """
    try:
        return archive[_VALUES_KEY]
    except ValueError:  # "Object arrays cannot be loaded when allow_pickle=False"
        try:
            with np.load(path, allow_pickle=True) as legacy:
                return legacy[_VALUES_KEY]
        except Exception as exc:
            raise StaleSnapshotError(
                f"snapshot {path!r} has an unreadable interner table: {exc}"
            ) from exc


def read_snapshot_meta(path: str) -> dict:
    """The metadata record of a snapshot file (no column data is read).

    Raises :class:`StaleSnapshotError` when the file is not a readable
    snapshot (corrupt, truncated, or a foreign ``.npz``).
    """
    with _open_archive(path) as archive:
        try:
            return json.loads(str(archive[_META_KEY]))
        except Exception as exc:
            raise StaleSnapshotError(
                f"snapshot {path!r} has no readable metadata: {exc}"
            ) from exc


def load_snapshot(path: str) -> Database:
    """Reconstruct a database from a snapshot file.

    Raises :class:`StaleSnapshotError` when the file's format version does
    not match :data:`SNAPSHOT_VERSION` or the file is corrupt.
    """
    with _open_archive(path) as archive:
        try:
            meta = json.loads(str(archive[_META_KEY]))
        except Exception as exc:
            raise StaleSnapshotError(
                f"snapshot {path!r} has no readable metadata: {exc}"
            ) from exc
        if meta.get("version") != SNAPSHOT_VERSION:
            raise StaleSnapshotError(
                f"snapshot {path!r} has version {meta.get('version')}, "
                f"this code reads version {SNAPSHOT_VERSION}"
            )
        try:
            database = Database()
            database.interner = _decode_interner(
                meta["interner_kind"], _interner_values(archive, path)
            )
            for name, table in meta["tables"].items():
                columns = tuple(
                    archive[f"col::{name}::{attribute}"].astype(CODE_DTYPE, copy=False)
                    for attribute in table["attributes"]
                )
                relation = Relation._from_codes(
                    name, table["attributes"], columns, table["rows"], database.interner
                )
                database.add_relation(relation, primary_key=table["primary_key"])
        except StaleSnapshotError:
            raise
        except Exception as exc:
            # Anything a damaged file can throw while its members decode —
            # BadZipFile/zlib errors from torn members, KeyError/ValueError
            # from metadata that lies about the arrays — means the snapshot
            # is unusable, never that a wrong database should escape.
            raise StaleSnapshotError(
                f"snapshot {path!r} does not match its metadata: {exc}"
            ) from exc
    return database


def rewrite_snapshot_version(path: str, version: int) -> None:
    """Rewrite a snapshot file's format version in place.

    Maintenance/testing helper — the one place that knows how to edit the
    metadata record; the stale-detection tests and the CI smoke script
    both use it to fabricate out-of-version snapshots.
    """
    with _open_archive(path) as archive:
        arrays = {
            key: _interner_values(archive, path) if key == _VALUES_KEY else archive[key]
            for key in archive.files
        }
    meta = json.loads(str(arrays[_META_KEY]))
    meta["version"] = version
    arrays[_META_KEY] = np.asarray(json.dumps(meta))
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


# -- build lock ------------------------------------------------------------

#: Suffix of the advisory lockfile guarding one snapshot build.
LOCK_SUFFIX = ".lock"

#: A lock older than this whose holder cannot be confirmed alive is
#: considered abandoned (holder was SIGKILLed before its ``finally``) and
#: taken over.
LOCK_STALE_SECONDS = 300.0

#: How long a would-be builder waits for the current holder before giving
#: up and building anyway (the atomic snapshot write keeps that correct —
#: the lock only exists to avoid redundant work).
LOCK_WAIT_SECONDS = 60.0

#: Poll interval while waiting on a held lock.
LOCK_POLL_INTERVAL = 0.05


def _lock_is_stale(lock_path: str, stale_after: float) -> bool:
    """Whether the lockfile was abandoned by a dead or wedged holder.

    A lock is stale when its recorded pid no longer exists, or — for locks
    whose pid cannot be checked (unreadable file, recycled pid namespace) —
    when the file is older than ``stale_after`` seconds.
    """
    try:
        age = time.time() - os.stat(lock_path).st_mtime
    except OSError:
        return False  # vanished: not stale, just gone
    try:
        with open(lock_path, "r", encoding="utf-8") as handle:
            pid = int(handle.read().strip() or "0")
    except (OSError, ValueError):
        pid = 0
    if pid:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # the holder died without releasing
        except OSError:
            pass  # exists but unsignalable (EPERM): treat as alive
        else:
            return age > stale_after  # alive-looking pid: only age decides
    return age > stale_after


def acquire_build_lock(
    path: str,
    timeout: float = LOCK_WAIT_SECONDS,
    poll_interval: float = LOCK_POLL_INTERVAL,
    stale_after: float = LOCK_STALE_SECONDS,
) -> bool:
    """Try to take the advisory build lock for snapshot ``path``.

    The lock is an ``O_CREAT|O_EXCL`` lockfile (``<path>.lock``) holding
    the owner's pid.  Returns ``True`` when acquired; ``False`` when the
    wait timed out — the caller then builds anyway, relying on the atomic
    snapshot write as the correctness backstop (the lock only prevents
    *redundant* concurrent builds, it is not load-bearing).  Stale locks
    (dead holder pid, or older than ``stale_after``) are taken over.
    """
    maybe_fail("snapshot.lock")
    lock_path = path + LOCK_SUFFIX
    os.makedirs(os.path.dirname(lock_path) or ".", exist_ok=True)
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if _lock_is_stale(lock_path, stale_after):
                # Takeover: unlink and retry O_EXCL.  Two waiters racing the
                # takeover can momentarily both think they won; the atomic
                # write keeps even that case correct (last store wins whole).
                try:
                    os.unlink(lock_path)
                except OSError:
                    pass
                continue
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_interval)
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        return True


def release_build_lock(path: str) -> None:
    """Release the advisory build lock for snapshot ``path`` (idempotent)."""
    try:
        os.unlink(path + LOCK_SUFFIX)
    except OSError:
        pass


# -- the cache -------------------------------------------------------------


class SnapshotCache:
    """A directory of workload snapshots keyed by build parameters."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()

    def path_for(
        self, workload: str, scale: float, seed: Optional[int], schema_hash: str
    ) -> str:
        return os.path.join(
            self.directory, snapshot_filename(workload, scale, seed, schema_hash)
        )

    def load(
        self, workload: str, scale: float, seed: Optional[int], schema_hash: str
    ) -> Optional[Database]:
        """The cached database, or ``None`` on a miss.

        A stale-version or corrupt file propagates
        :class:`StaleSnapshotError` so callers can distinguish "not
        cached" from "cached but unusable".
        """
        path = self.path_for(workload, scale, seed, schema_hash)
        if not os.path.exists(path):
            return None
        return load_snapshot(path)

    def store(
        self,
        workload: str,
        scale: float,
        seed: Optional[int],
        schema_hash: str,
        database: Database,
    ) -> str:
        return save_snapshot(
            self.path_for(workload, scale, seed, schema_hash),
            database,
            workload,
            scale,
            seed,
            schema_hash,
        )

    def _try_load(
        self, workload: str, scale: float, seed: Optional[int], schema_hash: str
    ) -> Optional[Database]:
        """Like :meth:`load`, but unusable snapshots become quarantined misses."""
        try:
            return self.load(workload, scale, seed, schema_hash)
        except StaleSnapshotError as exc:
            self.quarantine(
                self.path_for(workload, scale, seed, schema_hash), str(exc)
            )
            return None

    def load_or_build(
        self,
        workload: str,
        scale: float,
        seed: Optional[int],
        schema_hash: str,
        builder: Callable[[], Database],
    ) -> Tuple[Database, bool]:
        """``(database, hit)`` — load the snapshot or build + store it.

        Stale-version and corrupt snapshots count as misses: the offending
        file is quarantined (renamed to ``*.corrupt`` with the reason
        logged) and the fresh build writes a clean replacement.

        Concurrent misses (parallel batch workers cold-starting the same
        workload) are serialised through an advisory build lock
        (:func:`acquire_build_lock`): one process builds while the others
        wait, then load its snapshot.  The lock is best-effort only — an
        unavailable or timed-out lock means building redundantly under the
        protection of the atomic snapshot write, never failing the load.
        """
        cached = self._try_load(workload, scale, seed, schema_hash)
        if cached is not None:
            return cached, True
        path = self.path_for(workload, scale, seed, schema_hash)
        acquired = False
        try:
            try:
                acquired = acquire_build_lock(path)
            except Exception as exc:
                logger.warning(
                    "snapshot build lock for %s unavailable (%s); building unlocked",
                    path,
                    exc,
                )
            if acquired:
                # Whoever held the lock may have built it while we waited.
                cached = self._try_load(workload, scale, seed, schema_hash)
                if cached is not None:
                    return cached, True
            database = builder()
            self.store(workload, scale, seed, schema_hash, database)
            return database, False
        finally:
            if acquired:
                release_build_lock(path)

    def quarantine(self, path: str, reason: str) -> Optional[str]:
        """Move an unusable snapshot aside as ``<path>.corrupt``.

        Returns the quarantine path, or ``None`` when the file no longer
        exists (e.g. a concurrent process already rebuilt or removed it).
        An existing quarantine file for the same snapshot is replaced —
        one bad copy per key is all the post-mortem needs.
        """
        if not os.path.exists(path):
            return None
        quarantined = path + QUARANTINE_SUFFIX
        os.replace(path, quarantined)
        logger.warning(
            "quarantined snapshot %s -> %s: %s", path, quarantined, reason
        )
        return quarantined

    def _snapshot_paths(self) -> List[str]:
        if not os.path.isdir(self.directory):
            return []
        return [
            os.path.join(self.directory, filename)
            for filename in sorted(os.listdir(self.directory))
            if filename.endswith(".npz")
        ]

    def entries(self) -> List[SnapshotInfo]:
        """All snapshot files in the cache directory, stale ones included.

        Unreadable files (corrupt, truncated, foreign ``.npz``) are
        reported as stale placeholder entries rather than raised, so
        listing and cleaning always work on a damaged cache.
        """
        infos = []
        for path in self._snapshot_paths():
            try:
                meta = read_snapshot_meta(path)
            except StaleSnapshotError:
                meta = {}
            infos.append(
                SnapshotInfo(
                    path=path,
                    workload=meta.get("workload", "?"),
                    scale=float(meta.get("scale", 0.0)),
                    seed=meta.get("seed"),
                    schema_hash=meta.get("schema_hash", "?"),
                    version=int(meta.get("version", -1)),
                    total_rows=int(meta.get("total_rows", 0)),
                    size_bytes=os.path.getsize(path),
                )
            )
        return infos

    def quarantined(self) -> List[str]:
        """Paths of quarantined (``*.corrupt``) files in the cache directory."""
        if not os.path.isdir(self.directory):
            return []
        return [
            os.path.join(self.directory, filename)
            for filename in sorted(os.listdir(self.directory))
            if filename.endswith(QUARANTINE_SUFFIX)
        ]

    def locks(self) -> List[str]:
        """Paths of build lock (``*.lock``) files in the cache directory."""
        if not os.path.isdir(self.directory):
            return []
        return [
            os.path.join(self.directory, filename)
            for filename in sorted(os.listdir(self.directory))
            if filename.endswith(LOCK_SUFFIX)
        ]

    def stale_locks(self, stale_after: float = LOCK_STALE_SECONDS) -> List[str]:
        """Lock files older than ``stale_after`` seconds.

        A healthy builder removes its lock when it finishes; a lock that
        outlives the stale threshold belongs to a crashed or SIGKILLed
        build and only delays the next builder (which would break it
        itself after waiting the threshold out).
        """
        return [
            path for path in self.locks() if _lock_is_stale(path, stale_after)
        ]

    def clean(self) -> CleanReport:
        """Delete every snapshot, quarantine, temp and lock file.

        Covers ``*.npz`` (readable or not), ``*.npz.corrupt`` quarantine
        files, ``*.npz.tmp*`` leftovers from writes killed between
        ``mkstemp`` and the cleanup handler, and ``*.lock`` files of
        builders that never cleaned up.  Returns the per-category
        :class:`CleanReport` so callers can say *what* was removed.
        """
        report = CleanReport()
        if not os.path.isdir(self.directory):
            return report
        for filename in sorted(os.listdir(self.directory)):
            if filename.endswith(QUARANTINE_SUFFIX):
                report.quarantined += 1
            elif filename.endswith(LOCK_SUFFIX):
                report.locks += 1
            elif ".npz.tmp" in filename:
                report.temp += 1
            elif filename.endswith(".npz"):
                report.snapshots += 1
            else:
                continue
            os.unlink(os.path.join(self.directory, filename))
        return report
