"""A Hetionet-like workload: skewed edge tables and the four graph queries.

The paper's Hetionet queries are cyclic self-join queries over edge tables
named ``hetio<metaedge id>`` with schema ``(s, d)``.  We generate one random
directed graph per edge table over a shared node universe with a heavy-tailed
(hub-dominated) degree distribution — the property that makes bad
decompositions of the cyclic patterns expensive on the real knowledge graph.
The SQL of the four queries is reproduced verbatim from Appendix D.2
(Listings 2–5).

Generation is deterministic, seeded and chunked (numpy PCG64 streams into
the columnar ingest path — see :mod:`repro.workloads.ingest`); real
Hetionet edge dumps can be loaded instead through
:meth:`repro.workloads.registry.WorkloadEntry.load_dump` against
:data:`HETIONET_SCHEMA`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.workloads.ingest import ChunkedTableBuilder, generate_unique_edges

#: The edge tables referenced by the benchmark queries.
EDGE_TABLES = ("hetio45159", "hetio45160", "hetio45173", "hetio45176", "hetio45177")

#: Bump when generated data changes for a fixed ``(scale, seed)``.
GENERATOR_VERSION = 2

#: ``table -> (attributes, primary_key)`` — also the dump-file schema.
HETIONET_SCHEMA: Dict[str, Tuple[Sequence[str], Optional[str]]] = {
    table: (("s", "d"), None) for table in EDGE_TABLES
}

HETIONET_QUERY_SQL: Dict[str, str] = {
    # Listing 2 — q_hto
    "q_hto": """
SELECT MIN(hetio45173_0.s)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1,
     hetio45160 AS hetio45160_2, hetio45160 AS hetio45160_3,
     hetio45160 AS hetio45160_4, hetio45159 AS hetio45159_5,
     hetio45159 AS hetio45159_6
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45160_2.s AND
      hetio45173_1.d = hetio45160_3.s AND hetio45160_2.d = hetio45160_3.d AND
      hetio45160_3.d = hetio45160_4.s AND hetio45160_4.s = hetio45159_5.s AND
      hetio45160_4.d = hetio45159_6.s AND hetio45159_5.d = hetio45159_6.d
""",
    # Listing 3 — q_hto2
    "q_hto2": """
SELECT MAX(hetio45160.d)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS
     hetio45173_2, hetio45173 AS hetio45173_3, hetio45160, hetio45176 AS
     hetio45176_5, hetio45176 AS hetio45176_6
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s AND
      hetio45173_1.d = hetio45173_3.s AND hetio45173_2.d = hetio45173_3.d AND
      hetio45173_3.d = hetio45160.s AND hetio45160.s = hetio45176_5.s AND
      hetio45160.d = hetio45176_6.s AND hetio45176_5.d = hetio45176_6.d
""",
    # Listing 4 — q_hto3
    "q_hto3": """
SELECT MIN(hetio45173_2.d)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS
     hetio45173_2, hetio45173 AS hetio45173_3
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s
      AND hetio45173_1.d = hetio45173_3.d AND hetio45173_2.d = hetio45173_3.s
""",
    # Listing 5 — q_hto4
    "q_hto4": """
SELECT MIN(hetio45160_0.s)
FROM hetio45160 AS hetio45160_0, hetio45160 AS hetio45160_1,
     hetio45177, hetio45160 AS hetio45160_3, hetio45159 AS
     hetio45159_4, hetio45159 AS hetio45159_5
WHERE hetio45160_0.s = hetio45160_1.s AND hetio45160_0.d = hetio45177.s
      AND hetio45160_1.d = hetio45177.d AND hetio45177.d = hetio45160_3.s
      AND hetio45160_3.s = hetio45159_4.s AND hetio45160_3.d = hetio45159_5.s
      AND hetio45159_4.d = hetio45159_5.d
""",
}


def _hub_sampler(num_nodes: int, hub_fraction: float = 0.08):
    """A node sampler with a hub-dominated (heavy-tailed) distribution.

    Half of all draws land on the first ``hub_fraction`` of the node
    universe, reproducing the hub-heavy degree distribution of the real
    knowledge graph.
    """
    hubs = max(1, int(num_nodes * hub_fraction))

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        from_hub = rng.random(count) < 0.5
        return np.where(
            from_hub,
            rng.integers(0, hubs, count),
            rng.integers(0, num_nodes, count),
        )

    return sample


def build_hetionet_database(
    scale: float = 1.0, seed: Optional[int] = 11
) -> Database:
    """Generate the synthetic Hetionet-like database (five edge tables)."""
    rng = np.random.default_rng(seed)
    num_nodes = max(20, int(160 * scale))
    edges_per_table = max(30, int(450 * scale))
    sampler = _hub_sampler(num_nodes)
    database = Database()
    for table in EDGE_TABLES:
        sources, targets = generate_unique_edges(
            rng, num_nodes, edges_per_table, sampler, sampler
        )
        builder = ChunkedTableBuilder(table, *HETIONET_SCHEMA[table])
        builder.append([sources, targets])
        builder.ingest(database)
    return database


def hetionet_query(database: Database, name: str) -> ConjunctiveQuery:
    """One of the four Hetionet benchmark queries (``q_hto`` .. ``q_hto4``)."""
    if name not in HETIONET_QUERY_SQL:
        raise KeyError(f"unknown Hetionet query {name!r}")
    return parse_select_query(HETIONET_QUERY_SQL[name], database, name=name)
