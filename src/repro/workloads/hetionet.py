"""A Hetionet-like workload: skewed edge tables and the four graph queries.

The paper's Hetionet queries are cyclic self-join queries over edge tables
named ``hetio<metaedge id>`` with schema ``(s, d)``.  We generate one random
directed graph per edge table over a shared node universe with a heavy-tailed
(hub-dominated) degree distribution — the property that makes bad
decompositions of the cyclic patterns expensive on the real knowledge graph.
The SQL of the four queries is reproduced verbatim from Appendix D.2
(Listings 2–5).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query

#: The edge tables referenced by the benchmark queries.
EDGE_TABLES = ("hetio45159", "hetio45160", "hetio45173", "hetio45176", "hetio45177")

HETIONET_QUERY_SQL: Dict[str, str] = {
    # Listing 2 — q_hto
    "q_hto": """
SELECT MIN(hetio45173_0.s)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1,
     hetio45160 AS hetio45160_2, hetio45160 AS hetio45160_3,
     hetio45160 AS hetio45160_4, hetio45159 AS hetio45159_5,
     hetio45159 AS hetio45159_6
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45160_2.s AND
      hetio45173_1.d = hetio45160_3.s AND hetio45160_2.d = hetio45160_3.d AND
      hetio45160_3.d = hetio45160_4.s AND hetio45160_4.s = hetio45159_5.s AND
      hetio45160_4.d = hetio45159_6.s AND hetio45159_5.d = hetio45159_6.d
""",
    # Listing 3 — q_hto2
    "q_hto2": """
SELECT MAX(hetio45160.d)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS
     hetio45173_2, hetio45173 AS hetio45173_3, hetio45160, hetio45176 AS
     hetio45176_5, hetio45176 AS hetio45176_6
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s AND
      hetio45173_1.d = hetio45173_3.s AND hetio45173_2.d = hetio45173_3.d AND
      hetio45173_3.d = hetio45160.s AND hetio45160.s = hetio45176_5.s AND
      hetio45160.d = hetio45176_6.s AND hetio45176_5.d = hetio45176_6.d
""",
    # Listing 4 — q_hto3
    "q_hto3": """
SELECT MIN(hetio45173_2.d)
FROM hetio45173 AS hetio45173_0, hetio45173 AS hetio45173_1, hetio45173 AS
     hetio45173_2, hetio45173 AS hetio45173_3
WHERE hetio45173_0.s = hetio45173_1.s AND hetio45173_0.d = hetio45173_2.s
      AND hetio45173_1.d = hetio45173_3.d AND hetio45173_2.d = hetio45173_3.s
""",
    # Listing 5 — q_hto4
    "q_hto4": """
SELECT MIN(hetio45160_0.s)
FROM hetio45160 AS hetio45160_0, hetio45160 AS hetio45160_1,
     hetio45177, hetio45160 AS hetio45160_3, hetio45159 AS
     hetio45159_4, hetio45159 AS hetio45159_5
WHERE hetio45160_0.s = hetio45160_1.s AND hetio45160_0.d = hetio45177.s
      AND hetio45160_1.d = hetio45177.d AND hetio45177.d = hetio45160_3.s
      AND hetio45160_3.s = hetio45159_4.s AND hetio45160_3.d = hetio45159_5.s
      AND hetio45159_4.d = hetio45159_5.d
""",
}


def _skewed_edges(
    rng: random.Random, num_nodes: int, num_edges: int, hub_fraction: float = 0.08
) -> List[Tuple[int, int]]:
    """A random edge list with a hub-dominated degree distribution."""
    hubs = max(1, int(num_nodes * hub_fraction))
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 20:
        attempts += 1
        if rng.random() < 0.5:
            source = rng.randrange(hubs)
        else:
            source = rng.randrange(num_nodes)
        if rng.random() < 0.5:
            target = rng.randrange(hubs)
        else:
            target = rng.randrange(num_nodes)
        if source != target:
            edges.add((source, target))
    return sorted(edges)


def build_hetionet_database(
    scale: float = 1.0, seed: Optional[int] = 11
) -> Database:
    """Generate the synthetic Hetionet-like database (five edge tables)."""
    rng = random.Random(seed)
    num_nodes = max(20, int(160 * scale))
    edges_per_table = max(30, int(450 * scale))
    database = Database()
    for table in EDGE_TABLES:
        rows = _skewed_edges(rng, num_nodes, edges_per_table)
        columns = [list(column) for column in zip(*rows)] if rows else [[], []]
        database.create_table_columns(table, ["s", "d"], columns)
    return database


def hetionet_query(database: Database, name: str) -> ConjunctiveQuery:
    """One of the four Hetionet benchmark queries (``q_hto`` .. ``q_hto4``)."""
    if name not in HETIONET_QUERY_SQL:
        raise KeyError(f"unknown Hetionet query {name!r}")
    return parse_select_query(HETIONET_QUERY_SQL[name], database, name=name)
