"""JOB-lite: an IMDb-shaped join-benchmark workload for the query front door.

A miniature of the Join Order Benchmark (JOB): nine tables following the
IMDb schema shape (``title``, ``cast_info``, ``movie_companies``, ...)
and ten aggregate join queries ``jl01`` .. ``jl10`` expressed as SQL text
and parsed through :func:`repro.db.sqlish.parse_select_query` — this is
the first workload whose queries enter the system the way user traffic
does, through the front door, rather than as hand-built
:class:`~repro.db.query.ConjunctiveQuery` objects.

The queries deliberately exercise the whole supported dialect: implicit
comma joins with unqualified columns, explicit ``JOIN .. ON`` chains,
``INNER JOIN``, quoted identifiers, and a self-join of ``movie_link``
through distinct aliases.  Three queries (``jl04``, ``jl08``, ``jl10``)
are cyclic through *non-key* joins over a small shared category domain
(gender/country/info-type all range over the same few codes, like JOB's
``info_type``/``kind_id`` columns), so they need width-2 decompositions
and fan out heavily — the regime where decomposition choice matters.

Generation follows the other workloads: deterministic PCG64 chunks
ingested through the columnar fast path, so a fixed ``(scale, seed)``
yields byte-identical code columns in any process and the snapshot cache
applies unchanged.  Foreign keys are hub-skewed: 10% of movies receive
60% of the references, mirroring IMDb's blockbuster skew.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.workloads.ingest import ChunkedTableBuilder, chunk_sizes

#: Bump when generated data changes for a fixed ``(scale, seed)``.
GENERATOR_VERSION = 1

#: How many distinct category codes gender/country/info-type share.  The
#: non-key joins of the cyclic queries equate columns over this domain, so
#: a small domain means heavy fan-out.
CATEGORY_DOMAIN = 12

#: ``table -> (attributes, primary_key)`` of everything the generator builds.
JOBLITE_SCHEMA: Dict[str, Tuple[Sequence[str], Optional[str]]] = {
    "title": (("t_id", "t_kind", "t_year"), "t_id"),
    "company_name": (("cn_id", "cn_country"), "cn_id"),
    "movie_companies": (("mc_movie", "mc_company", "mc_note"), None),
    "name": (("n_id", "n_gender"), "n_id"),
    "cast_info": (("ci_movie", "ci_person", "ci_role"), None),
    "keyword": (("k_id", "k_class"), "k_id"),
    "movie_keyword": (("mk_movie", "mk_keyword"), None),
    "movie_info": (("mi_movie", "mi_type", "mi_value"), None),
    "movie_link": (("ml_movie", "ml_linked", "ml_type"), None),
}

#: The ten JOB-lite queries, in the dialect of :mod:`repro.db.sqlish`.
JOBLITE_QUERY_SQL: Dict[str, str] = {
    # Production-company star: implicit joins, unqualified columns.
    "jl01": """
        SELECT MIN(t_year)
        FROM title, movie_companies, company_name
        WHERE t_id = mc_movie AND mc_company = cn_id
    """,
    # Cast chain via explicit JOIN .. ON.
    "jl02": """
        SELECT COUNT(n_id)
        FROM name
        JOIN cast_info ON name.n_id = cast_info.ci_person
        JOIN title ON cast_info.ci_movie = title.t_id
    """,
    # Keyword + info star on the movie id.
    "jl03": """
        SELECT MIN(k_id)
        FROM title, movie_keyword, keyword, movie_info
        WHERE t_id = mk_movie AND mk_keyword = k_id AND mi_movie = t_id
    """,
    # Cyclic: movie-person-gender/country-company-movie cycle (width 2).
    "jl04": """
        SELECT MIN(t_year)
        FROM title, cast_info, name, movie_companies, company_name
        WHERE t_id = ci_movie AND ci_person = n_id
              AND t_id = mc_movie AND mc_company = cn_id
              AND n_gender = cn_country
    """,
    # movie_link self-join through distinct aliases.
    "jl05": """
        SELECT COUNT(t_id)
        FROM movie_link AS l1
        JOIN movie_link AS l2 ON l1.ml_linked = l2.ml_movie
        JOIN title ON l2.ml_linked = title.t_id
    """,
    # Quoted identifiers and INNER JOIN.
    "jl06": """
        SELECT MAX("t_year")
        FROM "title" INNER JOIN "movie_info"
             ON "title"."t_id" = "movie_info"."mi_movie"
    """,
    # Company-to-linked-movie chain.
    "jl07": """
        SELECT MIN(cn_id)
        FROM company_name, movie_companies, movie_link AS l, title
        WHERE cn_id = mc_company AND mc_movie = l.ml_movie
              AND l.ml_linked = t_id
    """,
    # Cyclic: keyword-class/info-type triangle (width 2).
    "jl08": """
        SELECT COUNT(mk_keyword)
        FROM movie_keyword, keyword, movie_info, title
        WHERE mk_keyword = k_id AND mk_movie = mi_movie
              AND k_class = mi_type AND mi_movie = t_id
    """,
    # Wide acyclic star over six tables.
    "jl09": """
        SELECT MIN(t_year)
        FROM title, movie_companies, company_name, cast_info, name, movie_info
        WHERE t_id = mc_movie AND mc_company = cn_id
              AND t_id = ci_movie AND ci_person = n_id
              AND t_id = mi_movie
    """,
    # Cyclic: movie-person-gender/info-value square (width 2).
    "jl10": """
        SELECT COUNT(ci_person)
        FROM title, cast_info, name, movie_info
        WHERE t_id = ci_movie AND ci_person = n_id
              AND t_id = mi_movie AND n_gender = mi_value
    """,
}

#: Least width of each query's hypergraph (verified by the golden tests
#: against a soft-width search): the cyclic queries need 2, the rest are
#: acyclic.
JOBLITE_QUERY_WIDTHS: Dict[str, int] = {
    "jl01": 1,
    "jl02": 1,
    "jl03": 1,
    "jl04": 2,
    "jl05": 1,
    "jl06": 1,
    "jl07": 1,
    "jl08": 2,
    "jl09": 1,
    "jl10": 2,
}


def _categories(rng: np.random.Generator, count: int) -> np.ndarray:
    """60% of codes cluster in [0, 4), the rest spread over the domain."""
    clustered = rng.random(count) < 0.6
    narrow = rng.integers(0, 4, count)
    wide = rng.integers(0, CATEGORY_DOMAIN, count)
    return np.where(clustered, narrow, wide)


def _skewed_ids(rng: np.random.Generator, count: int, domain: int) -> np.ndarray:
    """Hub-skewed foreign keys: 10% of ids draw 60% of the references."""
    hubs = max(1, domain // 10)
    to_hub = rng.random(count) < 0.6
    hub_refs = rng.integers(0, hubs, count)
    flat_refs = rng.integers(0, domain, count)
    return np.where(to_hub, hub_refs, flat_refs)


def build_joblite_database(scale: float = 1.0, seed: Optional[int] = 17) -> Database:
    """Generate the synthetic IMDb-shaped database.

    ``scale`` multiplies all table sizes (clamped to small minimums so the
    joins stay non-trivial at any scale); the category columns keep their
    fixed small domain, so fan-out *grows* with scale — as in the real JOB,
    bigger data makes decomposition choice matter more, not less.
    """
    rng = np.random.default_rng(seed)
    database = Database()

    num_titles = max(20, int(400 * scale))
    num_companies = max(6, int(60 * scale))
    num_names = max(20, int(500 * scale))
    num_keywords = max(8, int(80 * scale))
    num_movie_companies = max(40, int(1200 * scale))
    num_cast_info = max(40, int(1600 * scale))
    num_movie_keyword = max(40, int(1200 * scale))
    num_movie_info = max(40, int(1000 * scale))
    num_movie_link = max(20, int(300 * scale))

    title = ChunkedTableBuilder(*_table_args("title"))
    for step in chunk_sizes(num_titles):
        start = len(title)
        title.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                _categories(rng, step),
                rng.integers(1950, 2020, step),
            ]
        )
    title.ingest(database)

    company = ChunkedTableBuilder(*_table_args("company_name"))
    for step in chunk_sizes(num_companies):
        start = len(company)
        company.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                _categories(rng, step),
            ]
        )
    company.ingest(database)

    person = ChunkedTableBuilder(*_table_args("name"))
    for step in chunk_sizes(num_names):
        start = len(person)
        person.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                _categories(rng, step),
            ]
        )
    person.ingest(database)

    keyword = ChunkedTableBuilder(*_table_args("keyword"))
    for step in chunk_sizes(num_keywords):
        start = len(keyword)
        keyword.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                _categories(rng, step),
            ]
        )
    keyword.ingest(database)

    movie_companies = ChunkedTableBuilder(*_table_args("movie_companies"))
    for step in chunk_sizes(num_movie_companies):
        movie_companies.append(
            [
                _skewed_ids(rng, step, num_titles),
                rng.integers(0, num_companies, step),
                _categories(rng, step),
            ]
        )
    movie_companies.ingest(database)

    cast_info = ChunkedTableBuilder(*_table_args("cast_info"))
    for step in chunk_sizes(num_cast_info):
        cast_info.append(
            [
                _skewed_ids(rng, step, num_titles),
                rng.integers(0, num_names, step),
                _categories(rng, step),
            ]
        )
    cast_info.ingest(database)

    movie_keyword = ChunkedTableBuilder(*_table_args("movie_keyword"))
    for step in chunk_sizes(num_movie_keyword):
        movie_keyword.append(
            [
                _skewed_ids(rng, step, num_titles),
                rng.integers(0, num_keywords, step),
            ]
        )
    movie_keyword.ingest(database)

    movie_info = ChunkedTableBuilder(*_table_args("movie_info"))
    for step in chunk_sizes(num_movie_info):
        movie_info.append(
            [
                _skewed_ids(rng, step, num_titles),
                _categories(rng, step),
                _categories(rng, step),
            ]
        )
    movie_info.ingest(database)

    movie_link = ChunkedTableBuilder(*_table_args("movie_link"))
    for step in chunk_sizes(num_movie_link):
        movie_link.append(
            [
                _skewed_ids(rng, step, num_titles),
                _skewed_ids(rng, step, num_titles),
                _categories(rng, step),
            ]
        )
    movie_link.ingest(database)
    return database


def _table_args(name: str):
    attributes, primary_key = JOBLITE_SCHEMA[name]
    return name, attributes, primary_key


def joblite_query(database: Database, name: str) -> ConjunctiveQuery:
    """One JOB-lite query (``jl01`` .. ``jl10``) resolved against ``database``."""
    try:
        sql = JOBLITE_QUERY_SQL[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown JOB-lite query {name!r}; known: {sorted(JOBLITE_QUERY_SQL)}"
        ) from exc
    return parse_select_query(sql, database, name=name)
