"""A TPC-DS-like workload for the query ``q_ds`` of the paper's evaluation.

Only the five tables touched by ``q_ds`` are generated, with exactly the
columns the query references plus a primary key where TPC-DS defines one.
The decisive feature reproduced from the real benchmark is the *non-key*
join ``w_warehouse_sq_ft = ws_quantity``: both columns range over a small
shared domain, so the join fans out heavily — this is what makes different
decompositions of the (cyclic) query hypergraph differ so much in cost.

Generation is deterministic, seeded and chunked: every column is produced
as numpy chunks from a ``numpy.random.Generator`` (PCG64 — its stream is
stable across processes and platforms) and ingested through the columnar
``create_table_columns`` fast path, so the same ``(scale, seed)`` always
yields byte-identical code columns and no Python row tuples are ever
materialised.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.workloads.ingest import ChunkedTableBuilder, chunk_sizes

#: Query ``q_ds`` exactly as printed in Appendix D.2 (Listing 1).
QDS_SQL = """
SELECT MIN(ws_bill_customer_sk)
FROM web_sales,
     customer,
     customer_address,
     catalog_sales,
     warehouse
WHERE ws_bill_customer_sk = c_customer_sk
      AND ca_address_sk = c_current_addr_sk
      AND c_current_addr_sk = cs_bill_addr_sk
      AND cs_warehouse_sk = w_warehouse_sk
      AND w_warehouse_sq_ft = ws_quantity
"""

#: Bump when generated data changes for a fixed ``(scale, seed)`` — stale
#: snapshots are detected by the schema/generator fingerprint.
GENERATOR_VERSION = 2

#: ``table -> (attributes, primary_key)`` of everything the generator builds.
TPCDS_SCHEMA: Dict[str, Tuple[Sequence[str], Optional[str]]] = {
    "customer_address": (("ca_address_sk",), "ca_address_sk"),
    "customer": (("c_customer_sk", "c_current_addr_sk"), "c_customer_sk"),
    "warehouse": (("w_warehouse_sk", "w_warehouse_sq_ft"), "w_warehouse_sk"),
    "web_sales": (("ws_bill_customer_sk", "ws_quantity"), None),
    "catalog_sales": (("cs_bill_addr_sk", "cs_warehouse_sk"), None),
}


def _skewed_quantities(
    rng: np.random.Generator, count: int, quantity_domain: int
) -> np.ndarray:
    """60% of values cluster in [1, 5), the rest spread over the domain."""
    clustered = rng.random(count) < 0.6
    narrow = rng.integers(1, 5, count)
    wide = rng.integers(1, quantity_domain + 1, count)
    return np.where(clustered, narrow, wide)


def build_tpcds_database(
    scale: float = 1.0, seed: Optional[int] = 7, quantity_domain: int = 40
) -> Database:
    """Generate the synthetic TPC-DS-like database.

    ``scale`` multiplies all table sizes; ``quantity_domain`` controls how
    many distinct values the non-key join columns share (smaller = heavier
    fan-out).  The defaults keep every decomposition-guided execution in the
    sub-second range while leaving an order of magnitude between good and bad
    decompositions.
    """
    rng = np.random.default_rng(seed)
    database = Database()

    num_customers = max(10, int(300 * scale))
    num_addresses = max(5, int(120 * scale))
    num_warehouses = max(3, int(40 * scale))
    num_web_sales = max(20, int(900 * scale))
    num_catalog_sales = max(20, int(900 * scale))

    database.create_table_columns(
        "customer_address",
        ["ca_address_sk"],
        [np.arange(num_addresses, dtype=np.int64)],
        primary_key="ca_address_sk",
    )

    customer = ChunkedTableBuilder(*_table_args("customer"))
    for step in chunk_sizes(num_customers):
        start = len(customer)
        customer.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                rng.integers(0, num_addresses, step),
            ]
        )
    customer.ingest(database)

    # Warehouses have skewed square footage: a handful of popular values
    # dominate, so the non-key join against ws_quantity fans out strongly and
    # the optimiser's independence-based estimate is far too low.
    warehouse = ChunkedTableBuilder(*_table_args("warehouse"))
    for step in chunk_sizes(num_warehouses):
        start = len(warehouse)
        warehouse.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                _skewed_quantities(rng, step, quantity_domain),
            ]
        )
    warehouse.ingest(database)

    # Web sales reference customers (foreign key) but have a skewed quantity
    # column matching the warehouse skew.
    web_sales = ChunkedTableBuilder(*_table_args("web_sales"))
    for step in chunk_sizes(num_web_sales):
        web_sales.append(
            [
                rng.integers(0, num_customers, step),
                _skewed_quantities(rng, step, quantity_domain),
            ]
        )
    web_sales.ingest(database)

    catalog_sales = ChunkedTableBuilder(*_table_args("catalog_sales"))
    for step in chunk_sizes(num_catalog_sales):
        catalog_sales.append(
            [
                rng.integers(0, num_addresses, step),
                rng.integers(0, num_warehouses, step),
            ]
        )
    catalog_sales.ingest(database)
    return database


def _table_args(name: str):
    attributes, primary_key = TPCDS_SCHEMA[name]
    return name, attributes, primary_key


def tpcds_query_qds(database: Database) -> ConjunctiveQuery:
    """The conjunctive query for ``q_ds`` resolved against the database schema."""
    return parse_select_query(QDS_SQL, database, name="q_ds")
