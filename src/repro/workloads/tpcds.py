"""A TPC-DS-like workload for the query ``q_ds`` of the paper's evaluation.

Only the five tables touched by ``q_ds`` are generated, with exactly the
columns the query references plus a primary key where TPC-DS defines one.
The decisive feature reproduced from the real benchmark is the *non-key*
join ``w_warehouse_sq_ft = ws_quantity``: both columns range over a small
shared domain, so the join fans out heavily — this is what makes different
decompositions of the (cyclic) query hypergraph differ so much in cost.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query

#: Query ``q_ds`` exactly as printed in Appendix D.2 (Listing 1).
QDS_SQL = """
SELECT MIN(ws_bill_customer_sk)
FROM web_sales,
     customer,
     customer_address,
     catalog_sales,
     warehouse
WHERE ws_bill_customer_sk = c_customer_sk
      AND ca_address_sk = c_current_addr_sk
      AND c_current_addr_sk = cs_bill_addr_sk
      AND cs_warehouse_sk = w_warehouse_sk
      AND w_warehouse_sq_ft = ws_quantity
"""


def build_tpcds_database(
    scale: float = 1.0, seed: Optional[int] = 7, quantity_domain: int = 40
) -> Database:
    """Generate the synthetic TPC-DS-like database.

    ``scale`` multiplies all table sizes; ``quantity_domain`` controls how
    many distinct values the non-key join columns share (smaller = heavier
    fan-out).  The defaults keep every decomposition-guided execution in the
    sub-second range while leaving an order of magnitude between good and bad
    decompositions.
    """
    rng = random.Random(seed)
    database = Database()

    num_customers = max(10, int(300 * scale))
    num_addresses = max(5, int(120 * scale))
    num_warehouses = max(3, int(40 * scale))
    num_web_sales = max(20, int(900 * scale))
    num_catalog_sales = max(20, int(900 * scale))

    database.create_table(
        "customer_address",
        ["ca_address_sk"],
        [(address,) for address in range(num_addresses)],
        primary_key="ca_address_sk",
    )
    database.create_table(
        "customer",
        ["c_customer_sk", "c_current_addr_sk"],
        [
            (customer, rng.randrange(num_addresses))
            for customer in range(num_customers)
        ],
        primary_key="c_customer_sk",
    )
    # Warehouses have skewed square footage: a handful of popular values
    # dominate, so the non-key join against ws_quantity fans out strongly and
    # the optimiser's independence-based estimate is far too low.
    warehouse_rows = []
    for warehouse in range(num_warehouses):
        if rng.random() < 0.6:
            square_feet = rng.randrange(1, 5)
        else:
            square_feet = rng.randrange(1, quantity_domain + 1)
        warehouse_rows.append((warehouse, square_feet))
    database.create_table(
        "warehouse",
        ["w_warehouse_sk", "w_warehouse_sq_ft"],
        warehouse_rows,
        primary_key="w_warehouse_sk",
    )
    # Web sales reference customers (foreign key) but have a skewed quantity
    # column matching the warehouse skew.
    web_sales_rows = []
    for _ in range(num_web_sales):
        customer = rng.randrange(num_customers)
        if rng.random() < 0.6:
            quantity = rng.randrange(1, 5)
        else:
            quantity = rng.randrange(1, quantity_domain + 1)
        web_sales_rows.append((customer, quantity))
    database.create_table(
        "web_sales", ["ws_bill_customer_sk", "ws_quantity"], web_sales_rows
    )
    catalog_sales_rows = []
    for _ in range(num_catalog_sales):
        address = rng.randrange(num_addresses)
        warehouse = rng.randrange(num_warehouses)
        catalog_sales_rows.append((address, warehouse))
    database.create_table(
        "catalog_sales", ["cs_bill_addr_sk", "cs_warehouse_sk"], catalog_sales_rows
    )
    return database


def tpcds_query_qds(database: Database) -> ConjunctiveQuery:
    """The conjunctive query for ``q_ds`` resolved against the database schema."""
    return parse_select_query(QDS_SQL, database, name="q_ds")
