"""A TPC-DS-like workload for the query ``q_ds`` of the paper's evaluation.

Only the five tables touched by ``q_ds`` are generated, with exactly the
columns the query references plus a primary key where TPC-DS defines one.
The decisive feature reproduced from the real benchmark is the *non-key*
join ``w_warehouse_sq_ft = ws_quantity``: both columns range over a small
shared domain, so the join fans out heavily — this is what makes different
decompositions of the (cyclic) query hypergraph differ so much in cost.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query

#: Query ``q_ds`` exactly as printed in Appendix D.2 (Listing 1).
QDS_SQL = """
SELECT MIN(ws_bill_customer_sk)
FROM web_sales,
     customer,
     customer_address,
     catalog_sales,
     warehouse
WHERE ws_bill_customer_sk = c_customer_sk
      AND ca_address_sk = c_current_addr_sk
      AND c_current_addr_sk = cs_bill_addr_sk
      AND cs_warehouse_sk = w_warehouse_sk
      AND w_warehouse_sq_ft = ws_quantity
"""


def build_tpcds_database(
    scale: float = 1.0, seed: Optional[int] = 7, quantity_domain: int = 40
) -> Database:
    """Generate the synthetic TPC-DS-like database.

    ``scale`` multiplies all table sizes; ``quantity_domain`` controls how
    many distinct values the non-key join columns share (smaller = heavier
    fan-out).  The defaults keep every decomposition-guided execution in the
    sub-second range while leaving an order of magnitude between good and bad
    decompositions.
    """
    rng = random.Random(seed)
    database = Database()

    num_customers = max(10, int(300 * scale))
    num_addresses = max(5, int(120 * scale))
    num_warehouses = max(3, int(40 * scale))
    num_web_sales = max(20, int(900 * scale))
    num_catalog_sales = max(20, int(900 * scale))

    database.create_table_columns(
        "customer_address",
        ["ca_address_sk"],
        [list(range(num_addresses))],
        primary_key="ca_address_sk",
    )
    database.create_table_columns(
        "customer",
        ["c_customer_sk", "c_current_addr_sk"],
        [
            list(range(num_customers)),
            [rng.randrange(num_addresses) for _ in range(num_customers)],
        ],
        primary_key="c_customer_sk",
    )
    # Warehouses have skewed square footage: a handful of popular values
    # dominate, so the non-key join against ws_quantity fans out strongly and
    # the optimiser's independence-based estimate is far too low.
    warehouse_sks: list = []
    warehouse_sq_ft: list = []
    for warehouse in range(num_warehouses):
        if rng.random() < 0.6:
            square_feet = rng.randrange(1, 5)
        else:
            square_feet = rng.randrange(1, quantity_domain + 1)
        warehouse_sks.append(warehouse)
        warehouse_sq_ft.append(square_feet)
    database.create_table_columns(
        "warehouse",
        ["w_warehouse_sk", "w_warehouse_sq_ft"],
        [warehouse_sks, warehouse_sq_ft],
        primary_key="w_warehouse_sk",
    )
    # Web sales reference customers (foreign key) but have a skewed quantity
    # column matching the warehouse skew.
    ws_customers: list = []
    ws_quantities: list = []
    for _ in range(num_web_sales):
        ws_customers.append(rng.randrange(num_customers))
        if rng.random() < 0.6:
            ws_quantities.append(rng.randrange(1, 5))
        else:
            ws_quantities.append(rng.randrange(1, quantity_domain + 1))
    database.create_table_columns(
        "web_sales",
        ["ws_bill_customer_sk", "ws_quantity"],
        [ws_customers, ws_quantities],
    )
    cs_addresses: list = []
    cs_warehouses: list = []
    for _ in range(num_catalog_sales):
        cs_addresses.append(rng.randrange(num_addresses))
        cs_warehouses.append(rng.randrange(num_warehouses))
    database.create_table_columns(
        "catalog_sales",
        ["cs_bill_addr_sk", "cs_warehouse_sk"],
        [cs_addresses, cs_warehouses],
    )
    return database


def tpcds_query_qds(database: Database) -> ConjunctiveQuery:
    """The conjunctive query for ``q_ds`` resolved against the database schema."""
    return parse_select_query(QDS_SQL, database, name="q_ds")
