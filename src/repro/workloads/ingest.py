"""Chunked columnar ingest for the workload generators and dump loaders.

The scalable workload layer produces data as numpy column chunks and feeds
them straight into :meth:`repro.db.database.Database.create_table_columns`
(which dictionary-encodes whole arrays at once) — Python row tuples are
never materialised, so generation cost is a handful of vectorised passes
per table even at scale factors well past the paper's SF 10.

Two producers cover every workload:

* :class:`ChunkedTableBuilder` — accumulate fixed-size column chunks for
  one table and finalise them into a database in a single ingest call;
* :func:`generate_unique_edges` — the deduplicating edge-sampler shared by
  the LSQB knows-graph and the Hetionet metaedge tables, vectorised over
  packed ``source * n + target`` keys.

:func:`load_table_files` is the common loader for *real* dump files (LSQB /
Hetionet CSV or TSV exports): one delimited file per relation, streamed in
chunks through the same builder.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database

#: Rows per generated/streamed chunk.  Large enough that per-chunk numpy
#: overhead is negligible, small enough that peak memory stays bounded by
#: the chunk (plus the accumulated table) even for very large scales.
DEFAULT_CHUNK_ROWS = 1 << 16


class ChunkedTableBuilder:
    """Accumulates numpy column chunks for one table, ingests them at once.

    ``append(columns)`` takes one equal-length array per attribute; chunks
    are concatenated per column at :meth:`ingest` time and handed to the
    database's columnar fast path.  The builder never zips columns into row
    tuples.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        primary_key: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.primary_key = primary_key
        self._chunks: List[Tuple[np.ndarray, ...]] = []
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    def append(self, columns: Sequence[np.ndarray]) -> None:
        """Add one chunk: one numpy array per attribute, equal lengths."""
        if len(columns) != len(self.attributes):
            raise ValueError(
                f"chunk has {len(columns)} columns, table {self.name!r} "
                f"has {len(self.attributes)} attributes"
            )
        arrays = tuple(np.asarray(column) for column in columns)
        lengths = {len(array) for array in arrays}
        if len(lengths) > 1:
            raise ValueError(f"ragged chunk for table {self.name!r}: lengths {lengths}")
        if arrays and len(arrays[0]) == 0:
            return
        self._chunks.append(arrays)
        self._rows += len(arrays[0]) if arrays else 0

    def columns(self) -> List[np.ndarray]:
        """The accumulated columns, concatenated across chunks."""
        if not self._chunks:
            return [np.empty(0, dtype=np.int64) for _ in self.attributes]
        return [
            np.concatenate([chunk[i] for chunk in self._chunks])
            for i in range(len(self.attributes))
        ]

    def ingest(self, database: Database):
        """Create the table in ``database`` from the accumulated chunks."""
        return database.create_table_columns(
            self.name,
            list(self.attributes),
            self.columns(),
            primary_key=self.primary_key,
        )


def chunk_sizes(total: int, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterable[int]:
    """Split ``total`` rows into generation chunk sizes."""
    while total > 0:
        step = min(total, chunk_rows)
        yield step
        total -= step


def generate_unique_edges(
    rng: np.random.Generator,
    num_nodes: int,
    num_edges: int,
    sample_source,
    sample_target,
    max_attempt_factor: int = 20,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` distinct non-loop edges, vectorised per chunk.

    ``sample_source(rng, n)`` / ``sample_target(rng, n)`` draw ``n`` node
    ids each (this is where callers inject skew).  Edges are deduplicated on
    the packed key ``source * num_nodes + target`` in *first-drawn* order —
    trimming the overshoot of the final chunk must not bias the kept edges
    toward low node ids (which are the hubs), so the sample distribution
    matches a one-at-a-time rejection sampler.  Sampling stops when the
    target count is reached or the attempt budget (mirroring the seed
    generators' ``attempts < num_edges * 20`` guard) runs out; the result
    is sorted by (source, target), matching the seed generators.
    """
    seen = np.empty(0, dtype=np.int64)  # first-seen order, deduplicated
    attempts = 0
    max_attempts = num_edges * max_attempt_factor
    stride = np.int64(num_nodes)
    while len(seen) < num_edges and attempts < max_attempts:
        deficit = num_edges - len(seen)
        # Oversample the deficit a little to absorb duplicates/loops without
        # drawing the whole attempt budget in one go.
        draw = min(chunk_rows, max_attempts - attempts, max(1024, 2 * deficit))
        attempts += draw
        sources = np.asarray(sample_source(rng, draw), dtype=np.int64)
        targets = np.asarray(sample_target(rng, draw), dtype=np.int64)
        keep = sources != targets
        packed = sources[keep] * stride + targets[keep]
        combined = np.concatenate((seen, packed))
        _, first = np.unique(combined, return_index=True)
        first.sort()
        seen = combined[first]
    result = np.sort(seen[:num_edges])
    return result // stride, result % stride


# -- real dump files -------------------------------------------------------


def load_table_files(
    database: Database,
    path: str,
    schema: Dict[str, Tuple[Sequence[str], Optional[str]]],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Database:
    """Load delimited dump files (one per relation) into ``database``.

    ``schema`` maps each table name to ``(attributes, primary_key)``; for
    every table a file ``<name>.csv`` or ``<name>.tsv`` (optionally with a
    header row naming the attributes, in any order) must exist under
    ``path``.  A column whose every value parses as a (64-bit) integer is
    ingested as integers — LSQB and Hetionet dumps are id/id edge files —
    any other column stays strings.  The int-vs-string decision is made
    once per *whole* column, never per chunk, so a late non-numeric value
    cannot split one logical column into mixed types that silently fail to
    join.  Files are streamed in ``chunk_rows``-sized chunks through the
    columnar ingest path.
    """
    for name, (attributes, primary_key) in schema.items():
        file_path = _find_table_file(path, name)
        builder = ChunkedTableBuilder(name, attributes, primary_key=primary_key)
        for chunk in _read_delimited_chunks(file_path, attributes, chunk_rows):
            builder.append(chunk)
        database.create_table_columns(
            name,
            list(attributes),
            [_coerce_column(column) for column in builder.columns()],
            primary_key=primary_key,
        )
    return database


def _find_table_file(path: str, name: str) -> str:
    for extension in (".csv", ".tsv", ".txt"):
        candidate = os.path.join(path, name + extension)
        if os.path.exists(candidate):
            return candidate
    raise FileNotFoundError(
        f"no dump file for table {name!r} under {path!r} "
        f"(expected {name}.csv / {name}.tsv)"
    )


def _coerce_column(column: np.ndarray) -> np.ndarray:
    """An int64 version of a raw string column, or the strings unchanged.

    ``OverflowError`` (an id past 2^63-1) falls back to strings too — a
    partially-converted column would be worse than a slow one.
    """
    try:
        return np.array([int(v) for v in column.tolist()], dtype=np.int64)
    except (ValueError, OverflowError):
        return column


def _read_delimited_chunks(
    file_path: str, attributes: Sequence[str], chunk_rows: int
) -> Iterable[List[np.ndarray]]:
    delimiter = "\t" if file_path.endswith(".tsv") else ","
    with open(file_path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            return
        header = [part.strip() for part in first.rstrip("\n").split(delimiter)]
        if set(header) == set(attributes):
            order = [header.index(a) for a in attributes]
            pending: List[List[str]] = []
        else:
            # No header: the file's column order must match the schema.
            if len(header) != len(attributes):
                raise ValueError(
                    f"{file_path}: {len(header)} columns, schema has "
                    f"{len(attributes)}"
                )
            order = list(range(len(attributes)))
            pending = [header]
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            pending.append([part.strip() for part in line.split(delimiter)])
            if len(pending) >= chunk_rows:
                yield _chunk_columns(pending, order)
                pending = []
        if pending:
            yield _chunk_columns(pending, order)


def _chunk_columns(rows: List[List[str]], order: List[int]) -> List[np.ndarray]:
    # Raw strings at this stage; int-vs-string coercion happens once over
    # the whole accumulated column in load_table_files.
    return [np.array([row[i] for row in rows], dtype=object) for i in order]
