"""An LSQB-like workload: the social-network query ``q_lb``.

LSQB ("Labelled Subgraph Query Benchmark") models a social network; the
paper's query ``q_lb`` (Appendix D.2, Listing 6) joins three city aliases in
the same country, two persons located in two of those cities, and a
knows-edge between the persons.  We generate a small synthetic network with
the same schema: a few countries, cities clustered into countries, persons
clustered into cities and a skewed knows-graph.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query

#: Query ``q_lb`` exactly as printed in Appendix D.2 (Listing 6).
QLB_SQL = """
SELECT MIN(pkp1.Person1Id)
FROM City AS CityA
JOIN City AS CityB
  ON CityB.isPartOf_CountryId = CityA.isPartOf_CountryId
JOIN City AS CityC
  ON CityC.isPartOf_CountryId = CityA.isPartOf_CountryId
JOIN Person AS PersonA
  ON PersonA.isLocatedIn_CityId = CityA.CityId
JOIN Person AS PersonB
  ON PersonB.isLocatedIn_CityId = CityB.CityId
JOIN Person_knows_Person AS pkp1
  ON pkp1.Person1Id = PersonA.PersonId
 AND pkp1.Person2Id = PersonB.PersonId
"""


def build_lsqb_database(scale: float = 1.0, seed: Optional[int] = 23) -> Database:
    """Generate the synthetic LSQB-like social network."""
    rng = random.Random(seed)
    num_countries = max(3, int(12 * scale))
    num_cities = max(6, int(120 * scale))
    num_persons = max(20, int(700 * scale))
    num_knows = max(40, int(2200 * scale))

    database = Database()
    database.create_table_columns(
        "City",
        ["CityId", "isPartOf_CountryId"],
        [
            list(range(num_cities)),
            [rng.randrange(num_countries) for _ in range(num_cities)],
        ],
        primary_key="CityId",
    )
    database.create_table_columns(
        "Person",
        ["PersonId", "isLocatedIn_CityId"],
        [
            list(range(num_persons)),
            [rng.randrange(num_cities) for _ in range(num_persons)],
        ],
        primary_key="PersonId",
    )
    knows = set()
    attempts = 0
    while len(knows) < num_knows and attempts < num_knows * 20:
        attempts += 1
        a = rng.randrange(num_persons)
        b = rng.randrange(num_persons)
        if a != b:
            knows.add((a, b))
    edges = sorted(knows)
    database.create_table_columns(
        "Person_knows_Person",
        ["Person1Id", "Person2Id"],
        [[a for a, _ in edges], [b for _, b in edges]],
    )
    return database


def lsqb_query_qlb(database: Database) -> ConjunctiveQuery:
    """The conjunctive query for ``q_lb`` resolved against the database schema."""
    return parse_select_query(QLB_SQL, database, name="q_lb")
