"""An LSQB-like workload: the social-network query ``q_lb``.

LSQB ("Labelled Subgraph Query Benchmark") models a social network; the
paper's query ``q_lb`` (Appendix D.2, Listing 6) joins three city aliases in
the same country, two persons located in two of those cities, and a
knows-edge between the persons.  We generate a synthetic network with the
same schema: a few countries, cities clustered into countries, persons
clustered into cities and a deduplicated knows-graph.

Generation is deterministic, seeded and chunked (numpy PCG64 streams into
the columnar ingest path — see :mod:`repro.workloads.ingest`); real LSQB
dump files can be loaded instead through
:meth:`repro.workloads.registry.WorkloadEntry.load_dump` against
:data:`LSQB_SCHEMA`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.db.database import Database
from repro.db.query import ConjunctiveQuery
from repro.db.sqlish import parse_select_query
from repro.workloads.ingest import (
    ChunkedTableBuilder,
    chunk_sizes,
    generate_unique_edges,
)

#: Query ``q_lb`` exactly as printed in Appendix D.2 (Listing 6).
QLB_SQL = """
SELECT MIN(pkp1.Person1Id)
FROM City AS CityA
JOIN City AS CityB
  ON CityB.isPartOf_CountryId = CityA.isPartOf_CountryId
JOIN City AS CityC
  ON CityC.isPartOf_CountryId = CityA.isPartOf_CountryId
JOIN Person AS PersonA
  ON PersonA.isLocatedIn_CityId = CityA.CityId
JOIN Person AS PersonB
  ON PersonB.isLocatedIn_CityId = CityB.CityId
JOIN Person_knows_Person AS pkp1
  ON pkp1.Person1Id = PersonA.PersonId
 AND pkp1.Person2Id = PersonB.PersonId
"""

#: Bump when generated data changes for a fixed ``(scale, seed)``.
GENERATOR_VERSION = 2

#: ``table -> (attributes, primary_key)`` — also the dump-file schema.
LSQB_SCHEMA: Dict[str, Tuple[Sequence[str], Optional[str]]] = {
    "City": (("CityId", "isPartOf_CountryId"), "CityId"),
    "Person": (("PersonId", "isLocatedIn_CityId"), "PersonId"),
    "Person_knows_Person": (("Person1Id", "Person2Id"), None),
}


def build_lsqb_database(scale: float = 1.0, seed: Optional[int] = 23) -> Database:
    """Generate the synthetic LSQB-like social network."""
    rng = np.random.default_rng(seed)
    num_countries = max(3, int(12 * scale))
    num_cities = max(6, int(120 * scale))
    num_persons = max(20, int(700 * scale))
    num_knows = max(40, int(2200 * scale))

    database = Database()

    city = ChunkedTableBuilder("City", *LSQB_SCHEMA["City"])
    for step in chunk_sizes(num_cities):
        start = len(city)
        city.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                rng.integers(0, num_countries, step),
            ]
        )
    city.ingest(database)

    person = ChunkedTableBuilder("Person", *LSQB_SCHEMA["Person"])
    for step in chunk_sizes(num_persons):
        start = len(person)
        person.append(
            [
                np.arange(start, start + step, dtype=np.int64),
                rng.integers(0, num_cities, step),
            ]
        )
    person.ingest(database)

    def uniform(rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(0, num_persons, count)

    sources, targets = generate_unique_edges(
        rng, num_persons, num_knows, uniform, uniform
    )
    knows = ChunkedTableBuilder(
        "Person_knows_Person", *LSQB_SCHEMA["Person_knows_Person"]
    )
    knows.append([sources, targets])
    knows.ingest(database)
    return database


def lsqb_query_qlb(database: Database) -> ConjunctiveQuery:
    """The conjunctive query for ``q_lb`` resolved against the database schema."""
    return parse_select_query(QLB_SQL, database, name="q_lb")
