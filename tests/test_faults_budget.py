"""Unit tests for the resource-governance primitives.

Covers :mod:`repro.runtime.budget` (Budget / SolveOutcome / BudgetExceeded)
and :mod:`repro.runtime.faults` (FakeClock / FaultPlan / file corruption
helpers).  The solver-facing behaviour — every governed loop honouring its
budget — lives in ``test_faults_solvers.py``.
"""

import os

import pytest

from repro.runtime.budget import (
    Budget,
    BudgetExceeded,
    DEFAULT_CHECK_INTERVAL,
    EXIT_CODES,
    STATUS_BUDGET,
    STATUS_COMPLETE,
    STATUS_DEADLINE,
    STATUS_INTERRUPTED,
    SolveOutcome,
    completed_outcome,
)
from repro.runtime.faults import (
    FakeClock,
    FaultPlan,
    flip_byte,
    inject,
    maybe_fail,
    truncate_file,
)


class TestWorkBudget:
    def test_work_cap_is_exact(self):
        budget = Budget(max_work=5)
        for _ in range(4):
            budget.tick()
        assert not budget.exhausted
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.tick()
        assert budget.work == 5
        assert budget.status == STATUS_BUDGET
        assert excinfo.value.status == STATUS_BUDGET
        assert excinfo.value.work == 5

    def test_exhaustion_is_sticky(self):
        budget = Budget(max_work=3)
        assert budget.try_tick(3) is False
        work_at_exhaustion = budget.work
        for _ in range(10):
            assert budget.try_tick() is False
        # No further work is counted once exhausted: a partially unwound
        # call stack cannot silently resume.
        assert budget.work == work_at_exhaustion

    def test_zero_work_budget_fails_first_tick(self):
        budget = Budget(max_work=0)
        assert budget.try_tick() is False
        assert budget.status == STATUS_BUDGET

    def test_multi_unit_ticks_accumulate(self):
        budget = Budget(max_work=100)
        budget.tick(30)
        budget.tick(30)
        assert budget.work == 60
        assert budget.remaining_work() == 40
        with pytest.raises(BudgetExceeded):
            budget.tick(40)

    def test_unlimited_budget_never_exhausts(self):
        budget = Budget()
        for _ in range(5000):
            budget.tick()
        assert budget.status == STATUS_COMPLETE
        assert budget.remaining_work() is None

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_work=-1)
        with pytest.raises(ValueError):
            Budget(deadline=-0.5)


class TestDeadline:
    def test_deadline_detected_on_amortised_clock_read(self):
        clock = FakeClock(auto_advance=1.0)
        budget = Budget(deadline=10.0, clock=clock, check_interval=4)
        ticks = 0
        with pytest.raises(BudgetExceeded) as excinfo:
            while True:
                budget.tick()
                ticks += 1
        assert excinfo.value.status == STATUS_DEADLINE
        # Clock reads only happen every check_interval ticks, so detection
        # lands on a multiple of the interval (the raising tick itself is
        # not counted by the loop).
        assert (ticks + 1) % 4 == 0

    def test_detection_within_one_amortization_window(self):
        clock = FakeClock()
        interval = 8
        budget = Budget(deadline=10.0, clock=clock, check_interval=interval)
        for _ in range(100):
            budget.tick()
        clock.advance(20.0)  # the deadline is now long gone
        extra = 0
        with pytest.raises(BudgetExceeded):
            while True:
                budget.tick()
                extra += 1
        # At most one window of ticks passes between the deadline being
        # crossed and the budget noticing.
        assert extra <= interval

    def test_hot_loop_reads_clock_sparingly(self):
        clock = FakeClock()
        budget = Budget(deadline=100.0, clock=clock, check_interval=64)
        reads_at_start = clock.reads
        for _ in range(64 * 10):
            budget.tick()
        assert clock.reads - reads_at_start == 10

    def test_charge_always_reads_the_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock, check_interval=1000)
        clock.advance(10.0)
        # A plain tick would coast for ~1000 iterations; charge must not.
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge(1)
        assert excinfo.value.status == STATUS_DEADLINE

    def test_check_raises_without_counting_work(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        budget.check()  # within deadline: no-op
        clock.advance(6.0)
        with pytest.raises(BudgetExceeded):
            budget.check()
        assert budget.work == 0

    def test_default_check_interval_is_amortised(self):
        assert DEFAULT_CHECK_INTERVAL >= 256

    def test_zero_deadline_exhausts_at_first_clock_read(self):
        clock = FakeClock(auto_advance=0.001)
        budget = Budget(deadline=0.0, clock=clock, check_interval=1)
        with pytest.raises(BudgetExceeded):
            budget.tick()


class TestOutcome:
    def test_outcome_reflects_budget_state(self):
        clock = FakeClock()
        budget = Budget(deadline=30.0, max_work=100, clock=clock)
        budget.tick(7)
        clock.advance(1.5)
        outcome = budget.outcome()
        assert outcome.status == STATUS_COMPLETE
        assert outcome.complete and not outcome.partial
        assert outcome.work == 7
        assert outcome.elapsed == pytest.approx(1.5)
        assert outcome.deadline == 30.0
        assert outcome.max_work == 100
        assert outcome.exit_code == 0

    def test_mark_interrupted(self):
        budget = Budget(max_work=100)
        budget.mark_interrupted()
        assert budget.status == STATUS_INTERRUPTED
        assert budget.outcome().exit_code == 130
        # An interrupt does not overwrite an earlier exhaustion status.
        exhausted = Budget(max_work=0)
        exhausted.try_tick()
        exhausted.mark_interrupted()
        assert exhausted.status == STATUS_BUDGET

    def test_exit_codes_follow_unix_conventions(self):
        assert EXIT_CODES[STATUS_COMPLETE] == 0
        assert EXIT_CODES[STATUS_DEADLINE] == 124  # timeout(1)
        assert EXIT_CODES[STATUS_BUDGET] == 125
        assert EXIT_CODES[STATUS_INTERRUPTED] == 130  # 128 + SIGINT
        assert len(set(EXIT_CODES.values())) == len(EXIT_CODES)

    def test_describe_is_one_line(self):
        outcome = SolveOutcome(
            status=STATUS_DEADLINE, work=42, elapsed=1.25, deadline=1.0
        )
        line = outcome.describe()
        assert "\n" not in line
        assert "outcome: deadline" in line
        assert "work=42" in line
        assert "deadline=1" in line

    def test_completed_outcome(self):
        outcome = completed_outcome(work=3, elapsed=0.5)
        assert outcome.complete
        assert outcome.work == 3
        assert outcome.exit_code == 0


class TestFakeClock:
    def test_manual_and_auto_advance(self):
        clock = FakeClock(start=5.0, auto_advance=0.25)
        assert clock() == 5.0
        assert clock() == 5.25
        clock.advance(10.0)
        assert clock() == pytest.approx(15.5)
        assert clock.reads == 3


class TestFaultPlan:
    def test_scheduled_call_fails_others_pass(self):
        plan = FaultPlan()
        boom = OSError("boom")
        plan.fail("io.read", exc=boom, call=2)
        plan.fire("io.read")  # call 1: fine
        with pytest.raises(OSError):
            plan.fire("io.read")  # call 2: scheduled
        plan.fire("io.read")  # call 3: fine again
        assert plan.calls("io.read") == 3
        assert plan.remaining() == {}

    def test_times_schedules_a_range_of_calls(self):
        plan = FaultPlan().fail("s", call=1, times=3)
        for _ in range(3):
            with pytest.raises(OSError):
                plan.fire("s")
        plan.fire("s")
        assert plan.remaining() == {}

    def test_remaining_reports_unfired_faults(self):
        plan = FaultPlan().fail("never.hit", call=5)
        assert plan.remaining() == {"never.hit": 1}

    def test_maybe_fail_is_noop_without_plan(self):
        maybe_fail("anything.at.all")

    def test_inject_installs_and_removes_plan(self):
        with inject() as plan:
            plan.fail("site", call=1)
            with pytest.raises(OSError):
                maybe_fail("site")
        maybe_fail("site")  # plan uninstalled: no-op

    def test_nested_inject_rejected(self):
        with inject():
            with pytest.raises(RuntimeError):
                with inject():
                    pass


class TestFileCorruptionHelpers:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"0123456789")
        assert truncate_file(str(path), fraction=0.5) == 5
        assert path.read_bytes() == b"01234"
        assert truncate_file(str(path), keep_bytes=2) == 2
        assert path.read_bytes() == b"01"

    def test_flip_byte(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(bytes([0x00, 0xAB, 0xFF]))
        flip_byte(str(path), 1)
        assert path.read_bytes() == bytes([0x00, 0x54, 0xFF])
        flip_byte(str(path), 1)
        assert path.read_bytes() == bytes([0x00, 0xAB, 0xFF])
        with pytest.raises(ValueError):
            flip_byte(str(path), 99)
