"""Fault-injection tests for the snapshot cache.

Torn writes, truncated and bit-rotted files, out-of-space errors and
malicious pickles: none of them may ever escape the snapshot layer as a
wrong database.  The only acceptable behaviours are (a) a clean
:class:`StaleSnapshotError` that ``load_or_build`` converts into a
quarantine + rebuild, or (b) a database identical to what the builder
produces.
"""

import errno
import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.db.database import Database
from repro.runtime.faults import flip_byte, inject, truncate_file
from repro.workloads.snapshot import (
    LOCK_SUFFIX,
    QUARANTINE_SUFFIX,
    SNAPSHOT_VERSION,
    SnapshotCache,
    StaleSnapshotError,
    acquire_build_lock,
    load_snapshot,
    read_snapshot_meta,
    release_build_lock,
    save_snapshot,
)

_META_KEY = "__meta__"
_VALUES_KEY = "__interner_values__"


def small_database() -> Database:
    """A two-table database with string values (JSON interner encoding)."""
    database = Database()
    database.create_table(
        "R", ["a", "b"], [("x", 1), ("y", 2), ("z", 3)], primary_key="a"
    )
    database.create_table("S", ["b", "c"], [(1, "u"), (2, "v"), (3, "w")])
    return database


def int_database() -> Database:
    """An all-integer database (int64 interner encoding)."""
    database = Database()
    database.create_table("T", ["a", "b"], [(1, 10), (2, 20), (3, 30)])
    return database


def database_rows(database: Database):
    return {
        name: sorted(database.relation(name).rows)
        for name in database.relation_names()
    }


@pytest.fixture(params=[small_database, int_database], ids=["json", "int64"])
def any_database(request):
    return request.param()


def write(tmp_path, database, name="snap.npz"):
    path = str(tmp_path / name)
    save_snapshot(path, database, "wl", 1.0, 7, "abc123def456")
    return path


class TestRoundTrip:
    def test_round_trip_restores_rows(self, tmp_path, any_database):
        path = write(tmp_path, any_database)
        assert database_rows(load_snapshot(path)) == database_rows(any_database)

    def test_snapshot_contains_no_pickled_arrays(self, tmp_path):
        # Every array in a freshly written snapshot must load with
        # allow_pickle=False — including the JSON-encoded interner table.
        path = write(tmp_path, small_database())
        with np.load(path, allow_pickle=False) as archive:
            for key in archive.files:
                archive[key]  # raises ValueError on any object array

    def test_legacy_object_interner_still_loads(self, tmp_path):
        # Snapshots written before the pickle audit stored the interner's
        # JSON strings in an object-dtype array.  Only that one array may
        # go through the pickle fallback.
        database = small_database()
        path = write(tmp_path, database)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays[_VALUES_KEY] = arrays[_VALUES_KEY].astype(object)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        assert database_rows(load_snapshot(path)) == database_rows(database)


class TestCorruptFilesNeverEscape:
    def test_truncation_at_any_point_raises_or_roundtrips(self, tmp_path):
        database = small_database()
        reference = database_rows(database)
        path = write(tmp_path, database)
        size = os.path.getsize(path)
        for keep in [0, 1, size // 10, size // 4, size // 2, 3 * size // 4, size - 1]:
            torn = str(tmp_path / "torn.npz")
            with open(path, "rb") as src, open(torn, "wb") as dst:
                dst.write(src.read())
            truncate_file(torn, keep_bytes=keep)
            try:
                recovered = load_snapshot(torn)
            except StaleSnapshotError:
                continue  # clean refusal: the acceptable outcome
            assert database_rows(recovered) == reference

    def test_bit_rot_raises_or_roundtrips(self, tmp_path):
        database = small_database()
        reference = database_rows(database)
        path = write(tmp_path, database)
        size = os.path.getsize(path)
        for offset in range(50, size - 50, max(1, size // 13)):
            rotten = str(tmp_path / "rotten.npz")
            with open(path, "rb") as src, open(rotten, "wb") as dst:
                dst.write(src.read())
            flip_byte(rotten, offset)
            try:
                recovered = load_snapshot(rotten)
            except StaleSnapshotError:
                continue
            assert database_rows(recovered) == reference

    def test_malicious_pickled_column_is_rejected(self, tmp_path):
        # A column smuggled in as an object array (the vehicle for pickle
        # payloads) must be refused, not unpickled.
        database = small_database()
        path = write(tmp_path, database)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays[_META_KEY]))
        first_column = next(k for k in arrays if k.startswith("col::"))
        arrays[first_column] = np.asarray(
            [{"__reduce__": "never called, but never trusted"}], dtype=object
        )
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        assert meta["version"] == SNAPSHOT_VERSION  # failure is pickle, not version
        with pytest.raises(StaleSnapshotError):
            load_snapshot(path)

    def test_foreign_npz_is_a_stale_snapshot(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, payload=np.arange(3))
        with pytest.raises(StaleSnapshotError):
            read_snapshot_meta(path)
        with pytest.raises(StaleSnapshotError):
            load_snapshot(path)


class TestWriteFaults:
    def test_enospc_leaves_no_partial_and_no_temp(self, tmp_path):
        database = small_database()
        target = str(tmp_path / "cache" / "snap.npz")
        with inject() as plan:
            plan.fail(
                "snapshot.write",
                exc=OSError(errno.ENOSPC, "No space left on device"),
            )
            with pytest.raises(OSError):
                save_snapshot(target, database, "wl", 1.0, 7, "abc123def456")
            assert plan.remaining() == {}
        # Neither a half-written snapshot nor a stray temp file remains.
        assert os.listdir(tmp_path / "cache") == []
        # The next attempt (space freed) succeeds normally.
        save_snapshot(target, database, "wl", 1.0, 7, "abc123def456")
        assert database_rows(load_snapshot(target)) == database_rows(database)

    def test_failed_store_does_not_mask_build_result(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        with inject() as plan:
            plan.fail("snapshot.write", exc=OSError(errno.ENOSPC, "full"))
            with pytest.raises(OSError):
                cache.load_or_build("wl", 1.0, 7, "abc123def456", small_database)
        assert os.listdir(tmp_path / "cache") == []


class TestQuarantine:
    def _key(self):
        return ("wl", 1.0, 7, "abc123def456")

    def test_corrupt_snapshot_is_quarantined_and_rebuilt(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        database, hit = cache.load_or_build(*self._key(), small_database)
        assert not hit
        path = cache.path_for(*self._key())
        truncate_file(path, fraction=0.3)
        rebuilt, hit = cache.load_or_build(*self._key(), small_database)
        assert not hit
        assert database_rows(rebuilt) == database_rows(database)
        # The torn file sits in quarantine, the fresh snapshot is valid.
        assert cache.quarantined() == [path + QUARANTINE_SUFFIX]
        assert database_rows(load_snapshot(path)) == database_rows(database)
        # And the rebuilt snapshot is a hit from now on.
        _, hit = cache.load_or_build(*self._key(), small_database)
        assert hit

    def test_scripted_read_fault_quarantines_and_rebuilds(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        database, _ = cache.load_or_build(*self._key(), small_database)
        with inject() as plan:
            plan.fail("snapshot.read", exc=OSError(errno.EIO, "I/O error"))
            rebuilt, hit = cache.load_or_build(*self._key(), small_database)
        assert not hit
        assert database_rows(rebuilt) == database_rows(database)
        assert len(cache.quarantined()) == 1
        # With the fault gone the rebuilt snapshot loads cleanly.
        _, hit = cache.load_or_build(*self._key(), small_database)
        assert hit

    def test_quarantine_replaces_previous_quarantine(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        for _ in range(2):
            cache.load_or_build(*self._key(), small_database)
            truncate_file(cache.path_for(*self._key()), fraction=0.5)
            cache.load_or_build(*self._key(), small_database)
        assert len(cache.quarantined()) == 1

    def test_entries_ignore_quarantined_files(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        cache.load_or_build(*self._key(), small_database)
        truncate_file(cache.path_for(*self._key()), fraction=0.5)
        cache.load_or_build(*self._key(), small_database)
        assert len(cache.entries()) == 1  # the valid rebuild only
        assert not cache.entries()[0].stale

    def test_clean_removes_snapshots_quarantine_and_temp_files(self, tmp_path):
        directory = tmp_path / "cache"
        cache = SnapshotCache(str(directory))
        cache.load_or_build(*self._key(), small_database)
        truncate_file(cache.path_for(*self._key()), fraction=0.5)
        cache.load_or_build(*self._key(), small_database)
        (directory / "leftover.npz.tmpXYZ").write_bytes(b"partial")
        (directory / "stuck.npz.lock").write_text("12345")
        report = cache.clean()
        assert report.total == 4
        assert (report.snapshots, report.quarantined, report.temp, report.locks) == (
            1, 1, 1, 1,
        )
        assert os.listdir(directory) == []
        assert cache.quarantined() == []
        assert cache.locks() == []

    def test_quarantine_missing_file_is_a_noop(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        assert cache.quarantine(str(tmp_path / "cache" / "ghost.npz"), "gone") is None


class TestBuildLock:
    def _key(self):
        return ("wl", 1.0, 7, "abc123def456")

    def test_cold_build_takes_and_releases_the_lock(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        path = cache.path_for(*self._key())
        seen = {}

        def builder():
            seen["locked"] = os.path.exists(path + LOCK_SUFFIX)
            return small_database()

        _, hit = cache.load_or_build(*self._key(), builder)
        assert not hit
        assert seen["locked"]  # held during the build...
        assert not os.path.exists(path + LOCK_SUFFIX)  # ...released after

    def test_stale_lock_of_a_dead_holder_is_taken_over(self, tmp_path):
        path = str(tmp_path / "snap.npz")
        # A pid that cannot exist: max_pid is bounded well below 2**30.
        with open(path + LOCK_SUFFIX, "w", encoding="utf-8") as handle:
            handle.write(str(2**30))
        assert acquire_build_lock(path, timeout=1.0)
        with open(path + LOCK_SUFFIX, "r", encoding="utf-8") as handle:
            assert int(handle.read()) == os.getpid()
        release_build_lock(path)
        assert not os.path.exists(path + LOCK_SUFFIX)

    def test_live_lock_times_out_instead_of_stealing(self, tmp_path):
        path = str(tmp_path / "snap.npz")
        assert acquire_build_lock(path)  # held by this (alive) process
        try:
            assert not acquire_build_lock(path, timeout=0.2)
            with open(path + LOCK_SUFFIX, "r", encoding="utf-8") as handle:
                assert int(handle.read()) == os.getpid()  # untouched
        finally:
            release_build_lock(path)

    def test_lock_fault_falls_back_to_an_unlocked_build(self, tmp_path):
        # The lock is best-effort: if taking it fails, load_or_build must
        # still build correctly under the atomic-write backstop.
        cache = SnapshotCache(str(tmp_path / "cache"))
        with inject() as plan:
            plan.fail("snapshot.lock", exc=OSError(errno.EACCES, "denied"))
            database, hit = cache.load_or_build(*self._key(), small_database)
            assert plan.remaining() == {}
        assert not hit
        assert database_rows(database) == database_rows(small_database())
        assert not os.path.exists(cache.path_for(*self._key()) + LOCK_SUFFIX)
        # The snapshot written without the lock is a normal hit afterwards.
        _, hit = cache.load_or_build(*self._key(), small_database)
        assert hit

    def test_waiter_loads_the_holders_build_instead_of_rebuilding(self, tmp_path):
        cache = SnapshotCache(str(tmp_path / "cache"))
        path = cache.path_for(*self._key())
        # Simulate "another process built while we waited": the lock exists
        # and is stale (dead pid), and the snapshot appears before our
        # build would run.  After takeover, load_or_build re-checks the
        # cache and must return a hit without calling the builder.
        cache.store(*self._key(), small_database())
        os.makedirs(os.path.dirname(path), exist_ok=True)

        def explode():
            raise AssertionError("builder must not run: snapshot exists")

        database, hit = cache.load_or_build(*self._key(), explode)
        assert hit
        assert database_rows(database) == database_rows(small_database())

    def test_release_is_idempotent(self, tmp_path):
        path = str(tmp_path / "snap.npz")
        release_build_lock(path)  # nothing to release: no error
        assert acquire_build_lock(path)
        release_build_lock(path)
        release_build_lock(path)


class TestConcurrentBuilds:
    def test_two_processes_converge_on_one_valid_snapshot(self, tmp_path):
        # Two builders race load_or_build on an empty cache: both must
        # succeed, and whatever ends up on disk must be a valid snapshot
        # (atomic temp + rename means last-writer-wins, never a mix).
        script = textwrap.dedent(
            """
            import sys
            from repro.db.database import Database
            from repro.workloads.snapshot import SnapshotCache

            def build():
                database = Database()
                database.create_table(
                    "R", ["a", "b"], [("x", 1), ("y", 2), ("z", 3)]
                )
                return database

            cache = SnapshotCache(sys.argv[1])
            database, hit = cache.load_or_build(
                "wl", 1.0, 7, "abc123def456", build
            )
            assert sorted(database.relation("R").rows) == [
                ("x", 1), ("y", 2), ("z", 3)
            ]
            """
        )
        directory = str(tmp_path / "cache")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, directory],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for process in processes:
            _, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr.decode()
        cache = SnapshotCache(directory)
        snapshots = [e for e in cache.entries() if not e.stale]
        assert len(snapshots) == 1
        recovered = load_snapshot(snapshots[0].path)
        assert sorted(recovered.relation("R").rows) == [
            ("x", 1), ("y", 2), ("z", 3)
        ]
