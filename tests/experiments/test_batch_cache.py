"""The batch runtime's binding to the decomposition cache.

Covers the task-spec contract (each spec embeds its canonical
``SolveRequest`` wire payload), the worker shell (``execute_batch_task``),
the supervisor's pre-spawn probe (``BatchSolveCache``) and the hardened
``BatchCertifier`` — including the end-to-end path where a warmed cache
satisfies a supervised task without any worker at all.
"""

import pytest

from repro.core.cache import DecompositionCache
from repro.core.solve import SolveRequest, execute
from repro.experiments.harness import (
    BatchCertifier,
    BatchSolveCache,
    batch_task_specs,
    benchmark_data_key,
    execute_batch_task,
)
from repro.runtime.supervisor import RetryPolicy, Supervisor
from repro.workloads.registry import benchmark_query

QUERY = "q_hto"
SCALE = 0.3


def forbidden_runner(payload):
    raise AssertionError("the supervisor must not spawn a worker for this task")


@pytest.fixture(scope="module")
def spec():
    (spec,) = batch_task_specs([QUERY], scale=SCALE)
    return spec


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory, spec):
    """A cache already holding the spec's solve (worker-style store)."""
    store = DecompositionCache(str(tmp_path_factory.mktemp("ctd-cache")))
    entry = benchmark_query(QUERY)
    database, query = entry.load(scale=SCALE)
    request = SolveRequest.from_payload(spec["request"])
    result = execute(request, database=database, query=query, cache=store)
    assert result.cache_status == "stored"
    return store


class TestTaskSpecs:
    def test_spec_embeds_a_canonical_request(self, spec):
        assert spec["kind"] == "solve" and spec["query"] == QUERY
        request = SolveRequest.from_payload(spec["request"])
        assert request.mode == "enumerate" and request.constraint == "concov"
        assert request.preference == "cardinalities"
        assert request.width == benchmark_query(QUERY).width == spec["width"]
        assert request.data_key == benchmark_data_key(
            benchmark_query(QUERY), SCALE, None
        )
        assert request.cache_kind() is not None

    def test_data_key_pins_the_generator_coordinates(self):
        entry = benchmark_query(QUERY)
        default = benchmark_data_key(entry, 0.3, None)
        assert entry.dataset in default and "scale=0.3" in default
        assert benchmark_data_key(entry, 0.3, 99) != default
        assert benchmark_data_key(entry, 0.5, None) != default


class TestWorkerShell:
    def test_malformed_request_is_a_structured_failure(self):
        result = execute_batch_task({"query": QUERY, "request": {"oops": 1}})
        assert result["ok"] is False and result["reason"] == "malformed-request"

    def test_decide_mode_degrades_the_request(self, spec):
        result = execute_batch_task({**spec, "mode": "decide"})
        assert result["ok"] is True and result["mode"] == "decide"
        assert result["decided"] is True
        assert result["decomposition"] is not None


class TestBatchSolveCache:
    def test_guards_report_a_miss(self, spec, tmp_path):
        probe = BatchSolveCache(cache=None)
        assert probe.lookup(spec) is None  # no cache resolved
        probe = BatchSolveCache(cache=str(tmp_path))
        assert probe.lookup("not a task") is None
        assert probe.lookup({"kind": "toy"}) is None
        assert probe.lookup({"kind": "solve"}) is None  # no request payload
        assert probe.lookup({**spec, "request": {"bad": True}}) is None
        assert probe.lookup(spec) is None  # cold cache: honest miss

    def test_hit_is_the_worker_wire_format(self, spec, warm_store):
        wire = BatchSolveCache(cache=warm_store).lookup(spec)
        assert wire is not None
        assert wire["ok"] is True and wire["query"] == QUERY
        assert wire["mode"] == "ranked" and wire["level"] == "cache"
        assert wire["width"] == spec["width"]
        assert wire["decomposition"] is not None
        assert wire["cache"] == "hit"
        # And the parent-side certifier accepts it like any worker result.
        assert BatchCertifier()(spec, wire)


class TestBatchCertifier:
    def test_tampered_request_hypergraph_is_rejected(self, spec):
        certifier = BatchCertifier()
        tampered = {**spec, "request": dict(spec["request"])}
        hypergraph = dict(tampered["request"]["hypergraph"])
        edges = dict(hypergraph["edges"])
        edges.popitem()
        hypergraph["edges"] = edges
        tampered["request"] = {**tampered["request"], "hypergraph": hypergraph}
        certification = certifier(tampered, {"ok": True, "decomposition": None})
        assert not certification
        assert any("trusted" in reason for reason in certification.violations)

    def test_malformed_request_is_rejected(self, spec):
        certification = BatchCertifier()(
            {**spec, "request": {"oops": 1}}, {"ok": True}
        )
        assert not certification
        assert any("malformed" in reason for reason in certification.violations)


class TestSupervisedCacheHit:
    def test_warm_cache_satisfies_the_task_with_no_worker(self, spec, warm_store):
        supervisor = Supervisor(
            task_runner="tests.experiments.test_batch_cache:forbidden_runner",
            isolation="inline",
            retry=RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0),
            certifier=BatchCertifier(),
            cache_lookup=BatchSolveCache(cache=warm_store).lookup,
        )
        report = supervisor.run([spec])
        result = report.results[0]
        assert result.status == "ok" and result.level == "cache"
        assert result.attempts == 0 and not result.failures
        assert result.result["decomposition"] is not None
        assert report.exit_code == 0
