"""Integration tests for the experiment harness and figure generators.

These run the full pipeline (candidate bags → ranked CTDs → Yannakakis
execution → baseline) at a reduced data scale so the whole module stays
fast; the benchmark targets run the same code at full scale.
"""

import pytest

from repro.experiments.harness import QueryExperiment
from repro.experiments.report import format_figure_rows, format_table
from repro.experiments import figures
from repro.workloads.registry import benchmark_query

SCALE = 0.15


@pytest.fixture(scope="module")
def qds_experiment():
    entry = benchmark_query("q_ds")
    database, query = entry.load(scale=SCALE)
    return QueryExperiment(database, query, entry.width, name="q_ds")


@pytest.fixture(scope="module")
def hto3_experiment():
    entry = benchmark_query("q_hto3")
    database, query = entry.load(scale=SCALE)
    return QueryExperiment(database, query, entry.width, name="q_hto3")


class TestQueryExperiment:
    def test_candidate_bag_counts(self, qds_experiment):
        assert len(qds_experiment.soft_bags) > 0
        assert qds_experiment.concov_bags <= qds_experiment.soft_bags

    def test_ranked_decompositions_and_evaluation(self, qds_experiment):
        decompositions, elapsed = qds_experiment.ranked_decompositions(limit=4)
        assert decompositions and elapsed >= 0
        evaluations = qds_experiment.evaluate(decompositions)
        results = {evaluation.metrics.result for evaluation in evaluations}
        assert len(results) == 1
        baseline = qds_experiment.baseline()
        assert results == {baseline.result}

    def test_decompositions_respect_concov(self, qds_experiment):
        decompositions, _ = qds_experiment.ranked_decompositions(limit=4, constrained=True)
        constraint = qds_experiment.concov_constraint()
        for decomposition in decompositions:
            assert constraint.holds_recursively(decomposition)

    def test_random_decompositions(self, hto3_experiment):
        constrained = hto3_experiment.random_decompositions(3, constrained=True)
        unconstrained = hto3_experiment.random_decompositions(3, constrained=False)
        assert len(constrained) <= 3 and len(unconstrained) <= 3
        assert constrained and unconstrained

    def test_concov_shw_matches_width(self, qds_experiment):
        assert qds_experiment.concov_shw(max_k=4) == 2

    def test_table1_row_fields(self, hto3_experiment):
        row = hto3_experiment.table1_row(top_n=3)
        assert row["query"] == "q_hto3"
        assert row["hypergraph_size"] == 4
        assert row["soft_bags"] >= row["concov_soft_bags"]
        assert row["top10_seconds"] >= 0


class TestReportRendering:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows, ["a", "b"])
        assert "a" in text and "10" in text and "-" in text

    def test_format_table_empty(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_format_figure_rows(self):
        text = format_figure_rows("Title", [{"x": 1}], ["x"], ["footer"])
        assert text.startswith("Title")
        assert "footer" in text


class TestFigureGenerators:
    def test_figure5_rows_shape(self):
        rows, baseline = figures.figure5_rows(scale=SCALE, limit=3)
        assert rows
        assert {"rank", "cost_cardinalities", "cost_estimates", "work"} <= set(rows[0])
        assert baseline["work"] > 0
        ranks = [row["rank"] for row in rows]
        assert ranks == sorted(ranks)

    def test_appendix_figure_rows(self):
        rows, baseline = figures.appendix_figure_rows("figure15", scale=SCALE, limit=3)
        assert rows and baseline is not None
        with pytest.raises(KeyError):
            figures.appendix_figure_rows("figure99")

    def test_width_hierarchy_rows(self):
        rows = figures.width_hierarchy_rows()
        h2_row = next(row for row in rows if "H2" in row["hypergraph"])
        assert h2_row["ghw"] == 2 and h2_row["shw"] == 2 and h2_row["hw"] == 3
        c5_row = next(row for row in rows if "C5" in row["hypergraph"])
        assert c5_row["hw"] == 2 and c5_row["concov_shw"] == 3

    def test_render_helpers_produce_text(self):
        assert "Figure 5" in figures.render_figure5(scale=SCALE, limit=2)
        assert "Table 1" in figures.render_table1(scale=SCALE)
