"""Shared fixtures for the test suite."""

import pytest

from repro.hypergraph.library import (
    cycle_hypergraph,
    four_cycle_query,
    hypergraph_h2,
    hypergraph_h3,
    hypergraph_h3_prime,
    triangle_hypergraph,
)
from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery


@pytest.fixture(autouse=True)
def _hermetic_ctd_cache(monkeypatch):
    """Keep the suite hermetic: never touch a shared on-disk CTD cache.

    Tests that exercise the decomposition cache opt back in by passing an
    explicit directory (``execute(..., cache=str(tmp_path))``) or an explicit
    :class:`~repro.core.cache.DecompositionCache` instance, both of which
    bypass the kill switch.
    """
    monkeypatch.setenv("REPRO_CTD_CACHE_OFF", "1")
    monkeypatch.delenv("REPRO_CTD_CACHE", raising=False)


@pytest.fixture
def h2():
    return hypergraph_h2()


@pytest.fixture
def h3():
    return hypergraph_h3()


@pytest.fixture
def h3_prime():
    return hypergraph_h3_prime()


@pytest.fixture
def triangle():
    return triangle_hypergraph()


@pytest.fixture
def four_cycle():
    return four_cycle_query()


@pytest.fixture
def c5():
    return cycle_hypergraph(5)


@pytest.fixture
def corrupt_snapshot_version():
    """Rewrite a snapshot file pretending another format version wrote it.

    Thin wrapper around :func:`repro.workloads.snapshot.rewrite_snapshot_version`
    (the one place that knows the on-disk layout), shared by the snapshot
    unit tests and the CLI stale-detection tests.
    """
    from repro.workloads.snapshot import rewrite_snapshot_version

    def _corrupt(path, version=-1):
        rewrite_snapshot_version(str(path), version)

    return _corrupt


@pytest.fixture
def triangle_database():
    """A tiny database for the triangle query R(x,y), S(y,z), T(z,x)."""
    database = Database()
    database.create_table("R", ["a", "b"], [(1, 1), (1, 2), (2, 3), (3, 1), (4, 4)])
    database.create_table("S", ["b", "c"], [(1, 2), (2, 3), (3, 1), (4, 4), (2, 2)])
    database.create_table("T", ["c", "a"], [(2, 1), (3, 2), (1, 3), (4, 4), (3, 1)])
    return database


@pytest.fixture
def triangle_query():
    """The triangle query over the ``triangle_database`` fixture."""
    return ConjunctiveQuery(
        atoms=[
            Atom("R", "R", ("a", "b"), ("x", "y")),
            Atom("S", "S", ("b", "c"), ("y", "z")),
            Atom("T", "T", ("c", "a"), ("z", "x")),
        ],
        aggregate=("COUNT", "x"),
        name="triangle",
    )


def brute_force_triangle_count(database):
    """Reference result for the triangle fixture query (nested loops)."""
    r = database.relation("R").rows
    s = database.relation("S").rows
    t = database.relation("T").rows
    count = 0
    for (x, y) in r:
        for (y2, z) in s:
            if y2 != y:
                continue
            for (z2, x2) in t:
                if z2 == z and x2 == x:
                    count += 1
    return count
