"""Unit tests for the HyperBench text format."""

import pytest

from repro.hypergraph.io import parse_hyperbench, to_hyperbench
from repro.hypergraph.library import hypergraph_h2


class TestParsing:
    def test_parse_simple(self):
        text = """
        % a comment
        R(x,y),
        S(y,z),
        T(z,x)
        """
        hypergraph = parse_hyperbench(text)
        assert hypergraph.num_edges() == 3
        assert hypergraph.edge("R").vertices == frozenset({"x", "y"})

    def test_parse_multiple_edges_per_line(self):
        hypergraph = parse_hyperbench("R(x,y), S(y,z)")
        assert hypergraph.num_edges() == 2

    def test_duplicate_edge_names_rejected(self):
        with pytest.raises(ValueError):
            parse_hyperbench("R(x,y),\nR(y,z)")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            parse_hyperbench("% only a comment")

    def test_edge_without_vertices_rejected(self):
        with pytest.raises(ValueError):
            parse_hyperbench("R()")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_hyperbench("not an edge at all")


class TestRoundTrip:
    def test_round_trip_preserves_structure(self, h2):
        text = to_hyperbench(h2)
        parsed = parse_hyperbench(text)
        assert parsed == h2

    def test_round_trip_triangle(self, triangle):
        assert parse_hyperbench(to_hyperbench(triangle)) == triangle
