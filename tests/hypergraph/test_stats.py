"""Unit tests for the hypergraph statistics module."""

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.stats import (
    degree,
    hypergraph_statistics,
    intersection_width,
    multi_intersection_width,
    rank,
)


class TestBasicStatistics:
    def test_rank_and_degree(self, h2):
        assert rank(h2) == 3
        assert degree(h2) == 3  # vertices a and b occur in three edges each

    def test_triangle_statistics(self, triangle):
        stats = hypergraph_statistics(triangle)
        assert stats == {
            "vertices": 3,
            "edges": 3,
            "size": 6,
            "rank": 2,
            "degree": 2,
            "intersection_width": 1,
            "triple_intersection_width": 0,
        }

    def test_intersection_width(self):
        hypergraph = Hypergraph(
            {"a": ["x", "y", "z"], "b": ["y", "z", "w"], "c": ["z", "w", "u"]}
        )
        assert intersection_width(hypergraph) == 2
        assert multi_intersection_width(hypergraph, 3) == 1

    def test_multi_intersection_requires_enough_edges(self, triangle):
        assert multi_intersection_width(triangle, 3) == 0
        single = Hypergraph({"a": ["x", "y"]})
        assert multi_intersection_width(single, 2) == 0
        with pytest.raises(ValueError):
            multi_intersection_width(triangle, 1)

    def test_statistics_keys_present_for_h3(self, h3):
        stats = hypergraph_statistics(h3)
        assert stats["edges"] == h3.num_edges()
        assert stats["rank"] == 5
        assert stats["degree"] >= 10
