"""Unit tests for the Hypergraph data structure."""

import pytest

from repro.hypergraph.hypergraph import Edge, Hypergraph


class TestEdge:
    def test_edge_is_a_named_vertex_set(self):
        edge = Edge("R", ["x", "y", "x"])
        assert edge.name == "R"
        assert edge.vertices == frozenset({"x", "y"})
        assert len(edge) == 2
        assert "x" in edge and "z" not in edge

    def test_edges_compare_by_name_and_vertices(self):
        assert Edge("R", ["x", "y"]) == Edge("R", ["y", "x"])
        assert Edge("R", ["x", "y"]) != Edge("S", ["x", "y"])
        assert Edge("R", ["x", "y"]) != Edge("R", ["x"])

    def test_edge_is_hashable(self):
        assert len({Edge("R", ["x"]), Edge("R", ["x"])}) == 1


class TestHypergraphConstruction:
    def test_from_mapping(self):
        hypergraph = Hypergraph({"R": ["x", "y"], "S": ["y", "z"]})
        assert hypergraph.num_edges() == 2
        assert hypergraph.vertices == frozenset({"x", "y", "z"})

    def test_from_edge_objects(self):
        hypergraph = Hypergraph([Edge("R", ["x", "y"]), Edge("S", ["y"])])
        assert hypergraph.edge("S").vertices == frozenset({"y"})

    def test_from_edge_sets(self):
        hypergraph = Hypergraph.from_edge_sets([["x", "y"], ["y", "z"]])
        assert set(hypergraph.edge_names) == {"e0", "e1"}

    def test_duplicate_edge_names_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph([("R", ["x"]), ("R", ["y"])])

    def test_extra_vertices_can_be_isolated(self):
        hypergraph = Hypergraph({"R": ["x"]}, vertices=["lonely"])
        assert hypergraph.has_isolated_vertices()
        assert "lonely" in hypergraph.vertices

    def test_no_isolated_vertices_by_default(self, h2):
        assert not h2.has_isolated_vertices()


class TestHypergraphAccessors:
    def test_incident_edges(self):
        hypergraph = Hypergraph({"R": ["x", "y"], "S": ["y", "z"], "T": ["z", "x"]})
        names = {edge.name for edge in hypergraph.incident_edges("y")}
        assert names == {"R", "S"}

    def test_size_counts_vertex_occurrences(self, triangle):
        assert triangle.size() == 6

    def test_vertices_of_union(self, triangle):
        edges = [triangle.edge("R"), triangle.edge("S")]
        assert triangle.vertices_of(edges) == frozenset({"x", "y", "z"})

    def test_contains_edge_name(self, triangle):
        assert "R" in triangle
        assert "missing" not in triangle

    def test_h2_shape(self, h2):
        assert h2.num_vertices() == 10
        assert h2.num_edges() == 8


class TestDerivedHypergraphs:
    def test_induced_subhypergraph_restricts_edges(self, triangle):
        induced = triangle.induced_subhypergraph({"x", "y"})
        assert induced.vertices == frozenset({"x", "y"})
        assert {edge.vertices for edge in induced.edges} == {
            frozenset({"x", "y"}),
            frozenset({"y"}),
            frozenset({"x"}),
        }

    def test_induced_subhypergraph_drops_empty_edges(self, triangle):
        induced = triangle.induced_subhypergraph({"x"})
        assert all(edge.vertices for edge in induced.edges)

    def test_restrict_edges(self, triangle):
        restricted = triangle.restrict_edges(["R", "T"])
        assert restricted.num_edges() == 2
        assert restricted.vertices == frozenset({"x", "y", "z"})

    def test_equality_ignores_edge_names(self):
        a = Hypergraph({"R": ["x", "y"]})
        b = Hypergraph({"Q": ["y", "x"]})
        assert a == b
        assert hash(a) == hash(b)
