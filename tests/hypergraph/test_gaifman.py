"""Unit tests for the Gaifman graph utilities."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.gaifman import gaifman_graph, is_clique, neighbours


class TestGaifmanGraph:
    def test_edges_become_cliques(self):
        hypergraph = Hypergraph({"R": ["x", "y", "z"]})
        adjacency = gaifman_graph(hypergraph)
        assert adjacency["x"] == frozenset({"y", "z"})
        assert adjacency["y"] == frozenset({"x", "z"})

    def test_no_self_loops(self, triangle):
        adjacency = gaifman_graph(triangle)
        for vertex, neighbourhood in adjacency.items():
            assert vertex not in neighbourhood

    def test_neighbours_matches_adjacency(self, h2):
        adjacency = gaifman_graph(h2)
        for vertex in h2.vertices:
            assert neighbours(h2, vertex) == adjacency[vertex]

    def test_is_clique(self, triangle):
        assert is_clique(triangle, {"x", "y"})
        assert is_clique(triangle, {"x", "y", "z"})
        assert is_clique(triangle, set())
        assert is_clique(triangle, {"x"})

    def test_four_cycle_diagonal_is_not_a_clique(self, four_cycle):
        assert not is_clique(four_cycle, {"w", "y"})
        assert not is_clique(four_cycle, {"x", "z"})
