"""Unit tests for [S]-components and connectivity."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.components import (
    component_vertices,
    connected_components,
    edge_components,
    is_connected,
    is_minimal_separator,
    lambda_components,
    separates,
    vertex_components,
)


def path_hypergraph(length):
    return Hypergraph({f"e{i}": [f"v{i}", f"v{i + 1}"] for i in range(length)})


class TestVertexComponents:
    def test_empty_separator_gives_connected_components(self):
        hypergraph = Hypergraph({"R": ["a", "b"], "S": ["c", "d"]})
        components = vertex_components(hypergraph)
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c", "d"]]

    def test_separator_vertices_never_appear(self, triangle):
        components = vertex_components(triangle, {"y"})
        assert all("y" not in component for component in components)

    def test_path_split_by_middle_vertex(self):
        hypergraph = path_hypergraph(4)
        components = vertex_components(hypergraph, {"v2"})
        assert sorted(sorted(c) for c in components) == [["v0", "v1"], ["v3", "v4"]]

    def test_full_separator_gives_no_components(self, triangle):
        assert vertex_components(triangle, {"x", "y", "z"}) == []

    def test_deterministic_order(self, h2):
        first = vertex_components(h2, {"a", "b"})
        second = vertex_components(h2, {"a", "b"})
        assert first == second


class TestEdgeComponents:
    def test_edges_inside_separator_belong_to_no_component(self, triangle):
        components = edge_components(triangle, {"x", "y"})
        names = {edge.name for component in components for edge in component}
        assert "R" not in names

    def test_h2_component_structure(self, h2):
        # Separating with {3, 4} (the e34 edge) leaves one big component.
        components = edge_components(h2, h2.edge("e34").vertices)
        assert len(components) == 1
        assert component_vertices(components[0]) >= {"1", "2", "5", "6", "7", "8", "a", "b"}

    def test_lambda_components_use_union(self, h2):
        lam = [h2.edge("e23b"), h2.edge("e67a")]
        components = lambda_components(h2, lam)
        union = h2.vertices_of(lam)
        for component in components:
            for edge in component:
                assert edge.vertices - union

    def test_edge_in_exactly_one_component(self, h2):
        components = edge_components(h2, {"a", "b"})
        seen = []
        for component in components:
            for edge in component:
                assert edge.name not in seen
                seen.append(edge.name)


class TestConnectivity:
    def test_is_connected(self, h2, triangle):
        assert is_connected(h2)
        assert is_connected(triangle)
        assert not is_connected(Hypergraph({"R": ["a", "b"], "S": ["c", "d"]}))

    def test_connected_components_partition_vertices(self, h2):
        components = connected_components(h2)
        union = set()
        for component in components:
            union.update(component)
        assert union == set(h2.vertices)

    def test_separates(self):
        hypergraph = path_hypergraph(4)
        assert separates(hypergraph, {"v2"}, "v0", "v4")
        assert not separates(hypergraph, {"v4"}, "v0", "v2")
        assert separates(hypergraph, {"v0"}, "v0", "v2")


class TestMinimalSeparators:
    def test_path_middle_vertex_is_minimal_separator(self):
        hypergraph = path_hypergraph(4)
        assert is_minimal_separator(hypergraph, {"v2"})

    def test_empty_set_is_not_a_minimal_separator(self, triangle):
        assert not is_minimal_separator(triangle, set())

    def test_non_separating_set_is_not_minimal(self, triangle):
        assert not is_minimal_separator(triangle, {"x"})

    def test_cycle_needs_two_vertices(self, four_cycle):
        assert not is_minimal_separator(four_cycle, {"x"})
        assert is_minimal_separator(four_cycle, {"x", "z"})
